#include "exec/batch_operators.h"

#include <algorithm>

#include "common/check.h"
#include "exec/morsel.h"
#include "relational/ops.h"
#include "relational/sort_merge.h"

namespace fro {

Relation DrainBatches(BatchIterator* iterator) {
  Relation out(iterator->scheme());
  iterator->Open();
  TupleBatch batch;
  while (iterator->NextBatch(&batch)) {
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) out.AddRow(batch.selected(i));
  }
  iterator->Close();
  return out;
}

Result<Relation> DrainChecked(BatchIterator* iterator, ExecControl* control) {
  Relation out(iterator->scheme());
  iterator->Open();
  TupleBatch batch;
  while (iterator->NextBatch(&batch)) {
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) out.AddRow(batch.selected(i));
  }
  iterator->Close();
  if (control != nullptr) {
    // One authoritative deadline check at completion: the per-tuple
    // stride (or per-batch check) may never have read the clock on a
    // short pipeline, but an armed deadline that has passed must
    // surface regardless of query size.
    control->ShouldStopBatch();
    FRO_RETURN_IF_ERROR(control->status());
  }
  return out;
}

ExecStats CollectPipelineStats(BatchIterator* root) {
  ExecStats totals;
  root->Visit([&](BatchIterator* node, int) {
    if (node->children().empty()) {
      // Scans: their emissions are already charged as reads to their
      // consumers. A bridge into the tuple engine contributes the wrapped
      // subtree's pipeline totals instead (its scans are skipped too); an
      // exchange contributes its worker pipelines' totals plus the shared
      // build subtrees', each counted once.
      if (auto* adapter = dynamic_cast<TupleBatchAdapter*>(node)) {
        totals += CollectPipelineStats(adapter->tuple_child());
      } else if (auto* exchange = dynamic_cast<BatchExchangeIterator*>(node)) {
        totals += exchange->CollectWorkerStats();
      }
      return;
    }
    totals += node->stats();
  });
  return totals;
}

// --- Scan ----------------------------------------------------------------

BatchScanIterator::BatchScanIterator(const Relation* relation,
                                     std::shared_ptr<RelationColumns> columns)
    : relation_(relation),
      columns_(columns != nullptr
                   ? std::move(columns)
                   : std::make_shared<RelationColumns>(relation)) {
  FRO_CHECK(relation != nullptr);
}

void BatchScanIterator::OpenImpl() { pos_ = 0; }

bool BatchScanIterator::NextBatchImpl(TupleBatch* out) {
  const size_t total = relation_->NumRows();
  if (pos_ >= total) return false;
  // Zero-copy: the batch views a capacity-sized window of the relation's
  // contiguous row storage, with the relation's columnized mirror
  // attached so downstream kernels get contiguous columns for free.
  // Consumers read in place; the relation outlives the pipeline
  // (BatchScanIterator's contract).
  const size_t n = std::min(out->capacity(), total - pos_);
  out->SetView(&relation_->rows()[pos_], n, columns_.get(), pos_);
  pos_ += n;
  return true;
}

void BatchScanIterator::CloseImpl() {}

const Scheme& BatchScanIterator::scheme() const { return relation_->scheme(); }

// --- Filter ----------------------------------------------------------------

BatchFilterIterator::BatchFilterIterator(BatchIteratorPtr child,
                                         PredicatePtr pred)
    : child_(std::move(child)), pred_(std::move(pred)) {
  FRO_CHECK(pred_ != nullptr);
}

void BatchFilterIterator::OpenImpl() {
  child_->Open();
  vec_bound_.Bind(pred_, child_->scheme());
  col_ptrs_.assign(child_->scheme().size(), nullptr);
}

bool BatchFilterIterator::NextBatchImpl(TupleBatch* out) {
  // Narrow the child's batch in place; loop past fully-filtered batches so
  // a true return always carries at least one live row. Counters update
  // once per batch (one read + one eval per live input row), keeping the
  // kernel free of bookkeeping. The kernel evaluates all raw rows
  // densely — masks of already-deselected rows are computed but never
  // consulted, which is cheaper than gathering survivors first.
  while (child_->NextBatch(out)) {
    const uint64_t n = out->size();
    mutable_stats().left_reads += n;
    mutable_stats().predicate_evals += n;
    const size_t raw_n = out->NumRows();
    if (raw_n > 0) {
      size_t offset = 0;
      for (int pos : vec_bound_.column_positions()) {
        col_ptrs_[static_cast<size_t>(pos)] =
            out->Column(static_cast<size_t>(pos), &offset);
      }
      keep_mask_.resize(raw_n);
      vec_bound_.Eval(col_ptrs_.data(), offset, raw_n, keep_mask_.data(),
                      nullptr);
      out->NarrowToMask(keep_mask_.data());
    }
    if (!out->empty()) return true;
  }
  return false;
}

void BatchFilterIterator::CloseImpl() { child_->Close(); }

const Scheme& BatchFilterIterator::scheme() const { return child_->scheme(); }

// --- Project ---------------------------------------------------------------

BatchProjectIterator::BatchProjectIterator(BatchIteratorPtr child,
                                           std::vector<AttrId> cols,
                                           bool dedup, size_t batch_capacity)
    : child_(std::move(child)),
      out_scheme_(Scheme(cols)),
      dedup_(dedup),
      input_(batch_capacity) {
  for (AttrId attr : cols) {
    int pos = child_->scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0) << "projection column not in child scheme";
    positions_.push_back(pos);
  }
}

void BatchProjectIterator::OpenImpl() {
  child_->Open();
  seen_.clear();
  input_.Clear();
  input_pos_ = 0;
}

bool BatchProjectIterator::NextBatchImpl(TupleBatch* out) {
  for (;;) {
    if (input_pos_ >= input_.size()) {
      if (!child_->NextBatch(&input_)) return !out->empty();
      input_pos_ = 0;
      continue;
    }
    while (input_pos_ < input_.size()) {
      if (out->full()) return true;
      const Tuple& row = input_.selected(input_pos_++);
      ++mutable_stats().left_reads;
      if (dedup_) {
        key_scratch_.resize(positions_.size());
        for (size_t i = 0; i < positions_.size(); ++i) {
          key_scratch_[i] = row.value(static_cast<size_t>(positions_[i]));
        }
        if (!seen_.insert(key_scratch_).second) continue;
      }
      out->AppendSlot()->AssignMapped(row, positions_);
    }
  }
}

void BatchProjectIterator::CloseImpl() {
  child_->Close();
  seen_.clear();
}

const Scheme& BatchProjectIterator::scheme() const { return out_scheme_; }

// --- Union -----------------------------------------------------------------

BatchUnionIterator::BatchUnionIterator(BatchIteratorPtr left,
                                       BatchIteratorPtr right,
                                       size_t batch_capacity)
    : left_(std::move(left)),
      right_(std::move(right)),
      input_(batch_capacity) {
  AttrSet all =
      left_->scheme().ToAttrSet().Union(right_->scheme().ToAttrSet());
  out_scheme_ = Scheme(all.ids());
  for (size_t c = 0; c < out_scheme_.size(); ++c) {
    left_map_.push_back(left_->scheme().IndexOf(out_scheme_.col(c)));
    right_map_.push_back(right_->scheme().IndexOf(out_scheme_.col(c)));
  }
}

void BatchUnionIterator::OpenImpl() {
  left_->Open();
  right_->Open();
  on_right_ = false;
  input_.Clear();
  input_pos_ = 0;
}

bool BatchUnionIterator::NextBatchImpl(TupleBatch* out) {
  for (;;) {
    if (input_pos_ >= input_.size()) {
      BatchIterator* side = on_right_ ? right_.get() : left_.get();
      if (!side->NextBatch(&input_)) {
        if (!on_right_) {
          on_right_ = true;
          input_.Clear();
          input_pos_ = 0;
          continue;
        }
        return !out->empty();
      }
      input_pos_ = 0;
      continue;
    }
    const std::vector<int>& map = on_right_ ? right_map_ : left_map_;
    while (input_pos_ < input_.size()) {
      if (out->full()) return true;
      const Tuple& row = input_.selected(input_pos_++);
      if (on_right_) {
        ++mutable_stats().right_reads;
      } else {
        ++mutable_stats().left_reads;
      }
      out->AppendSlot()->AssignMapped(row, map);
    }
  }
}

void BatchUnionIterator::CloseImpl() {
  left_->Close();
  right_->Close();
}

const Scheme& BatchUnionIterator::scheme() const { return out_scheme_; }

// --- Nested-loop join ------------------------------------------------------

namespace {

Scheme BatchJoinOutScheme(const Scheme& left, const Scheme& right,
                          JoinMode mode) {
  switch (mode) {
    case JoinMode::kInner:
    case JoinMode::kLeftOuter:
      return left.Concat(right);
    case JoinMode::kAnti:
    case JoinMode::kSemi:
      return left;
  }
  return left;
}

}  // namespace

BatchNestedLoopJoinIterator::BatchNestedLoopJoinIterator(
    BatchIteratorPtr left, BatchIteratorPtr right, PredicatePtr pred,
    JoinMode mode, size_t batch_capacity)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(
          BatchJoinOutScheme(left_->scheme(), right_->scheme(), mode)),
      joined_scheme_(left_->scheme().Concat(right_->scheme())),
      input_(batch_capacity) {}

void BatchNestedLoopJoinIterator::OpenImpl() {
  left_->Open();
  if (pred_ != nullptr) bound_.Bind(pred_, joined_scheme_);
  // Materialize the right input once (block nested loop).
  right_rows_.clear();
  right_->Open();
  TupleBatch scratch;
  while (right_->NextBatch(&scratch)) {
    const size_t n = scratch.size();
    for (size_t i = 0; i < n; ++i) right_rows_.push_back(scratch.selected(i));
  }
  right_->Close();
  input_.Clear();
  input_pos_ = 0;
  left_active_ = false;
}

bool BatchNestedLoopJoinIterator::NextBatchImpl(TupleBatch* out) {
  for (;;) {
    if (!left_active_) {
      if (input_pos_ >= input_.size()) {
        if (!left_->NextBatch(&input_)) return !out->empty();
        input_pos_ = 0;
        continue;
      }
      ++mutable_stats().left_reads;
      right_pos_ = 0;
      left_had_match_ = false;
      left_active_ = true;
    }
    const Tuple& lrow = input_.selected(input_pos_);
    bool dropped_left = false;
    while (right_pos_ < right_rows_.size()) {
      if (out->full()) return true;
      const Tuple& rrow = right_rows_[right_pos_++];
      ++mutable_stats().right_reads;
      // Build the candidate directly in the output slot; commit only on a
      // predicate match.
      Tuple* slot = out->PeekSlot();
      slot->AssignConcat(lrow, rrow);
      ++mutable_stats().predicate_evals;
      if (pred_ != nullptr && !IsTrue(bound_.Eval(*slot))) {
        continue;
      }
      left_had_match_ = true;
      switch (mode_) {
        case JoinMode::kInner:
        case JoinMode::kLeftOuter:
          out->CommitSlot();
          break;
        case JoinMode::kSemi:
          slot->AssignFrom(lrow);
          out->CommitSlot();
          dropped_left = true;
          break;
        case JoinMode::kAnti:
          dropped_left = true;
          break;
      }
      if (dropped_left) break;
    }
    if (!dropped_left) {
      // Right side exhausted for this left tuple.
      const bool unmatched = !left_had_match_;
      if (mode_ == JoinMode::kLeftOuter && unmatched) {
        if (out->full()) return true;
        out->AppendSlot()->AssignConcatNulls(lrow, right_->scheme().size());
      } else if (mode_ == JoinMode::kAnti && unmatched) {
        if (out->full()) return true;
        out->AppendSlot()->AssignFrom(lrow);
      }
    }
    left_active_ = false;
    ++input_pos_;
  }
}

void BatchNestedLoopJoinIterator::CloseImpl() {
  left_->Close();
  right_rows_.clear();
  left_active_ = false;
}

const Scheme& BatchNestedLoopJoinIterator::scheme() const {
  return out_scheme_;
}

// --- Hash join ---------------------------------------------------------

BatchHashJoinIterator::BatchHashJoinIterator(
    BatchIteratorPtr left, BatchIteratorPtr right, PredicatePtr pred,
    JoinMode mode, std::vector<AttrId> left_keys,
    std::vector<AttrId> right_keys, size_t batch_capacity)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(
          BatchJoinOutScheme(left_->scheme(), right_->scheme(), mode)),
      joined_scheme_(left_->scheme().Concat(right_->scheme())),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      input_(batch_capacity) {
  FRO_CHECK(!left_keys_.empty());
  FRO_CHECK_EQ(left_keys_.size(), right_keys_.size());
  for (AttrId attr : left_keys_) {
    int pos = left_->scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0);
    left_key_positions_.push_back(pos);
  }
}

PredicatePtr ResidualAfterEquiKeys(const PredicatePtr& pred,
                                   const std::vector<AttrId>& left_keys,
                                   const std::vector<AttrId>& right_keys) {
  if (pred == nullptr) return nullptr;
  std::vector<PredicatePtr> residual;
  for (const PredicatePtr& conjunct : pred->Conjuncts(pred)) {
    bool covered = false;
    if (conjunct->kind() == Predicate::Kind::kCmp &&
        conjunct->cmp_op() == CmpOp::kEq && conjunct->lhs().is_column() &&
        conjunct->rhs().is_column()) {
      const AttrId l = conjunct->lhs().attr();
      const AttrId r = conjunct->rhs().attr();
      for (size_t i = 0; i < left_keys.size() && !covered; ++i) {
        covered = (l == left_keys[i] && r == right_keys[i]) ||
                  (l == right_keys[i] && r == left_keys[i]);
      }
    }
    if (!covered) residual.push_back(conjunct);
  }
  if (residual.empty()) return nullptr;
  return Predicate::And(std::move(residual));
}

namespace {

// The flat probe table hashes with HashNumericKey (relational/column.h),
// shared with the batched HashColumns primitive so dense-hashed probes
// land in the same buckets the build filled.

/// NormalizeHashKeyValue restricted to numeric values: the normalized
/// double, or nothing when the value is null or non-numeric.
std::optional<double> NumericKey(const Value& v) {
  if (v.kind() == Value::Kind::kInt) {
    return static_cast<double>(v.AsInt());
  }
  if (v.kind() == Value::Kind::kDouble) {
    // Collapse -0.0 to +0.0 so equal keys hash identically.
    const double d = v.AsDouble();
    return d == 0.0 ? 0.0 : d;
  }
  return std::nullopt;
}

}  // namespace

void BatchHashJoinIterator::OpenImpl() {
  left_->Open();
  residual_ = ResidualAfterEquiKeys(pred_, left_keys_, right_keys_);
  if (residual_ != nullptr) bound_.Bind(residual_, joined_scheme_);
  // Build phase: materialize and index the right input, once per Open().
  // Zero-copy detection: a plain base-relation scan streams the whole of
  // one columnized relation as contiguous unselected views; when every
  // batch fits that pattern the build references the relation (and its
  // shared columnar mirror) instead of copying every tuple. The child is
  // still drained normally so its ExecStats match the tuple engine's.
  Relation raw(right_->scheme());
  right_->Open();
  TupleBatch scratch;
  const RelationColumns* shared = nullptr;
  size_t shared_end = 0;
  bool zero_copy = true;
  while (right_->NextBatch(&scratch)) {
    const size_t n = scratch.size();
    if (zero_copy) {
      size_t off = 0;
      const RelationColumns* src = scratch.view_source(&off);
      if (src != nullptr && !scratch.sel_active() &&
          (shared == nullptr ? off == 0 : (src == shared &&
                                           off == shared_end))) {
        shared = src;
        shared_end += n;
        continue;  // rows already live in the relation
      }
      // Pattern broke: backfill the prefix we skipped, then copy.
      zero_copy = false;
      for (size_t i = 0; i < shared_end; ++i) {
        raw.AddRow(shared->relation().row(i));
      }
    }
    for (size_t i = 0; i < n; ++i) raw.AddRow(scratch.selected(i));
  }
  right_->Close();
  if (zero_copy && shared != nullptr &&
      shared_end == shared->relation().NumRows()) {
    build_side_ = Relation();
    build_rel_ = &shared->relation();
    shared_build_cols_ = shared;
  } else {
    if (zero_copy && shared != nullptr) {
      // Contiguous views but not the whole relation (e.g. a morsel
      // range): materialize the drained prefix after all.
      for (size_t i = 0; i < shared_end; ++i) {
        raw.AddRow(shared->relation().row(i));
      }
    }
    build_side_ = std::move(raw);
    build_rel_ = &build_side_;
    shared_build_cols_ = nullptr;
  }
  // Single numeric key: build the flat probe table instead of the
  // generic HashIndex. Null keys are skipped (they never equi-match); a
  // non-numeric key value anywhere on the build side falls back to the
  // generic path, which handles heterogeneous keys.
  use_fast_index_ = false;
  if (left_key_positions_.size() == 1 &&
      build_rel_->NumRows() < (size_t{1} << 30)) {
    const int build_pos = build_rel_->scheme().IndexOf(right_keys_[0]);
    FRO_CHECK_GE(build_pos, 0);
    const size_t n = build_rel_->NumRows();
    size_t cap = 16;
    while (cap < n * 2) cap <<= 1;
    fast_buckets_.assign(cap, FastBucket{0.0, 0});
    fast_next_.assign(n, 0);
    fast_mask_ = cap - 1;
    size_t cap_bits = 0;
    while ((size_t{1} << cap_bits) < cap) ++cap_bits;
    fast_shift_ = 64 - cap_bits;
    // Bloom prefilter: 16 bits per bucket (cap * 2 bytes), addressed by
    // the hash's top 32 bits so it is independent of the bucket index.
    fast_bloom_.assign(cap * 2, 0);
    fast_bloom_mask_ = cap * 2 - 1;
    // Per-bucket chain tail during the build, so duplicate keys chain in
    // build order (match order must equal the HashIndex path's).
    std::vector<uint32_t> tails(cap, 0);
    use_fast_index_ = true;
    // Dense key pass when the shared mirror holds the key column typed:
    // one double/int load + null byte per row, no Value indirection. A
    // kGeneric column (mixed int/double, strings) and the copied-drain
    // path fall back to the row loop, which also demotes to the generic
    // index on the first non-numeric key.
    const ColumnVector* kc =
        shared_build_cols_ != nullptr
            ? &shared_build_cols_->Column(static_cast<size_t>(build_pos))
            : nullptr;
    const bool dense_keys =
        kc != nullptr && (kc->tag() == ColumnVector::Tag::kInt ||
                          kc->tag() == ColumnVector::Tag::kDouble ||
                          kc->tag() == ColumnVector::Tag::kEmpty);
    for (size_t i = 0; i < n; ++i) {
      double key;
      if (dense_keys) {
        if (kc->is_null(i)) continue;  // kEmpty columns are all null
        key = NormalizedNumericKey(*kc, i);
      } else {
        const Value& v =
            build_rel_->row(i).value(static_cast<size_t>(build_pos));
        if (v.is_null()) continue;
        const std::optional<double> k = NumericKey(v);
        if (!k.has_value()) {
          use_fast_index_ = false;
          break;
        }
        key = *k;
      }
      const uint64_t h = HashNumericKey(key);
      const uint64_t bh = h >> 32;
      fast_bloom_[(bh >> 3) & fast_bloom_mask_] |=
          static_cast<uint8_t>(1u << (bh & 7));
      size_t b = h >> fast_shift_;
      while (fast_buckets_[b].head != 0 && !(fast_buckets_[b].key == key)) {
        b = (b + 1) & fast_mask_;
      }
      if (fast_buckets_[b].head == 0) {
        fast_buckets_[b] = FastBucket{key, static_cast<uint32_t>(i + 1)};
      } else {
        fast_next_[tails[b] - 1] = static_cast<uint32_t>(i + 1);
      }
      tails[b] = static_cast<uint32_t>(i + 1);
    }
  }
  if (!use_fast_index_) {
    fast_buckets_.clear();
    fast_next_.clear();
    fast_bloom_.clear();
    normalized_build_ = NormalizeOnKeyColumns(*build_rel_, right_keys_);
    index_ = std::make_unique<HashIndex>(normalized_build_, right_keys_);
  }
  // Columnar emission whenever the probe discharges the whole predicate:
  // matches are appended column-by-column from the probe side's columns
  // and the build side's columnized mirror, instead of assembling a
  // joined Tuple per match. Build columns are materialized once per
  // Open(), like the index.
  columnar_emit_ = residual_ == nullptr;
  build_cols_.reset();
  right_cols_.clear();
  if (columnar_emit_ &&
      (mode_ == JoinMode::kInner || mode_ == JoinMode::kLeftOuter)) {
    const RelationColumns* cols = shared_build_cols_;
    if (cols == nullptr) {
      build_cols_ = std::make_unique<RelationColumns>(&build_side_);
      cols = build_cols_.get();
    }
    for (size_t c = 0; c < build_rel_->scheme().size(); ++c) {
      right_cols_.push_back(&cols->Column(c));
    }
  }
  left_cols_.assign(left_->scheme().size(), nullptr);
  probe_dense_ = false;
  emit_left_.clear();
  emit_right_.clear();
  gather_batch_ok_ = false;
  input_.Clear();
  input_pos_ = 0;
  left_active_ = false;
  matches_ = nullptr;
  fast_match_ = 0;
}

void BatchHashJoinIterator::FlushGather(TupleBatch* out) {
  const size_t n = emit_left_.size();
  if (n == 0) return;
  const size_t left_arity = left_cols_.size();
  for (size_t c = 0; c < left_arity; ++c) {
    out->mutable_column(c)->AppendGather(*left_cols_[c], emit_left_.data(),
                                         n);
  }
  for (size_t c = 0; c < right_cols_.size(); ++c) {
    out->mutable_column(left_arity + c)
        ->AppendGather(*right_cols_[c], emit_right_.data(), n);
  }
  out->CommitColumnRows(n);
  emit_left_.clear();
  emit_right_.clear();
}

bool BatchHashJoinIterator::NextBatchImpl(TupleBatch* out) {
  // NextBatch() hands us a cleared batch; columnar emission claims it
  // before any row lands in it.
  if (columnar_emit_) out->BeginColumns(out_scheme_.size());
  const size_t left_arity = left_cols_.size();
  // Gather-style emission: inner/left-outer matches accumulate as index
  // pairs and flush per column (FlushGather) instead of appending value
  // by value. Semi/anti emit too few values to be worth staging.
  const bool gather = columnar_emit_ && (mode_ == JoinMode::kInner ||
                                         mode_ == JoinMode::kLeftOuter);
  for (;;) {
    if (!left_active_) {
      if (input_pos_ >= input_.size()) {
        if (gather && !emit_left_.empty()) {
          // Pending pairs index the current input batch's columns; flush
          // before those pointers are refreshed by the next batch.
          FlushGather(out);
          return true;
        }
        if (!left_->NextBatch(&input_)) return !out->empty();
        input_pos_ = 0;
        // Per-batch probe preparation. Fast-index probes hash the whole
        // key column densely in one HashColumns pass (falling back to
        // the per-row path when the column is generic); columnar
        // emission refreshes the input's column pointers.
        const size_t raw_n = input_.NumRows();
        probe_dense_ = false;
        if (use_fast_index_ && raw_n > 0) {
          size_t koff = 0;
          const ColumnVector* kc =
              input_.Column(static_cast<size_t>(left_key_positions_[0]),
                            &koff);
          probe_keys_.resize(raw_n);
          probe_hashes_.resize(raw_n);
          probe_has_.resize(raw_n);
          probe_dense_ =
              HashColumns({kc}, koff, raw_n, probe_keys_.data(),
                          probe_hashes_.data(), probe_has_.data());
          if (probe_dense_) {
            // Resolve every row's chain head up front, in two passes.
            // Pass 1 inspects only the home bucket, with no data-
            // dependent branch in the loop body: hit stores the chain
            // head, anything else stores 0, and the rare rows whose home
            // bucket holds a *different* key are flagged in probe_needs_.
            // That body is a straight-line load/compare/select chain over
            // a dense index range, which the compiler can if-convert and
            // vectorize; an embedded probe walk (or any branch on probed
            // data) measured ~30x slower per row here. Pass 2 finishes
            // the flagged rows — a few percent at our load factor, and
            // Bloom-gated so definite misses never walk — with the plain
            // probe loop. Dead (unselected) rows are resolved too: the
            // dense pass is cheaper than gathering selection indices,
            // and their entries are simply never read.
            match_head_.resize(raw_n);
            probe_needs_.resize(raw_n);
            for (size_t raw = 0; raw < raw_n; ++raw) {
              const uint64_t h = probe_hashes_[raw];
              const FastBucket& fb = fast_buckets_[h >> fast_shift_];
              const uint64_t bh = h >> 32;
              const uint32_t bit =
                  (fast_bloom_[(bh >> 3) & fast_bloom_mask_] >> (bh & 7)) &
                  1u;
              const uint32_t has = probe_has_[raw];
              const uint32_t occ = fb.head != 0;
              const uint32_t hit =
                  has & occ &
                  static_cast<uint32_t>(fb.key == probe_keys_[raw]);
              match_head_[raw] = fb.head * hit;
              probe_needs_[raw] =
                  static_cast<uint8_t>(has & bit & occ & (hit ^ 1u));
            }
            for (size_t raw = 0; raw < raw_n; ++raw) {
              if (probe_needs_[raw]) {
                const double key = probe_keys_[raw];
                size_t b =
                    ((probe_hashes_[raw] >> fast_shift_) + 1) & fast_mask_;
                uint32_t m = 0;
                while (fast_buckets_[b].head != 0) {
                  if (fast_buckets_[b].key == key) {
                    m = fast_buckets_[b].head;
                    break;
                  }
                  b = (b + 1) & fast_mask_;
                }
                match_head_[raw] = m;
              }
            }
          }
        }
        if (columnar_emit_ && raw_n > 0) {
          for (size_t c = 0; c < left_arity; ++c) {
            left_cols_[c] = input_.Column(c, &left_off_);
          }
          // Gather indices are 32-bit with kNullIndex reserved; a batch
          // whose absolute row indices would not fit falls back to
          // value-at-a-time emission.
          gather_batch_ok_ =
              left_off_ + raw_n < ColumnVector::kNullIndex;
        }
        continue;
      }
      if (use_fast_index_ && probe_dense_ && gather && gather_batch_ok_) {
        // Dense probe loop: the whole input batch in one pass — probe,
        // chain walk, and gather-list emission per row with the counters
        // accumulated locally — instead of a trip through the resumable
        // state machine per row. When the output batch fills mid-row the
        // loop suspends into that state machine (left_active_ /
        // fast_match_), which resumes the chain exactly where the
        // generic path would.
        const size_t cap = out->capacity();
        const size_t base = out->NumRows();
        const size_t live = input_.size();
        const bool pad = mode_ == JoinMode::kLeftOuter;
        uint64_t rows_probed = 0;
        uint64_t candidates = 0;
        bool suspended = false;
        while (input_pos_ < live && !suspended) {
          const size_t raw = input_.sel_index(input_pos_);
          ++rows_probed;
          uint32_t m = match_head_[raw];
          bool had = false;
          for (;;) {
            if (m == 0) {
              if (!had && pad) {
                if (base + emit_left_.size() >= cap) {
                  // Suspend before the pad: the generic loop re-enters
                  // this row with an exhausted chain and pads it.
                  left_active_ = true;
                  left_had_match_ = false;
                  fast_match_ = 0;
                  suspended = true;
                  break;
                }
                emit_left_.push_back(
                    static_cast<uint32_t>(left_off_ + raw));
                emit_right_.push_back(ColumnVector::kNullIndex);
              }
              ++input_pos_;
              break;
            }
            if (base + emit_left_.size() >= cap) {
              // Suspend mid-chain; the generic loop resumes at m.
              left_active_ = true;
              left_had_match_ = had;
              fast_match_ = m;
              suspended = true;
              break;
            }
            const uint32_t ridx = m - 1;
            ++candidates;
            emit_left_.push_back(static_cast<uint32_t>(left_off_ + raw));
            emit_right_.push_back(ridx);
            had = true;
            m = fast_next_[ridx];
          }
        }
        mutable_stats().left_reads += rows_probed;
        mutable_stats().probes += rows_probed;
        mutable_stats().right_reads += candidates;
        mutable_stats().predicate_evals += candidates;
        if (suspended) {
          FlushGather(out);
          return true;
        }
        continue;  // batch exhausted: the refresh block takes over
      }
      ++mutable_stats().left_reads;
      left_had_match_ = false;
      match_pos_ = 0;
      ++mutable_stats().probes;
      if (use_fast_index_) {
        // A null probe key never matches; a non-numeric one cannot equal
        // any of the (all-numeric) build keys, so both yield no matches —
        // exactly what the generic probe would return.
        fast_match_ = 0;
        if (probe_dense_) {
          fast_match_ = match_head_[input_.sel_index(input_pos_)];
        } else {
          const Tuple& lrow = input_.selected(input_pos_);
          const std::optional<double> key = NumericKey(
              lrow.value(static_cast<size_t>(left_key_positions_[0])));
          if (key.has_value()) {
            const uint64_t h = HashNumericKey(*key);
            const uint64_t bh = h >> 32;
            if ((fast_bloom_[(bh >> 3) & fast_bloom_mask_] >> (bh & 7)) & 1) {
              size_t b = h >> fast_shift_;
              while (fast_buckets_[b].head != 0) {
                if (fast_buckets_[b].key == *key) {
                  fast_match_ = fast_buckets_[b].head;
                  break;
                }
                b = (b + 1) & fast_mask_;
              }
            }
          }
        }
      } else {
        const Tuple& lrow = input_.selected(input_pos_);
        probe_key_.clear();
        bool null_key = false;
        for (int pos : left_key_positions_) {
          Value v =
              NormalizeHashKeyValue(lrow.value(static_cast<size_t>(pos)));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          probe_key_.push_back(std::move(v));
        }
        matches_ = null_key
                       ? &no_matches_
                       : &index_->Probe(probe_key_.data(), probe_key_.size());
      }
      left_active_ = true;
    }
    const size_t lraw = input_.sel_index(input_pos_);
    bool dropped_left = false;
    for (;;) {
      size_t ridx;
      if (use_fast_index_) {
        if (fast_match_ == 0) break;
        ridx = fast_match_ - 1;
      } else {
        if (match_pos_ >= matches_->size()) break;
        ridx = (*matches_)[match_pos_];
      }
      if (gather ? out->NumRows() + emit_left_.size() >= out->capacity()
                 : out->full()) {
        FlushGather(out);
        return true;
      }
      if (use_fast_index_) {
        fast_match_ = fast_next_[ridx];
      } else {
        ++match_pos_;
      }
      ++mutable_stats().right_reads;
      // One predicate check per candidate, same as the tuple engine. When
      // the predicate is exactly the equi-key conjunction, the probe's
      // normalized-key equality already discharged it (no false
      // positives), so only a residual beyond the keys is re-evaluated.
      ++mutable_stats().predicate_evals;
      if (residual_ != nullptr) {
        const Tuple& lrow = input_.row(lraw);
        const Tuple& rrow = build_rel_->row(ridx);
        Tuple* slot = out->PeekSlot();
        slot->AssignConcat(lrow, rrow);
        if (!IsTrue(bound_.Eval(*slot))) continue;
        left_had_match_ = true;
        switch (mode_) {
          case JoinMode::kInner:
          case JoinMode::kLeftOuter:
            out->CommitSlot();
            break;
          case JoinMode::kSemi:
            slot->AssignFrom(lrow);
            out->CommitSlot();
            dropped_left = true;
            break;
          case JoinMode::kAnti:
            dropped_left = true;
            break;
        }
      } else {
        // Pure equi-join: columnar emission, value by value from the
        // probe and build columns — no joined-Tuple assembly.
        left_had_match_ = true;
        switch (mode_) {
          case JoinMode::kInner:
          case JoinMode::kLeftOuter:
            if (gather_batch_ok_ && ridx < ColumnVector::kNullIndex) {
              emit_left_.push_back(static_cast<uint32_t>(left_off_ + lraw));
              emit_right_.push_back(static_cast<uint32_t>(ridx));
            } else {
              for (size_t c = 0; c < left_arity; ++c) {
                out->mutable_column(c)->AppendFrom(*left_cols_[c],
                                                   left_off_ + lraw);
              }
              for (size_t c = 0; c < right_cols_.size(); ++c) {
                out->mutable_column(left_arity + c)
                    ->AppendFrom(*right_cols_[c], ridx);
              }
              out->CommitColumnRow();
            }
            break;
          case JoinMode::kSemi:
            for (size_t c = 0; c < left_arity; ++c) {
              out->mutable_column(c)->AppendFrom(*left_cols_[c],
                                                 left_off_ + lraw);
            }
            out->CommitColumnRow();
            dropped_left = true;
            break;
          case JoinMode::kAnti:
            dropped_left = true;
            break;
        }
      }
      if (dropped_left) break;
    }
    if (!dropped_left) {
      const bool unmatched = !left_had_match_;
      if (mode_ == JoinMode::kLeftOuter && unmatched) {
        if (gather ? out->NumRows() + emit_left_.size() >= out->capacity()
                   : out->full()) {
          FlushGather(out);
          return true;
        }
        if (columnar_emit_ && gather_batch_ok_) {
          emit_left_.push_back(static_cast<uint32_t>(left_off_ + lraw));
          emit_right_.push_back(ColumnVector::kNullIndex);
        } else if (columnar_emit_) {
          for (size_t c = 0; c < left_arity; ++c) {
            out->mutable_column(c)->AppendFrom(*left_cols_[c],
                                               left_off_ + lraw);
          }
          for (size_t c = 0; c < right_cols_.size(); ++c) {
            out->mutable_column(left_arity + c)->AppendNull();
          }
          out->CommitColumnRow();
        } else {
          out->AppendSlot()->AssignConcatNulls(input_.row(lraw),
                                               right_->scheme().size());
        }
      } else if (mode_ == JoinMode::kAnti && unmatched) {
        if (out->full()) return true;
        if (columnar_emit_) {
          for (size_t c = 0; c < left_arity; ++c) {
            out->mutable_column(c)->AppendFrom(*left_cols_[c],
                                               left_off_ + lraw);
          }
          out->CommitColumnRow();
        } else {
          out->AppendSlot()->AssignFrom(input_.row(lraw));
        }
      }
    }
    left_active_ = false;
    ++input_pos_;
  }
}

void BatchHashJoinIterator::CloseImpl() {
  left_->Close();
  index_.reset();
  fast_buckets_.clear();
  fast_next_.clear();
  fast_bloom_.clear();
  use_fast_index_ = false;
  fast_match_ = 0;
  // build_cols_ points into build_side_; drop it first.
  build_cols_.reset();
  right_cols_.clear();
  left_cols_.clear();
  columnar_emit_ = false;
  probe_dense_ = false;
  match_head_.clear();
  probe_needs_.clear();
  emit_left_.clear();
  emit_right_.clear();
  gather_batch_ok_ = false;
  build_rel_ = nullptr;
  shared_build_cols_ = nullptr;
  build_side_ = Relation();
  normalized_build_ = Relation();
  left_active_ = false;
  matches_ = nullptr;
}

const Scheme& BatchHashJoinIterator::scheme() const { return out_scheme_; }

// --- Sort-merge join -----------------------------------------------------

BatchSortMergeJoinIterator::BatchSortMergeJoinIterator(BatchIteratorPtr left,
                                                       BatchIteratorPtr right,
                                                       PredicatePtr pred,
                                                       JoinMode mode)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(
          BatchJoinOutScheme(left_->scheme(), right_->scheme(), mode)) {}

void BatchSortMergeJoinIterator::OpenImpl() {
  Relation left_rel = DrainBatches(left_.get());
  Relation right_rel = DrainBatches(right_.get());
  KernelStats ks;
  switch (mode_) {
    case JoinMode::kInner:
      result_ = SortMergeJoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kLeftOuter:
      result_ = SortMergeLeftOuterJoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kAnti:
      result_ = SortMergeAntijoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kSemi:
      result_ = SortMergeSemijoin(left_rel, right_rel, pred_, &ks);
      break;
  }
  // The kernel already counted the full output; emissions are counted by
  // the base class as batches actually stream out.
  ks.emitted = 0;
  mutable_stats() += ks;
  pos_ = 0;
}

bool BatchSortMergeJoinIterator::NextBatchImpl(TupleBatch* out) {
  if (pos_ >= result_.NumRows()) return false;
  while (!out->full() && pos_ < result_.NumRows()) {
    out->AppendSlot()->AssignFrom(result_.row(pos_++));
  }
  return true;
}

void BatchSortMergeJoinIterator::CloseImpl() {
  result_ = Relation();
  pos_ = 0;
}

const Scheme& BatchSortMergeJoinIterator::scheme() const {
  return out_scheme_;
}

// --- Generalized outerjoin ---------------------------------------------

BatchGojIterator::BatchGojIterator(BatchIteratorPtr left,
                                   BatchIteratorPtr right, PredicatePtr pred,
                                   AttrSet subset, JoinAlgo algo)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      subset_(std::move(subset)),
      algo_(algo),
      out_scheme_(left_->scheme().Concat(right_->scheme())) {}

void BatchGojIterator::OpenImpl() {
  Relation left_rel = DrainBatches(left_.get());
  Relation right_rel = DrainBatches(right_.get());
  KernelStats ks;
  result_ = GeneralizedOuterJoin(left_rel, right_rel, pred_, subset_, algo_,
                                 &ks);
  ks.emitted = 0;  // counted by the base class as batches stream out
  mutable_stats() += ks;
  pos_ = 0;
}

bool BatchGojIterator::NextBatchImpl(TupleBatch* out) {
  if (pos_ >= result_.NumRows()) return false;
  while (!out->full() && pos_ < result_.NumRows()) {
    out->AppendSlot()->AssignFrom(result_.row(pos_++));
  }
  return true;
}

void BatchGojIterator::CloseImpl() {
  result_ = Relation();
  pos_ = 0;
}

const Scheme& BatchGojIterator::scheme() const { return out_scheme_; }

// --- Adapters ----------------------------------------------------------

TupleBatchAdapter::TupleBatchAdapter(IteratorPtr child)
    : child_(std::move(child)) {
  FRO_CHECK(child_ != nullptr);
}

void TupleBatchAdapter::OpenImpl() { child_->Open(); }

bool TupleBatchAdapter::NextBatchImpl(TupleBatch* out) {
  while (!out->full()) {
    Tuple* slot = out->PeekSlot();
    if (!child_->Next(slot)) return !out->empty();
    out->CommitSlot();
  }
  return true;
}

void TupleBatchAdapter::CloseImpl() { child_->Close(); }

const Scheme& TupleBatchAdapter::scheme() const { return child_->scheme(); }

void TupleBatchAdapter::EnableTiming(bool on) {
  BatchIterator::EnableTiming(on);
  child_->EnableTiming(on);
}

void TupleBatchAdapter::SetControl(ExecControl* control) {
  BatchIterator::SetControl(control);
  child_->SetControl(control);
}

BatchTupleAdapter::BatchTupleAdapter(BatchIteratorPtr child,
                                     size_t batch_capacity)
    : child_(std::move(child)), buffer_(batch_capacity) {
  FRO_CHECK(child_ != nullptr);
}

void BatchTupleAdapter::OpenImpl() {
  child_->Open();
  buffer_.Clear();
  pos_ = 0;
}

bool BatchTupleAdapter::NextImpl(Tuple* out) {
  while (pos_ >= buffer_.size()) {
    if (!child_->NextBatch(&buffer_)) return false;
    pos_ = 0;
  }
  out->AssignFrom(buffer_.selected(pos_++));
  return true;
}

void BatchTupleAdapter::CloseImpl() { child_->Close(); }

const Scheme& BatchTupleAdapter::scheme() const { return child_->scheme(); }

void BatchTupleAdapter::EnableTiming(bool on) {
  TupleIterator::EnableTiming(on);
  child_->EnableTiming(on);
}

void BatchTupleAdapter::SetControl(ExecControl* control) {
  TupleIterator::SetControl(control);
  child_->SetControl(control);
}

}  // namespace fro
