#include "exec/batch_operators.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "exec/morsel.h"
#include "relational/ops.h"
#include "relational/sort_merge.h"

namespace fro {

Relation DrainBatches(BatchIterator* iterator) {
  Relation out(iterator->scheme());
  iterator->Open();
  TupleBatch batch;
  while (iterator->NextBatch(&batch)) {
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) out.AddRow(batch.selected(i));
  }
  iterator->Close();
  return out;
}

Result<Relation> DrainChecked(BatchIterator* iterator, ExecControl* control) {
  Relation out(iterator->scheme());
  iterator->Open();
  TupleBatch batch;
  while (iterator->NextBatch(&batch)) {
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) out.AddRow(batch.selected(i));
  }
  iterator->Close();
  if (control != nullptr) {
    // One authoritative deadline check at completion: the per-tuple
    // stride (or per-batch check) may never have read the clock on a
    // short pipeline, but an armed deadline that has passed must
    // surface regardless of query size.
    control->ShouldStopBatch();
    FRO_RETURN_IF_ERROR(control->status());
  }
  return out;
}

ExecStats CollectPipelineStats(BatchIterator* root) {
  ExecStats totals;
  root->Visit([&](BatchIterator* node, int) {
    if (node->children().empty()) {
      // Scans: their emissions are already charged as reads to their
      // consumers. A bridge into the tuple engine contributes the wrapped
      // subtree's pipeline totals instead (its scans are skipped too); an
      // exchange contributes its worker pipelines' totals plus the shared
      // build subtrees', each counted once.
      if (auto* adapter = dynamic_cast<TupleBatchAdapter*>(node)) {
        totals += CollectPipelineStats(adapter->tuple_child());
      } else if (auto* exchange = dynamic_cast<BatchExchangeIterator*>(node)) {
        totals += exchange->CollectWorkerStats();
      }
      return;
    }
    totals += node->stats();
  });
  return totals;
}

// --- Scan ----------------------------------------------------------------

BatchScanIterator::BatchScanIterator(const Relation* relation)
    : relation_(relation) {
  FRO_CHECK(relation != nullptr);
}

void BatchScanIterator::OpenImpl() { pos_ = 0; }

bool BatchScanIterator::NextBatchImpl(TupleBatch* out) {
  const size_t total = relation_->NumRows();
  if (pos_ >= total) return false;
  // Zero-copy: the batch views a capacity-sized window of the relation's
  // contiguous row storage. Consumers read rows in place; the relation
  // outlives the pipeline (BatchScanIterator's contract).
  const size_t n = std::min(out->capacity(), total - pos_);
  out->SetView(&relation_->rows()[pos_], n);
  pos_ += n;
  return true;
}

void BatchScanIterator::CloseImpl() {}

const Scheme& BatchScanIterator::scheme() const { return relation_->scheme(); }

// --- Filter ----------------------------------------------------------------

BatchFilterIterator::BatchFilterIterator(BatchIteratorPtr child,
                                         PredicatePtr pred)
    : child_(std::move(child)), pred_(std::move(pred)) {
  FRO_CHECK(pred_ != nullptr);
}

void BatchFilterIterator::OpenImpl() {
  child_->Open();
  bound_.Bind(pred_, child_->scheme());
}

bool BatchFilterIterator::NextBatchImpl(TupleBatch* out) {
  // Narrow the child's batch in place; loop past fully-filtered batches so
  // a true return always carries at least one live row. Counters update
  // once per batch (one read + one eval per live input row), keeping the
  // narrowing loop free of bookkeeping.
  while (child_->NextBatch(out)) {
    const uint64_t n = out->size();
    mutable_stats().left_reads += n;
    mutable_stats().predicate_evals += n;
    out->NarrowSelection(
        [&](const Tuple& row, uint32_t) { return IsTrue(bound_.Eval(row)); });
    if (!out->empty()) return true;
  }
  return false;
}

void BatchFilterIterator::CloseImpl() { child_->Close(); }

const Scheme& BatchFilterIterator::scheme() const { return child_->scheme(); }

// --- Project ---------------------------------------------------------------

BatchProjectIterator::BatchProjectIterator(BatchIteratorPtr child,
                                           std::vector<AttrId> cols,
                                           bool dedup, size_t batch_capacity)
    : child_(std::move(child)),
      out_scheme_(Scheme(cols)),
      dedup_(dedup),
      input_(batch_capacity) {
  for (AttrId attr : cols) {
    int pos = child_->scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0) << "projection column not in child scheme";
    positions_.push_back(pos);
  }
}

void BatchProjectIterator::OpenImpl() {
  child_->Open();
  seen_.clear();
  input_.Clear();
  input_pos_ = 0;
}

bool BatchProjectIterator::NextBatchImpl(TupleBatch* out) {
  for (;;) {
    if (input_pos_ >= input_.size()) {
      if (!child_->NextBatch(&input_)) return !out->empty();
      input_pos_ = 0;
      continue;
    }
    while (input_pos_ < input_.size()) {
      if (out->full()) return true;
      const Tuple& row = input_.selected(input_pos_++);
      ++mutable_stats().left_reads;
      if (dedup_) {
        key_scratch_.resize(positions_.size());
        for (size_t i = 0; i < positions_.size(); ++i) {
          key_scratch_[i] = row.value(static_cast<size_t>(positions_[i]));
        }
        if (!seen_.insert(key_scratch_).second) continue;
      }
      out->AppendSlot()->AssignMapped(row, positions_);
    }
  }
}

void BatchProjectIterator::CloseImpl() {
  child_->Close();
  seen_.clear();
}

const Scheme& BatchProjectIterator::scheme() const { return out_scheme_; }

// --- Union -----------------------------------------------------------------

BatchUnionIterator::BatchUnionIterator(BatchIteratorPtr left,
                                       BatchIteratorPtr right,
                                       size_t batch_capacity)
    : left_(std::move(left)),
      right_(std::move(right)),
      input_(batch_capacity) {
  AttrSet all =
      left_->scheme().ToAttrSet().Union(right_->scheme().ToAttrSet());
  out_scheme_ = Scheme(all.ids());
  for (size_t c = 0; c < out_scheme_.size(); ++c) {
    left_map_.push_back(left_->scheme().IndexOf(out_scheme_.col(c)));
    right_map_.push_back(right_->scheme().IndexOf(out_scheme_.col(c)));
  }
}

void BatchUnionIterator::OpenImpl() {
  left_->Open();
  right_->Open();
  on_right_ = false;
  input_.Clear();
  input_pos_ = 0;
}

bool BatchUnionIterator::NextBatchImpl(TupleBatch* out) {
  for (;;) {
    if (input_pos_ >= input_.size()) {
      BatchIterator* side = on_right_ ? right_.get() : left_.get();
      if (!side->NextBatch(&input_)) {
        if (!on_right_) {
          on_right_ = true;
          input_.Clear();
          input_pos_ = 0;
          continue;
        }
        return !out->empty();
      }
      input_pos_ = 0;
      continue;
    }
    const std::vector<int>& map = on_right_ ? right_map_ : left_map_;
    while (input_pos_ < input_.size()) {
      if (out->full()) return true;
      const Tuple& row = input_.selected(input_pos_++);
      if (on_right_) {
        ++mutable_stats().right_reads;
      } else {
        ++mutable_stats().left_reads;
      }
      out->AppendSlot()->AssignMapped(row, map);
    }
  }
}

void BatchUnionIterator::CloseImpl() {
  left_->Close();
  right_->Close();
}

const Scheme& BatchUnionIterator::scheme() const { return out_scheme_; }

// --- Nested-loop join ------------------------------------------------------

namespace {

Scheme BatchJoinOutScheme(const Scheme& left, const Scheme& right,
                          JoinMode mode) {
  switch (mode) {
    case JoinMode::kInner:
    case JoinMode::kLeftOuter:
      return left.Concat(right);
    case JoinMode::kAnti:
    case JoinMode::kSemi:
      return left;
  }
  return left;
}

}  // namespace

BatchNestedLoopJoinIterator::BatchNestedLoopJoinIterator(
    BatchIteratorPtr left, BatchIteratorPtr right, PredicatePtr pred,
    JoinMode mode, size_t batch_capacity)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(
          BatchJoinOutScheme(left_->scheme(), right_->scheme(), mode)),
      joined_scheme_(left_->scheme().Concat(right_->scheme())),
      input_(batch_capacity) {}

void BatchNestedLoopJoinIterator::OpenImpl() {
  left_->Open();
  if (pred_ != nullptr) bound_.Bind(pred_, joined_scheme_);
  // Materialize the right input once (block nested loop).
  right_rows_.clear();
  right_->Open();
  TupleBatch scratch;
  while (right_->NextBatch(&scratch)) {
    const size_t n = scratch.size();
    for (size_t i = 0; i < n; ++i) right_rows_.push_back(scratch.selected(i));
  }
  right_->Close();
  input_.Clear();
  input_pos_ = 0;
  left_active_ = false;
}

bool BatchNestedLoopJoinIterator::NextBatchImpl(TupleBatch* out) {
  for (;;) {
    if (!left_active_) {
      if (input_pos_ >= input_.size()) {
        if (!left_->NextBatch(&input_)) return !out->empty();
        input_pos_ = 0;
        continue;
      }
      ++mutable_stats().left_reads;
      right_pos_ = 0;
      left_had_match_ = false;
      left_active_ = true;
    }
    const Tuple& lrow = input_.selected(input_pos_);
    bool dropped_left = false;
    while (right_pos_ < right_rows_.size()) {
      if (out->full()) return true;
      const Tuple& rrow = right_rows_[right_pos_++];
      ++mutable_stats().right_reads;
      // Build the candidate directly in the output slot; commit only on a
      // predicate match.
      Tuple* slot = out->PeekSlot();
      slot->AssignConcat(lrow, rrow);
      ++mutable_stats().predicate_evals;
      if (pred_ != nullptr && !IsTrue(bound_.Eval(*slot))) {
        continue;
      }
      left_had_match_ = true;
      switch (mode_) {
        case JoinMode::kInner:
        case JoinMode::kLeftOuter:
          out->CommitSlot();
          break;
        case JoinMode::kSemi:
          slot->AssignFrom(lrow);
          out->CommitSlot();
          dropped_left = true;
          break;
        case JoinMode::kAnti:
          dropped_left = true;
          break;
      }
      if (dropped_left) break;
    }
    if (!dropped_left) {
      // Right side exhausted for this left tuple.
      const bool unmatched = !left_had_match_;
      if (mode_ == JoinMode::kLeftOuter && unmatched) {
        if (out->full()) return true;
        out->AppendSlot()->AssignConcatNulls(lrow, right_->scheme().size());
      } else if (mode_ == JoinMode::kAnti && unmatched) {
        if (out->full()) return true;
        out->AppendSlot()->AssignFrom(lrow);
      }
    }
    left_active_ = false;
    ++input_pos_;
  }
}

void BatchNestedLoopJoinIterator::CloseImpl() {
  left_->Close();
  right_rows_.clear();
  left_active_ = false;
}

const Scheme& BatchNestedLoopJoinIterator::scheme() const {
  return out_scheme_;
}

// --- Hash join ---------------------------------------------------------

BatchHashJoinIterator::BatchHashJoinIterator(
    BatchIteratorPtr left, BatchIteratorPtr right, PredicatePtr pred,
    JoinMode mode, std::vector<AttrId> left_keys,
    std::vector<AttrId> right_keys, size_t batch_capacity)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(
          BatchJoinOutScheme(left_->scheme(), right_->scheme(), mode)),
      joined_scheme_(left_->scheme().Concat(right_->scheme())),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      input_(batch_capacity) {
  FRO_CHECK(!left_keys_.empty());
  FRO_CHECK_EQ(left_keys_.size(), right_keys_.size());
  for (AttrId attr : left_keys_) {
    int pos = left_->scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0);
    left_key_positions_.push_back(pos);
  }
}

PredicatePtr ResidualAfterEquiKeys(const PredicatePtr& pred,
                                   const std::vector<AttrId>& left_keys,
                                   const std::vector<AttrId>& right_keys) {
  if (pred == nullptr) return nullptr;
  std::vector<PredicatePtr> residual;
  for (const PredicatePtr& conjunct : pred->Conjuncts(pred)) {
    bool covered = false;
    if (conjunct->kind() == Predicate::Kind::kCmp &&
        conjunct->cmp_op() == CmpOp::kEq && conjunct->lhs().is_column() &&
        conjunct->rhs().is_column()) {
      const AttrId l = conjunct->lhs().attr();
      const AttrId r = conjunct->rhs().attr();
      for (size_t i = 0; i < left_keys.size() && !covered; ++i) {
        covered = (l == left_keys[i] && r == right_keys[i]) ||
                  (l == right_keys[i] && r == left_keys[i]);
      }
    }
    if (!covered) residual.push_back(conjunct);
  }
  if (residual.empty()) return nullptr;
  return Predicate::And(std::move(residual));
}

namespace {

/// Hash for the flat probe table: the key's bit pattern, spread by a
/// multiply/xor-shift mix (ints widened to doubles leave most entropy in
/// the high mantissa bits; the multiply diffuses it).
uint64_t FastKeyHash(double key) {
  uint64_t bits;
  std::memcpy(&bits, &key, sizeof(bits));
  bits *= 0x9E3779B97F4A7C15ull;
  bits ^= bits >> 32;
  return bits;
}

/// NormalizeHashKeyValue restricted to numeric values: the normalized
/// double, or nothing when the value is null or non-numeric.
std::optional<double> NumericKey(const Value& v) {
  if (v.kind() == Value::Kind::kInt) {
    return static_cast<double>(v.AsInt());
  }
  if (v.kind() == Value::Kind::kDouble) {
    // Collapse -0.0 to +0.0 so equal keys hash identically.
    const double d = v.AsDouble();
    return d == 0.0 ? 0.0 : d;
  }
  return std::nullopt;
}

}  // namespace

void BatchHashJoinIterator::OpenImpl() {
  left_->Open();
  residual_ = ResidualAfterEquiKeys(pred_, left_keys_, right_keys_);
  if (residual_ != nullptr) bound_.Bind(residual_, joined_scheme_);
  // Build phase: materialize and index the right input, once per Open().
  Relation raw(right_->scheme());
  right_->Open();
  TupleBatch scratch;
  while (right_->NextBatch(&scratch)) {
    const size_t n = scratch.size();
    for (size_t i = 0; i < n; ++i) raw.AddRow(scratch.selected(i));
  }
  right_->Close();
  build_side_ = std::move(raw);
  // Single numeric key: build the flat probe table instead of the
  // generic HashIndex. Null keys are skipped (they never equi-match); a
  // non-numeric key value anywhere on the build side falls back to the
  // generic path, which handles heterogeneous keys.
  use_fast_index_ = false;
  if (left_key_positions_.size() == 1 &&
      build_side_.NumRows() < (size_t{1} << 31)) {
    const int build_pos = build_side_.scheme().IndexOf(right_keys_[0]);
    FRO_CHECK_GE(build_pos, 0);
    const size_t n = build_side_.NumRows();
    size_t cap = 16;
    while (cap < n * 2) cap <<= 1;
    fast_buckets_.assign(cap, FastBucket{0.0, 0});
    fast_next_.assign(n, 0);
    fast_mask_ = cap - 1;
    // Per-bucket chain tail during the build, so duplicate keys chain in
    // build order (match order must equal the HashIndex path's).
    std::vector<uint32_t> tails(cap, 0);
    use_fast_index_ = true;
    for (size_t i = 0; i < n; ++i) {
      const Value& v =
          build_side_.row(i).value(static_cast<size_t>(build_pos));
      if (v.is_null()) continue;
      const std::optional<double> key = NumericKey(v);
      if (!key.has_value()) {
        use_fast_index_ = false;
        break;
      }
      size_t b = FastKeyHash(*key) & fast_mask_;
      while (fast_buckets_[b].head != 0 && !(fast_buckets_[b].key == *key)) {
        b = (b + 1) & fast_mask_;
      }
      if (fast_buckets_[b].head == 0) {
        fast_buckets_[b] = FastBucket{*key, static_cast<uint32_t>(i + 1)};
      } else {
        fast_next_[tails[b] - 1] = static_cast<uint32_t>(i + 1);
      }
      tails[b] = static_cast<uint32_t>(i + 1);
    }
  }
  if (!use_fast_index_) {
    fast_buckets_.clear();
    fast_next_.clear();
    normalized_build_ = NormalizeOnKeyColumns(build_side_, right_keys_);
    index_ = std::make_unique<HashIndex>(normalized_build_, right_keys_);
  }
  input_.Clear();
  input_pos_ = 0;
  left_active_ = false;
  matches_ = nullptr;
  fast_match_ = 0;
}

bool BatchHashJoinIterator::NextBatchImpl(TupleBatch* out) {
  for (;;) {
    if (!left_active_) {
      if (input_pos_ >= input_.size()) {
        if (!left_->NextBatch(&input_)) return !out->empty();
        input_pos_ = 0;
        continue;
      }
      const Tuple& lrow = input_.selected(input_pos_);
      ++mutable_stats().left_reads;
      left_had_match_ = false;
      match_pos_ = 0;
      ++mutable_stats().probes;
      if (use_fast_index_) {
        // A null probe key never matches; a non-numeric one cannot equal
        // any of the (all-numeric) build keys, so both yield no matches —
        // exactly what the generic probe would return.
        fast_match_ = 0;
        const std::optional<double> key =
            NumericKey(lrow.value(static_cast<size_t>(left_key_positions_[0])));
        if (key.has_value()) {
          size_t b = FastKeyHash(*key) & fast_mask_;
          while (fast_buckets_[b].head != 0) {
            if (fast_buckets_[b].key == *key) {
              fast_match_ = fast_buckets_[b].head;
              break;
            }
            b = (b + 1) & fast_mask_;
          }
        }
      } else {
        probe_key_.clear();
        bool null_key = false;
        for (int pos : left_key_positions_) {
          Value v =
              NormalizeHashKeyValue(lrow.value(static_cast<size_t>(pos)));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          probe_key_.push_back(std::move(v));
        }
        matches_ = null_key
                       ? &no_matches_
                       : &index_->Probe(probe_key_.data(), probe_key_.size());
      }
      left_active_ = true;
    }
    const Tuple& lrow = input_.selected(input_pos_);
    bool dropped_left = false;
    for (;;) {
      size_t ridx;
      if (use_fast_index_) {
        if (fast_match_ == 0) break;
        ridx = fast_match_ - 1;
      } else {
        if (match_pos_ >= matches_->size()) break;
        ridx = (*matches_)[match_pos_];
      }
      if (out->full()) return true;
      if (use_fast_index_) {
        fast_match_ = fast_next_[ridx];
      } else {
        ++match_pos_;
      }
      const Tuple& rrow = build_side_.row(ridx);
      ++mutable_stats().right_reads;
      // One predicate check per candidate, same as the tuple engine. When
      // the predicate is exactly the equi-key conjunction, the probe's
      // normalized-key equality already discharged it (no false
      // positives), so only a residual beyond the keys is re-evaluated.
      ++mutable_stats().predicate_evals;
      if (residual_ != nullptr) {
        Tuple* slot = out->PeekSlot();
        slot->AssignConcat(lrow, rrow);
        if (!IsTrue(bound_.Eval(*slot))) continue;
        left_had_match_ = true;
        switch (mode_) {
          case JoinMode::kInner:
          case JoinMode::kLeftOuter:
            out->CommitSlot();
            break;
          case JoinMode::kSemi:
            slot->AssignFrom(lrow);
            out->CommitSlot();
            dropped_left = true;
            break;
          case JoinMode::kAnti:
            dropped_left = true;
            break;
        }
      } else {
        left_had_match_ = true;
        switch (mode_) {
          case JoinMode::kInner:
          case JoinMode::kLeftOuter:
            out->PeekSlot()->AssignConcat(lrow, rrow);
            out->CommitSlot();
            break;
          case JoinMode::kSemi:
            out->PeekSlot()->AssignFrom(lrow);
            out->CommitSlot();
            dropped_left = true;
            break;
          case JoinMode::kAnti:
            dropped_left = true;
            break;
        }
      }
      if (dropped_left) break;
    }
    if (!dropped_left) {
      const bool unmatched = !left_had_match_;
      if (mode_ == JoinMode::kLeftOuter && unmatched) {
        if (out->full()) return true;
        out->AppendSlot()->AssignConcatNulls(lrow, right_->scheme().size());
      } else if (mode_ == JoinMode::kAnti && unmatched) {
        if (out->full()) return true;
        out->AppendSlot()->AssignFrom(lrow);
      }
    }
    left_active_ = false;
    ++input_pos_;
  }
}

void BatchHashJoinIterator::CloseImpl() {
  left_->Close();
  index_.reset();
  fast_buckets_.clear();
  fast_next_.clear();
  use_fast_index_ = false;
  fast_match_ = 0;
  build_side_ = Relation();
  normalized_build_ = Relation();
  left_active_ = false;
  matches_ = nullptr;
}

const Scheme& BatchHashJoinIterator::scheme() const { return out_scheme_; }

// --- Sort-merge join -----------------------------------------------------

BatchSortMergeJoinIterator::BatchSortMergeJoinIterator(BatchIteratorPtr left,
                                                       BatchIteratorPtr right,
                                                       PredicatePtr pred,
                                                       JoinMode mode)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(
          BatchJoinOutScheme(left_->scheme(), right_->scheme(), mode)) {}

void BatchSortMergeJoinIterator::OpenImpl() {
  Relation left_rel = DrainBatches(left_.get());
  Relation right_rel = DrainBatches(right_.get());
  KernelStats ks;
  switch (mode_) {
    case JoinMode::kInner:
      result_ = SortMergeJoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kLeftOuter:
      result_ = SortMergeLeftOuterJoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kAnti:
      result_ = SortMergeAntijoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kSemi:
      result_ = SortMergeSemijoin(left_rel, right_rel, pred_, &ks);
      break;
  }
  // The kernel already counted the full output; emissions are counted by
  // the base class as batches actually stream out.
  ks.emitted = 0;
  mutable_stats() += ks;
  pos_ = 0;
}

bool BatchSortMergeJoinIterator::NextBatchImpl(TupleBatch* out) {
  if (pos_ >= result_.NumRows()) return false;
  while (!out->full() && pos_ < result_.NumRows()) {
    out->AppendSlot()->AssignFrom(result_.row(pos_++));
  }
  return true;
}

void BatchSortMergeJoinIterator::CloseImpl() {
  result_ = Relation();
  pos_ = 0;
}

const Scheme& BatchSortMergeJoinIterator::scheme() const {
  return out_scheme_;
}

// --- Generalized outerjoin ---------------------------------------------

BatchGojIterator::BatchGojIterator(BatchIteratorPtr left,
                                   BatchIteratorPtr right, PredicatePtr pred,
                                   AttrSet subset, JoinAlgo algo)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      subset_(std::move(subset)),
      algo_(algo),
      out_scheme_(left_->scheme().Concat(right_->scheme())) {}

void BatchGojIterator::OpenImpl() {
  Relation left_rel = DrainBatches(left_.get());
  Relation right_rel = DrainBatches(right_.get());
  KernelStats ks;
  result_ = GeneralizedOuterJoin(left_rel, right_rel, pred_, subset_, algo_,
                                 &ks);
  ks.emitted = 0;  // counted by the base class as batches stream out
  mutable_stats() += ks;
  pos_ = 0;
}

bool BatchGojIterator::NextBatchImpl(TupleBatch* out) {
  if (pos_ >= result_.NumRows()) return false;
  while (!out->full() && pos_ < result_.NumRows()) {
    out->AppendSlot()->AssignFrom(result_.row(pos_++));
  }
  return true;
}

void BatchGojIterator::CloseImpl() {
  result_ = Relation();
  pos_ = 0;
}

const Scheme& BatchGojIterator::scheme() const { return out_scheme_; }

// --- Adapters ----------------------------------------------------------

TupleBatchAdapter::TupleBatchAdapter(IteratorPtr child)
    : child_(std::move(child)) {
  FRO_CHECK(child_ != nullptr);
}

void TupleBatchAdapter::OpenImpl() { child_->Open(); }

bool TupleBatchAdapter::NextBatchImpl(TupleBatch* out) {
  while (!out->full()) {
    Tuple* slot = out->PeekSlot();
    if (!child_->Next(slot)) return !out->empty();
    out->CommitSlot();
  }
  return true;
}

void TupleBatchAdapter::CloseImpl() { child_->Close(); }

const Scheme& TupleBatchAdapter::scheme() const { return child_->scheme(); }

void TupleBatchAdapter::EnableTiming(bool on) {
  BatchIterator::EnableTiming(on);
  child_->EnableTiming(on);
}

void TupleBatchAdapter::SetControl(ExecControl* control) {
  BatchIterator::SetControl(control);
  child_->SetControl(control);
}

BatchTupleAdapter::BatchTupleAdapter(BatchIteratorPtr child,
                                     size_t batch_capacity)
    : child_(std::move(child)), buffer_(batch_capacity) {
  FRO_CHECK(child_ != nullptr);
}

void BatchTupleAdapter::OpenImpl() {
  child_->Open();
  buffer_.Clear();
  pos_ = 0;
}

bool BatchTupleAdapter::NextImpl(Tuple* out) {
  while (pos_ >= buffer_.size()) {
    if (!child_->NextBatch(&buffer_)) return false;
    pos_ = 0;
  }
  out->AssignFrom(buffer_.selected(pos_++));
  return true;
}

void BatchTupleAdapter::CloseImpl() { child_->Close(); }

const Scheme& BatchTupleAdapter::scheme() const { return child_->scheme(); }

void BatchTupleAdapter::EnableTiming(bool on) {
  TupleIterator::EnableTiming(on);
  child_->EnableTiming(on);
}

void BatchTupleAdapter::SetControl(ExecControl* control) {
  TupleIterator::SetControl(control);
  child_->SetControl(control);
}

}  // namespace fro
