#include "exec/batch.h"

namespace fro {

const char* ExecEngineName(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kTuple:
      return "tuple";
    case ExecEngine::kBatch:
      return "batch";
  }
  return "unknown";
}

const ColumnVector* ColumnBatch::Column(size_t pos, size_t* offset) const {
  if (mode_ == Mode::kView && src_cols_ != nullptr) {
    *offset = src_offset_;
    return &src_cols_->Column(pos);
  }
  if (mode_ != Mode::kColumns && !cols_valid_) TransposeRows();
  FRO_DCHECK(pos < cols_.size());
  *offset = 0;
  return &cols_[pos];
}

void ColumnBatch::TransposeRows() const {
  const size_t arity = count_ > 0 ? row(0).arity() : 0;
  cols_.resize(arity);
  for (size_t c = 0; c < arity; ++c) {
    cols_[c].Clear();
    cols_[c].Reserve(count_);
  }
  for (size_t raw = 0; raw < count_; ++raw) {
    const Tuple& r = row(raw);
    for (size_t c = 0; c < arity; ++c) cols_[c].Append(r.value(c));
  }
  cols_valid_ = true;
}

void ColumnBatch::BeginColumns(size_t arity) {
  FRO_DCHECK(count_ == 0 && mode_ != Mode::kView);
  mode_ = Mode::kColumns;
  cols_.resize(arity);
  for (size_t c = 0; c < arity; ++c) cols_[c].Clear();
  rows_valid_ = false;
}

void ColumnBatch::MaterializeRows() const {
  const size_t arity = cols_.size();
  for (size_t raw = 0; raw < count_; ++raw) {
    Tuple& r = rows_[raw];
    r.ResizeForWrite(arity);
    for (size_t c = 0; c < arity; ++c) {
      *r.mutable_value(c) = cols_[c].ValueAt(raw);
    }
  }
  rows_valid_ = true;
}

}  // namespace fro
