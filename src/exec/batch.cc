#include "exec/batch.h"

namespace fro {

const char* ExecEngineName(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kTuple:
      return "tuple";
    case ExecEngine::kBatch:
      return "batch";
  }
  return "unknown";
}

}  // namespace fro
