// Compiling expression trees into physical pipelines, for either
// execution engine: tuple-at-a-time Volcano iterators or batch-at-a-time
// vectorized iterators. The two compilations make identical physical
// choices (hash vs. nested loop, operand anchoring), so plans differ only
// in granularity.

#ifndef FRO_EXEC_BUILD_H_
#define FRO_EXEC_BUILD_H_

#include "algebra/expr.h"
#include "exec/batch_iterator.h"
#include "exec/iterator.h"
#include "relational/database.h"
#include "relational/ops.h"

namespace fro {

/// Builds a pipelined physical plan for `expr`. Join-like operators use
/// the hash strategy when the predicate has equi-key conjuncts and `algo`
/// permits, block nested loop otherwise. Symmetric forms (`<-`, `<|`,
/// `-<`) are realized by swapping the operands. The database must outlive
/// the returned iterator.
IteratorPtr BuildIterator(const ExprPtr& expr, const Database& db,
                          JoinAlgo algo = JoinAlgo::kAuto);

/// Batch-engine counterpart of BuildIterator: the same plan shape,
/// compiled to batch-native operators exchanging TupleBatches of
/// `batch_capacity` tuples.
BatchIteratorPtr BuildBatchIterator(
    const ExprPtr& expr, const Database& db, JoinAlgo algo = JoinAlgo::kAuto,
    size_t batch_capacity = TupleBatch::kDefaultCapacity);

/// Convenience: build, drain, and return the materialized result.
Relation ExecutePipelined(const ExprPtr& expr, const Database& db,
                          JoinAlgo algo = JoinAlgo::kAuto);

/// Convenience: build a batch plan, drain it, return the result.
Relation ExecuteBatched(const ExprPtr& expr, const Database& db,
                        JoinAlgo algo = JoinAlgo::kAuto,
                        size_t batch_capacity = TupleBatch::kDefaultCapacity);

}  // namespace fro

#endif  // FRO_EXEC_BUILD_H_
