// Compiling expression trees into Volcano iterator pipelines.

#ifndef FRO_EXEC_BUILD_H_
#define FRO_EXEC_BUILD_H_

#include "algebra/expr.h"
#include "exec/iterator.h"
#include "relational/database.h"
#include "relational/ops.h"

namespace fro {

/// Builds a pipelined physical plan for `expr`. Join-like operators use
/// the hash strategy when the predicate has equi-key conjuncts and `algo`
/// permits, block nested loop otherwise. Symmetric forms (`<-`, `<|`,
/// `-<`) are realized by swapping the operands. The database must outlive
/// the returned iterator.
IteratorPtr BuildIterator(const ExprPtr& expr, const Database& db,
                          JoinAlgo algo = JoinAlgo::kAuto);

/// Convenience: build, drain, and return the materialized result.
Relation ExecutePipelined(const ExprPtr& expr, const Database& db,
                          JoinAlgo algo = JoinAlgo::kAuto);

}  // namespace fro

#endif  // FRO_EXEC_BUILD_H_
