// Batch-native physical operators, mirroring exec/operators.h operator
// for operator: scan, filter (in-place selection narrowing), project,
// union-with-padding, block nested-loop and hash join-likes in all four
// modes (inner, left outer, anti, semi), blocking sort-merge join-likes,
// and the blocking generalized outerjoin. Plus the two adapters that
// bridge the engines so operators can migrate incrementally.
//
// Counter parity: every operator maintains ExecStats with exactly the
// tuple engine's accounting — reads per candidate tuple fetched, one
// probe per probe-side row, one predicate evaluation per candidate pair,
// anti/semi short-circuiting at the first match. The equivalence suite
// (tests/batch_exec_test.cc) asserts this per operator.
//
// Join emission uses TupleBatch's peek-slot protocol: the candidate
// joined tuple is built directly in the output batch's next slot, the
// predicate is evaluated there, and the slot is committed only on a
// match — no per-tuple allocation once slots are warm.

#ifndef FRO_EXEC_BATCH_OPERATORS_H_
#define FRO_EXEC_BATCH_OPERATORS_H_

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "exec/batch_iterator.h"
#include "exec/operators.h"
#include "relational/index.h"
#include "relational/ops.h"
#include "relational/predicate.h"

namespace fro {

/// The conjuncts of `pred` an equi-key index probe on (left_keys[i],
/// right_keys[i]) does NOT discharge. A conjunct `l = r` whose column
/// pair is one of the key pairs is decided exactly by the probe's
/// normalized-key equality (SQL equality on non-null keys; null keys
/// never probe), so only the remaining conjuncts need per-candidate
/// re-evaluation. Returns nullptr when nothing remains. Shared by the
/// serial and morsel-parallel hash joins so their accounting agrees.
PredicatePtr ResidualAfterEquiKeys(const PredicatePtr& pred,
                                   const std::vector<AttrId>& left_keys,
                                   const std::vector<AttrId>& right_keys);

/// Full scan of a materialized relation (which must outlive the scan).
class BatchScanIterator : public BatchIterator {
 public:
  /// `columns` optionally shares a pre-built (or lazily-filled) columnar
  /// mirror of `relation` — Database::CachedColumns hands one out so the
  /// transpose is paid once per relation, not per plan build. When null
  /// the scan builds a private mirror.
  explicit BatchScanIterator(const Relation* relation,
                             std::shared_ptr<RelationColumns> columns = nullptr);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Scan"; }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  const Relation* relation_;
  /// Lazily-columnized mirror of relation_, attached to every view batch
  /// the scan emits so downstream kernels read whole-relation contiguous
  /// columns with zero per-batch transpose.
  std::shared_ptr<RelationColumns> columns_;
  size_t pos_ = 0;
};

/// sigma[pred](child): narrows the child's batch in place via the
/// selection vector — survivors are never copied.
class BatchFilterIterator : public BatchIterator {
 public:
  BatchFilterIterator(BatchIteratorPtr child, PredicatePtr pred);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Filter"; }
  std::vector<BatchIterator*> children() const override {
    return {child_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  BatchIteratorPtr child_;
  PredicatePtr pred_;
  /// Column-kernel form of pred_, rebound each Open(): one
  /// column-at-a-time evaluation per batch instead of a tree walk per
  /// row (row-for-row equivalent to BoundPredicate).
  VectorPredicate vec_bound_;
  /// Reused per-batch buffers: column pointers by scheme position and
  /// the raw-indexed keep mask the kernel writes.
  std::vector<const ColumnVector*> col_ptrs_;
  std::vector<uint8_t> keep_mask_;
};

/// pi[cols](child), optionally duplicate-eliminating.
class BatchProjectIterator : public BatchIterator {
 public:
  BatchProjectIterator(BatchIteratorPtr child, std::vector<AttrId> cols,
                       bool dedup,
                       size_t batch_capacity = TupleBatch::kDefaultCapacity);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Project"; }
  std::vector<BatchIterator*> children() const override {
    return {child_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  BatchIteratorPtr child_;
  std::vector<int> positions_;
  Scheme out_scheme_;
  bool dedup_;
  std::set<std::vector<Value>> seen_;
  std::vector<Value> key_scratch_;
  TupleBatch input_;
  size_t input_pos_ = 0;  // next live row of input_ to consume
};

/// Bag union with the padding convention; children stream sequentially.
class BatchUnionIterator : public BatchIterator {
 public:
  BatchUnionIterator(BatchIteratorPtr left, BatchIteratorPtr right,
                     size_t batch_capacity = TupleBatch::kDefaultCapacity);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Union"; }
  std::vector<BatchIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  BatchIteratorPtr left_;
  BatchIteratorPtr right_;
  Scheme out_scheme_;
  std::vector<int> left_map_;   // out column -> left position or -1
  std::vector<int> right_map_;  // out column -> right position or -1
  bool on_right_ = false;
  TupleBatch input_;
  size_t input_pos_ = 0;
};

/// Block nested-loop join-like operator: right input materialized at
/// Open(), left tuples stream a batch at a time.
class BatchNestedLoopJoinIterator : public BatchIterator {
 public:
  BatchNestedLoopJoinIterator(
      BatchIteratorPtr left, BatchIteratorPtr right, PredicatePtr pred,
      JoinMode mode, size_t batch_capacity = TupleBatch::kDefaultCapacity);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "NestedLoopJoin"; }
  std::vector<BatchIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  BatchIteratorPtr left_;
  BatchIteratorPtr right_;
  PredicatePtr pred_;
  BoundPredicate bound_;  // pred_ resolved against joined_scheme_
  JoinMode mode_;
  Scheme out_scheme_;
  Scheme joined_scheme_;
  std::vector<Tuple> right_rows_;
  TupleBatch input_;  // current left batch
  size_t input_pos_ = 0;
  bool left_active_ = false;
  size_t right_pos_ = 0;
  bool left_had_match_ = false;
};

/// Hash join-like operator: builds once on the right input at Open(),
/// probes a batch of left tuples at a time. The plan builder selects it
/// only when equi-keys exist; the full predicate is re-checked.
class BatchHashJoinIterator : public BatchIterator {
 public:
  BatchHashJoinIterator(BatchIteratorPtr left, BatchIteratorPtr right,
                        PredicatePtr pred, JoinMode mode,
                        std::vector<AttrId> left_keys,
                        std::vector<AttrId> right_keys,
                        size_t batch_capacity = TupleBatch::kDefaultCapacity);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "HashJoin"; }
  std::vector<BatchIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  BatchIteratorPtr left_;
  BatchIteratorPtr right_;
  PredicatePtr pred_;
  /// pred_ minus the equi-key conjuncts the probe discharges; nullptr
  /// when the probe decides the whole predicate (pure equi-join).
  PredicatePtr residual_;
  BoundPredicate bound_;  // residual_ resolved against joined_scheme_
  JoinMode mode_;
  Scheme out_scheme_;
  Scheme joined_scheme_;
  std::vector<AttrId> left_keys_;
  std::vector<AttrId> right_keys_;
  Relation build_side_;
  /// The rows the probe table indexes: &build_side_ after a copying
  /// drain, or the scanned base relation itself when the build child
  /// streamed it as contiguous zero-copy views (a plain Leaf scan) — in
  /// that case no tuple is copied and no column is re-transposed; the
  /// shared mirror (owned by the scan child and the Database cache)
  /// backs columnar emission directly.
  const Relation* build_rel_ = nullptr;
  const RelationColumns* shared_build_cols_ = nullptr;
  /// Key-normalized copy the index hashes over (see HashJoinIterator).
  Relation normalized_build_;
  std::unique_ptr<HashIndex> index_;
  /// Specialized probe table, engaged when the key is one column and
  /// every build-side key value is numeric. Keys are normalized the way
  /// NormalizeHashKeyValue does (int widened to double), stored in a
  /// flat power-of-two open-addressing array; rows sharing a key are
  /// chained in build order through fast_next_, so match sets and match
  /// order are identical to the HashIndex path. Probing it is one
  /// contiguous-array lookup — no per-row Value materialization, no
  /// generic key hashing, no node-based map traversal.
  struct FastBucket {
    double key;
    uint32_t head;  // first build row with this key, +1; 0 = empty
  };
  std::vector<FastBucket> fast_buckets_;
  std::vector<uint32_t> fast_next_;  // row -> next row with same key, +1
  /// Bloom prefilter over the build keys (one bit per key from the top
  /// hash bits, sized at 16 bits per bucket so it stays cache-resident
  /// at ~6% of the bucket array): probes whose bit is clear skip the
  /// bucket search entirely — on selective joins most probes miss, and
  /// the miss answer comes from this small array instead of a random
  /// access into the large one.
  std::vector<uint8_t> fast_bloom_;
  uint64_t fast_bloom_mask_ = 0;
  size_t fast_mask_ = 0;
  /// Home bucket = hash >> fast_shift_ (the hash's TOP log2(cap) bits).
  /// The low bits are measurably non-uniform for small-integer doubles
  /// (their bit patterns share long runs of trailing zeros, and the
  /// multiply in HashNumericKey only propagates entropy upward), which
  /// produced linear-probe clusters dozens of buckets long; the top bits
  /// are well mixed and keep clusters near the theoretical minimum.
  size_t fast_shift_ = 64;
  uint32_t fast_match_ = 0;  // probe chain cursor (row + 1; 0 = done)
  bool use_fast_index_ = false;
  std::vector<int> left_key_positions_;
  std::vector<Value> probe_key_;
  /// Batched probe-key hashing (HashColumns) over the current input
  /// batch's key column, engaged when the fast index is live and the key
  /// column is dense numeric: probe_has_[raw] = 0 marks rows that never
  /// match (null key), otherwise probe_keys_/probe_hashes_ hold the
  /// normalized key and its hash for raw row `raw`.
  bool probe_dense_ = false;
  std::vector<double> probe_keys_;
  std::vector<uint64_t> probe_hashes_;
  std::vector<uint8_t> probe_has_;
  /// Per-batch probe resolution (dense path): match_head_[raw] is the
  /// 1-based chain head for raw row `raw` (0 = no match), filled at
  /// batch refresh by a two-pass probe sweep — a branch-free home-bucket
  /// pass over the whole batch, then a walk for the few rows flagged in
  /// probe_needs_ whose home bucket held a different key.
  std::vector<uint32_t> match_head_;
  std::vector<uint8_t> probe_needs_;
  /// Columnar emission, engaged when the probe discharges the whole
  /// predicate (residual_ == nullptr): output batches are built in
  /// owned-column mode from the probe side's columns and the build
  /// side's columnized mirror — no per-match Tuple assembly.
  bool columnar_emit_ = false;
  std::unique_ptr<RelationColumns> build_cols_;
  std::vector<const ColumnVector*> right_cols_;
  std::vector<const ColumnVector*> left_cols_;
  size_t left_off_ = 0;
  /// Gather-style emission (inner/left-outer columnar only): matches
  /// accumulate as (probe row, build row) index pairs and each output
  /// column is flushed in one AppendGather pass — tag dispatch once per
  /// column per batch instead of once per value. kNullIndex in the
  /// build list marks an outerjoin padding row. Pending pairs never
  /// outlive the input batch whose columns they index (flushed before
  /// the next batch loads).
  void FlushGather(TupleBatch* out);
  std::vector<uint32_t> emit_left_;
  std::vector<uint32_t> emit_right_;
  bool gather_batch_ok_ = false;
  TupleBatch input_;  // current left batch
  size_t input_pos_ = 0;
  bool left_active_ = false;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool left_had_match_ = false;
  const std::vector<size_t> no_matches_;
};

/// Sort-merge join-like operator (all four modes): blocking — both
/// inputs materialized at Open(), merged by the sort-merge kernels, and
/// the result streamed out in batches.
class BatchSortMergeJoinIterator : public BatchIterator {
 public:
  BatchSortMergeJoinIterator(BatchIteratorPtr left, BatchIteratorPtr right,
                             PredicatePtr pred, JoinMode mode);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "SortMergeJoin"; }
  std::vector<BatchIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  BatchIteratorPtr left_;
  BatchIteratorPtr right_;
  PredicatePtr pred_;
  JoinMode mode_;
  Scheme out_scheme_;
  Relation result_;
  size_t pos_ = 0;
};

/// GOJ[subset, pred](left, right): blocking; materializes both inputs at
/// Open() and streams the kernel's result in batches.
class BatchGojIterator : public BatchIterator {
 public:
  BatchGojIterator(BatchIteratorPtr left, BatchIteratorPtr right,
                   PredicatePtr pred, AttrSet subset,
                   JoinAlgo algo = JoinAlgo::kAuto);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Goj"; }
  std::vector<BatchIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  BatchIteratorPtr left_;
  BatchIteratorPtr right_;
  PredicatePtr pred_;
  AttrSet subset_;
  JoinAlgo algo_;
  Scheme out_scheme_;
  Relation result_;
  size_t pos_ = 0;
};

/// Migration bridge: presents a tuple-at-a-time subtree as a
/// BatchIterator by pulling Next() into batch slots. Stats-transparent:
/// it adds no reads of its own, and rollups treat it as a leaf (the
/// wrapped subtree keeps its own per-operator counters, reachable via
/// tuple_child()).
class TupleBatchAdapter : public BatchIterator {
 public:
  explicit TupleBatchAdapter(IteratorPtr child);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "TupleBatchAdapter"; }
  void EnableTiming(bool on = true) override;
  void SetControl(ExecControl* control) override;

  TupleIterator* tuple_child() const { return child_.get(); }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  IteratorPtr child_;
};

/// Migration bridge in the other direction: presents a batch subtree as
/// a TupleIterator by buffering one batch and replaying it tuple by
/// tuple. Stats-transparent like TupleBatchAdapter.
class BatchTupleAdapter : public TupleIterator {
 public:
  BatchTupleAdapter(BatchIteratorPtr child,
                    size_t batch_capacity = TupleBatch::kDefaultCapacity);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "BatchTupleAdapter"; }
  void EnableTiming(bool on = true) override;
  void SetControl(ExecControl* control) override;

  BatchIterator* batch_child() const { return child_.get(); }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  BatchIteratorPtr child_;
  TupleBatch buffer_;
  size_t pos_ = 0;
};

}  // namespace fro

#endif  // FRO_EXEC_BATCH_OPERATORS_H_
