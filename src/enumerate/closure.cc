#include "enumerate/closure.h"

#include <deque>
#include <string>
#include <unordered_set>

#include "algebra/transform.h"
#include "common/check.h"
#include "enumerate/it_enum.h"

namespace fro {

namespace {

void CollectJoinLikePaths(const ExprPtr& node, ExprPath* path,
                          std::vector<ExprPath>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->is_join_like()) out->push_back(*path);
  if (node->left() != nullptr) {
    path->push_back(false);
    CollectJoinLikePaths(node->left(), path, out);
    path->pop_back();
  }
  if (node->right() != nullptr) {
    path->push_back(true);
    CollectJoinLikePaths(node->right(), path, out);
    path->pop_back();
  }
}

// All canonical neighbors of `tree` reachable by one reassociation
// (composed with up to two reversals). When `only_preserving`, steps whose
// reassociation is not result-preserving are skipped.
std::vector<ExprPtr> Neighbors(const ExprPtr& tree, bool only_preserving,
                               uint64_t* applications) {
  std::vector<ExprPtr> out;
  std::vector<ExprPath> paths;
  ExprPath scratch;
  CollectJoinLikePaths(tree, &scratch, &paths);

  for (const ExprPath& p : paths) {
    for (bool flip_node : {false, true}) {
      ExprPtr t1 = tree;
      if (flip_node) {
        Result<ExprPtr> flipped =
            ApplyBt(tree, BtSite{BtSite::Kind::kReversal, p});
        if (!flipped.ok()) continue;
        t1 = *flipped;
      }
      for (BtSite::Kind kind :
           {BtSite::Kind::kAssocLR, BtSite::Kind::kAssocRL}) {
        ExprPath child_path = p;
        child_path.push_back(kind == BtSite::Kind::kAssocRL);
        for (bool flip_child : {false, true}) {
          ExprPtr t2 = t1;
          if (flip_child) {
            Result<ExprPtr> flipped =
                ApplyBt(t1, BtSite{BtSite::Kind::kReversal, child_path});
            if (!flipped.ok()) continue;
            t2 = *flipped;
          }
          BtSite site{kind, p};
          if (!IsApplicable(t2, site)) continue;
          if (only_preserving && !ClassifyBt(t2, site).IsPreserving()) {
            continue;
          }
          Result<ExprPtr> next = ApplyBt(t2, site);
          FRO_CHECK(next.ok());
          ++*applications;
          out.push_back(CanonicalOrientation(*next));
        }
      }
    }
  }
  return out;
}

}  // namespace

ClosureResult BtClosure(const ExprPtr& start, const ClosureOptions& options) {
  ClosureResult result;
  std::unordered_set<std::string> seen;
  std::deque<ExprPtr> queue;

  ExprPtr canonical_start = CanonicalOrientation(start);
  seen.insert(canonical_start->Fingerprint());
  result.trees.push_back(canonical_start);
  queue.push_back(canonical_start);

  while (!queue.empty()) {
    ExprPtr tree = queue.front();
    queue.pop_front();
    for (const ExprPtr& next : Neighbors(tree, options.only_result_preserving,
                                         &result.bt_applications)) {
      if (seen.size() >= options.max_states) {
        result.truncated = true;
        return result;
      }
      if (seen.insert(next->Fingerprint()).second) {
        result.trees.push_back(next);
        queue.push_back(next);
      }
    }
  }
  return result;
}

}  // namespace fro
