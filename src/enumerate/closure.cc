#include "enumerate/closure.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "algebra/transform.h"
#include "common/check.h"
#include "enumerate/it_enum.h"

namespace fro {

namespace {

void CollectJoinLikePaths(const ExprPtr& node, ExprPath* path,
                          std::vector<ExprPath>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->is_join_like()) out->push_back(*path);
  if (node->left() != nullptr) {
    path->push_back(false);
    CollectJoinLikePaths(node->left(), path, out);
    path->pop_back();
  }
  if (node->right() != nullptr) {
    path->push_back(true);
    CollectJoinLikePaths(node->right(), path, out);
    path->pop_back();
  }
}

// All canonical neighbors of `tree` reachable by one reassociation
// (composed with up to two reversals). When `only_preserving`, steps whose
// reassociation is not result-preserving are skipped.
std::vector<ExprPtr> Neighbors(const ExprPtr& tree, bool only_preserving,
                               uint64_t* applications) {
  std::vector<ExprPtr> out;
  std::vector<ExprPath> paths;
  ExprPath scratch;
  CollectJoinLikePaths(tree, &scratch, &paths);

  for (const ExprPath& p : paths) {
    for (bool flip_node : {false, true}) {
      ExprPtr t1 = tree;
      if (flip_node) {
        Result<ExprPtr> flipped =
            ApplyBt(tree, BtSite{BtSite::Kind::kReversal, p});
        if (!flipped.ok()) continue;
        t1 = *flipped;
      }
      for (BtSite::Kind kind :
           {BtSite::Kind::kAssocLR, BtSite::Kind::kAssocRL}) {
        ExprPath child_path = p;
        child_path.push_back(kind == BtSite::Kind::kAssocRL);
        for (bool flip_child : {false, true}) {
          ExprPtr t2 = t1;
          if (flip_child) {
            Result<ExprPtr> flipped =
                ApplyBt(t1, BtSite{BtSite::Kind::kReversal, child_path});
            if (!flipped.ok()) continue;
            t2 = *flipped;
          }
          BtSite site{kind, p};
          if (!IsApplicable(t2, site)) continue;
          if (only_preserving && !ClassifyBt(t2, site).IsPreserving()) {
            continue;
          }
          Result<ExprPtr> next = ApplyBt(t2, site);
          FRO_CHECK(next.ok());
          ++*applications;
          out.push_back(CanonicalOrientation(*next));
        }
      }
    }
  }
  return out;
}

// Deterministic single-threaded BFS: stable `trees` order, exact
// truncation semantics (stop as soon as the state budget is exhausted).
ClosureResult SerialClosure(const ExprPtr& canonical_start,
                            const ClosureOptions& options) {
  ClosureResult result;
  std::unordered_set<uint64_t> seen;
  std::deque<ExprPtr> queue;

  seen.insert(canonical_start->hash());
  result.trees.push_back(canonical_start);
  queue.push_back(canonical_start);
  result.peak_frontier = 1;

  while (!queue.empty()) {
    ExprPtr tree = queue.front();
    queue.pop_front();
    for (const ExprPtr& next : Neighbors(tree, options.only_result_preserving,
                                         &result.bt_applications)) {
      if (seen.size() >= options.max_states) {
        result.truncated = true;
        return result;
      }
      if (seen.insert(next->hash()).second) {
        result.trees.push_back(next);
        queue.push_back(next);
        result.peak_frontier = std::max(result.peak_frontier, queue.size());
      }
    }
  }
  return result;
}

// Parallel frontier expansion. The seen-set is sharded by hash so workers
// dedup without a global lock; the work queue is a single mutex-protected
// deque (expansion dominates, so queue contention is negligible). The
// state *set* matches the serial search exactly; `trees` order does not.
class ParallelClosure {
 public:
  ParallelClosure(const ClosureOptions& options) : options_(options) {}

  ClosureResult Run(const ExprPtr& canonical_start) {
    MarkSeen(canonical_start->hash());
    seen_total_.store(1);
    trees_.push_back(canonical_start);
    queue_.push_back(canonical_start);
    peak_frontier_ = 1;
    outstanding_ = 1;

    const int n = std::max(2, options_.num_threads);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers.emplace_back([this] { Worker(); });
    }
    for (std::thread& worker : workers) worker.join();

    ClosureResult result;
    result.trees = std::move(trees_);
    result.truncated = truncated_.load();
    result.bt_applications = applications_.load();
    result.peak_frontier = peak_frontier_;
    return result;
  }

 private:
  static constexpr size_t kShards = 64;

  struct SeenShard {
    std::mutex mu;
    std::unordered_set<uint64_t> set;
  };

  bool MarkSeen(uint64_t hash) {
    SeenShard& shard = shards_[hash % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.set.insert(hash).second;
  }

  void Worker() {
    std::vector<ExprPtr> local_trees;
    uint64_t local_applications = 0;
    for (;;) {
      ExprPtr tree;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock,
                       [this] { return !queue_.empty() || outstanding_ == 0; });
        if (queue_.empty()) break;
        tree = std::move(queue_.front());
        queue_.pop_front();
      }
      std::vector<ExprPtr> fresh;
      for (ExprPtr& next : Neighbors(tree, options_.only_result_preserving,
                                     &local_applications)) {
        if (!MarkSeen(next->hash())) continue;
        // Admission is bounded by the state budget; hashes beyond it stay
        // marked (they will not be re-proposed) but are not recorded.
        if (seen_total_.fetch_add(1) + 1 > options_.max_states) {
          truncated_.store(true);
          continue;
        }
        local_trees.push_back(next);
        fresh.push_back(std::move(next));
      }
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        for (ExprPtr& next : fresh) queue_.push_back(std::move(next));
        peak_frontier_ = std::max(peak_frontier_, queue_.size());
        outstanding_ += fresh.size();
        --outstanding_;
      }
      queue_cv_.notify_all();
    }
    applications_.fetch_add(local_applications);
    std::lock_guard<std::mutex> lock(trees_mu_);
    trees_.insert(trees_.end(), local_trees.begin(), local_trees.end());
  }

  const ClosureOptions& options_;
  SeenShard shards_[kShards];
  std::atomic<size_t> seen_total_{0};
  std::atomic<bool> truncated_{false};
  std::atomic<uint64_t> applications_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<ExprPtr> queue_;
  size_t outstanding_ = 0;  // queued + being expanded, under queue_mu_
  size_t peak_frontier_ = 0;

  std::mutex trees_mu_;
  std::vector<ExprPtr> trees_;
};

}  // namespace

ClosureResult BtClosure(const ExprPtr& start, const ClosureOptions& options) {
  ExprPtr canonical_start = CanonicalOrientation(start);
  if (options.num_threads <= 1) {
    return SerialClosure(canonical_start, options);
  }
  ParallelClosure closure(options);
  return closure.Run(canonical_start);
}

}  // namespace fro
