// DPccp-style enumeration of connected subgraphs and their connected
// complements (Moerkotte & Neumann, "Analysis of Two Existing and One New
// Dynamic Programming Algorithm...", VLDB 2006), driven by the query
// graph's per-node neighbor bitsets.
//
// `ForEachCsgCmpPair` emits every unordered pair (S1, S2) of disjoint,
// individually connected node masks with at least one edge between them,
// exactly once, in an order where every pair whose union is a proper
// subset of S1 (resp. S2) has already been emitted — exactly the order a
// best-plan-per-connected-subset DP needs. The total work is linear in
// the number of emitted pairs (csg-cmp pairs), versus the Theta(3^n)
// submask scan of the all-masks DP.

#ifndef FRO_ENUMERATE_DPCCP_H_
#define FRO_ENUMERATE_DPCCP_H_

#include <bit>
#include <cstdint>

#include "graph/query_graph.h"

namespace fro {

namespace dpccp_internal {

/// Mask of nodes {0, ..., i}.
inline uint64_t NodesUpTo(int i) {
  return i >= 63 ? ~0ULL : (1ULL << (i + 1)) - 1;
}

/// Recursively grows the connected set `S` by subsets of its neighborhood
/// outside the exclusion set `X`, reporting each enlarged set. Subsets are
/// enumerated in ascending numeric order — `(sub - N) & N` steps through
/// the nonempty submasks of N from smallest to largest — which is what
/// makes the overall emission order subset-before-superset, the property
/// the DP relies on (a descending scan would emit a grown set before the
/// smaller sets its best plan is assembled from).
template <typename Fn>
void EnumerateCsgRec(const QueryGraph& graph, uint64_t S, uint64_t X,
                     Fn& emit) {
  const uint64_t N = graph.Neighbors(S) & ~X;
  if (N == 0) return;
  for (uint64_t sub = (0 - N) & N; sub != 0; sub = (sub - N) & N) {
    emit(S | sub);
  }
  for (uint64_t sub = (0 - N) & N; sub != 0; sub = (sub - N) & N) {
    EnumerateCsgRec(graph, S | sub, X | N, emit);
  }
}

}  // namespace dpccp_internal

/// Invokes `fn(s1, s2)` for every csg-cmp pair of `graph`. Both masks are
/// connected, disjoint, and joined by at least one edge; each unordered
/// pair is emitted once.
template <typename Fn>
void ForEachCsgCmpPair(const QueryGraph& graph, Fn&& fn) {
  using dpccp_internal::EnumerateCsgRec;
  using dpccp_internal::NodesUpTo;
  const int n = graph.num_nodes();

  // For a fixed connected S1, enumerate its connected complements: seeds
  // are neighbor nodes outside the "already handled" set X, grown through
  // their own neighborhoods.
  auto emit_csg = [&](uint64_t s1) {
    const int min_node = std::countr_zero(s1);
    const uint64_t x = NodesUpTo(min_node) | s1;
    const uint64_t neighborhood = graph.Neighbors(s1) & ~x;
    if (neighborhood == 0) return;
    // Seed complements from the highest neighbor down, so lower-numbered
    // seeds exclude the higher ones they would re-derive.
    uint64_t pending = neighborhood;
    while (pending != 0) {
      const int seed = 63 - std::countl_zero(pending);
      pending &= ~(1ULL << seed);
      const uint64_t s2 = 1ULL << seed;
      fn(s1, s2);
      auto emit_cmp = [&](uint64_t grown) { fn(s1, grown); };
      EnumerateCsgRec(graph, s2,
                      x | (NodesUpTo(seed) & neighborhood), emit_cmp);
    }
  };

  for (int i = n - 1; i >= 0; --i) {
    const uint64_t s1 = 1ULL << i;
    emit_csg(s1);
    auto emit_grown = [&](uint64_t grown) { emit_csg(grown); };
    EnumerateCsgRec(graph, s1, NodesUpTo(i), emit_grown);
  }
}

}  // namespace fro

#endif  // FRO_ENUMERATE_DPCCP_H_
