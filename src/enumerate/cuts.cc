#include "enumerate/cuts.h"

#include <bit>
#include <vector>

namespace fro {

RelId MinRel(const QueryGraph& graph, uint64_t mask) {
  RelId best = ~0u;
  while (mask != 0) {
    int node = std::countr_zero(mask);
    mask &= mask - 1;
    RelId rel = graph.node_rel(node);
    if (rel < best) best = rel;
  }
  return best;
}

bool MakeCut(const QueryGraph& graph, uint64_t a, uint64_t b, Cut* cut) {
  if (!graph.IsConnected(a) || !graph.IsConnected(b)) return false;
  std::vector<int> crossing = graph.EdgesCrossing(a, b);
  if (crossing.empty()) return false;  // Cartesian product: excluded

  int directed_count = 0;
  for (int idx : crossing) {
    if (graph.edge(idx).directed) ++directed_count;
  }

  uint64_t left = a;
  uint64_t right = b;
  if (MinRel(graph, b) < MinRel(graph, a)) std::swap(left, right);

  if (directed_count == 0) {
    std::vector<PredicatePtr> conjuncts;
    conjuncts.reserve(crossing.size());
    for (int idx : crossing) conjuncts.push_back(graph.edge(idx).pred);
    cut->left = left;
    cut->right = right;
    cut->outerjoin = false;
    cut->preserves_left = true;
    cut->pred = Predicate::And(std::move(conjuncts));
    return true;
  }
  if (directed_count == 1 && crossing.size() == 1) {
    const GraphEdge& e = graph.edge(crossing[0]);
    cut->left = left;
    cut->right = right;
    cut->outerjoin = true;
    cut->preserves_left = ((left >> e.u) & 1) != 0;
    cut->pred = e.pred;
    return true;
  }
  return false;  // mixed cut or several directed edges
}

}  // namespace fro
