#include "enumerate/bt_path.h"

#include <deque>
#include <unordered_map>

#include "algebra/transform.h"
#include "common/check.h"
#include "enumerate/it_enum.h"

namespace fro {

namespace {

void CollectJoinLikePaths(const ExprPtr& node, ExprPath* path,
                          std::vector<ExprPath>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->is_join_like()) out->push_back(*path);
  if (node->left() != nullptr) {
    path->push_back(false);
    CollectJoinLikePaths(node->left(), path, out);
    path->pop_back();
  }
  if (node->right() != nullptr) {
    path->push_back(true);
    CollectJoinLikePaths(node->right(), path, out);
    path->pop_back();
  }
}

struct Neighbor {
  ExprPtr tree;  // canonicalized
  std::string rule;
};

std::vector<Neighbor> Neighbors(const ExprPtr& tree, bool only_preserving) {
  std::vector<Neighbor> out;
  std::vector<ExprPath> paths;
  ExprPath scratch;
  CollectJoinLikePaths(tree, &scratch, &paths);
  for (const ExprPath& p : paths) {
    for (bool flip_node : {false, true}) {
      ExprPtr t1 = tree;
      if (flip_node) {
        Result<ExprPtr> flipped =
            ApplyBt(tree, BtSite{BtSite::Kind::kReversal, p});
        if (!flipped.ok()) continue;
        t1 = *flipped;
      }
      for (BtSite::Kind kind :
           {BtSite::Kind::kAssocLR, BtSite::Kind::kAssocRL}) {
        ExprPath child_path = p;
        child_path.push_back(kind == BtSite::Kind::kAssocRL);
        for (bool flip_child : {false, true}) {
          ExprPtr t2 = t1;
          if (flip_child) {
            Result<ExprPtr> flipped =
                ApplyBt(t1, BtSite{BtSite::Kind::kReversal, child_path});
            if (!flipped.ok()) continue;
            t2 = *flipped;
          }
          BtSite site{kind, p};
          if (!IsApplicable(t2, site)) continue;
          BtClassification classification = ClassifyBt(t2, site);
          if (only_preserving && !classification.IsPreserving()) continue;
          Result<ExprPtr> next = ApplyBt(t2, site);
          FRO_CHECK(next.ok());
          out.push_back({CanonicalOrientation(*next), classification.rule});
        }
      }
    }
  }
  return out;
}

}  // namespace

BtPathResult FindBtPath(const ExprPtr& from, const ExprPtr& to,
                        bool only_result_preserving, size_t max_states) {
  BtPathResult result;
  ExprPtr start = CanonicalOrientation(from);
  ExprPtr target = CanonicalOrientation(to);
  const std::string target_fp = target->Fingerprint();

  struct NodeInfo {
    ExprPtr tree;
    std::string parent_fp;  // empty for the start
    std::string rule;
  };
  std::unordered_map<std::string, NodeInfo> visited;
  std::deque<std::string> queue;
  const std::string start_fp = start->Fingerprint();
  visited.emplace(start_fp, NodeInfo{start, "", ""});
  queue.push_back(start_fp);

  while (!queue.empty() && visited.size() < max_states) {
    std::string fp = queue.front();
    queue.pop_front();
    if (fp == target_fp) break;
    ExprPtr tree = visited.at(fp).tree;
    for (Neighbor& neighbor : Neighbors(tree, only_result_preserving)) {
      std::string nfp = neighbor.tree->Fingerprint();
      if (visited.count(nfp) > 0) continue;
      visited.emplace(nfp,
                      NodeInfo{neighbor.tree, fp, std::move(neighbor.rule)});
      queue.push_back(nfp);
    }
  }

  auto it = visited.find(target_fp);
  if (it == visited.end()) return result;
  // Reconstruct backwards.
  std::vector<BtPathStep> reversed;
  std::string fp = target_fp;
  while (!fp.empty()) {
    const NodeInfo& info = visited.at(fp);
    reversed.push_back({info.tree, info.rule});
    fp = info.parent_fp;
  }
  result.found = true;
  result.steps.assign(reversed.rbegin(), reversed.rend());
  return result;
}

}  // namespace fro
