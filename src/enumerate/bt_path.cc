#include "enumerate/bt_path.h"

#include <deque>
#include <unordered_map>

#include "algebra/transform.h"
#include "common/check.h"
#include "enumerate/it_enum.h"

namespace fro {

namespace {

void CollectJoinLikePaths(const ExprPtr& node, ExprPath* path,
                          std::vector<ExprPath>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->is_join_like()) out->push_back(*path);
  if (node->left() != nullptr) {
    path->push_back(false);
    CollectJoinLikePaths(node->left(), path, out);
    path->pop_back();
  }
  if (node->right() != nullptr) {
    path->push_back(true);
    CollectJoinLikePaths(node->right(), path, out);
    path->pop_back();
  }
}

struct Neighbor {
  ExprPtr tree;  // canonicalized
  std::string rule;
};

std::vector<Neighbor> Neighbors(const ExprPtr& tree, bool only_preserving) {
  std::vector<Neighbor> out;
  std::vector<ExprPath> paths;
  ExprPath scratch;
  CollectJoinLikePaths(tree, &scratch, &paths);
  for (const ExprPath& p : paths) {
    for (bool flip_node : {false, true}) {
      ExprPtr t1 = tree;
      if (flip_node) {
        Result<ExprPtr> flipped =
            ApplyBt(tree, BtSite{BtSite::Kind::kReversal, p});
        if (!flipped.ok()) continue;
        t1 = *flipped;
      }
      for (BtSite::Kind kind :
           {BtSite::Kind::kAssocLR, BtSite::Kind::kAssocRL}) {
        ExprPath child_path = p;
        child_path.push_back(kind == BtSite::Kind::kAssocRL);
        for (bool flip_child : {false, true}) {
          ExprPtr t2 = t1;
          if (flip_child) {
            Result<ExprPtr> flipped =
                ApplyBt(t1, BtSite{BtSite::Kind::kReversal, child_path});
            if (!flipped.ok()) continue;
            t2 = *flipped;
          }
          BtSite site{kind, p};
          if (!IsApplicable(t2, site)) continue;
          BtClassification classification = ClassifyBt(t2, site);
          if (only_preserving && !classification.IsPreserving()) continue;
          Result<ExprPtr> next = ApplyBt(t2, site);
          FRO_CHECK(next.ok());
          out.push_back({CanonicalOrientation(*next), classification.rule});
        }
      }
    }
  }
  return out;
}

}  // namespace

BtPathResult FindBtPath(const ExprPtr& from, const ExprPtr& to,
                        bool only_result_preserving, size_t max_states) {
  BtPathResult result;
  ExprPtr start = CanonicalOrientation(from);
  ExprPtr target = CanonicalOrientation(to);
  const uint64_t target_key = target->hash();

  struct NodeInfo {
    ExprPtr tree;
    uint64_t parent_key = 0;
    std::string rule;
    bool is_start = false;
  };
  std::unordered_map<uint64_t, NodeInfo> visited;
  std::deque<uint64_t> queue;
  const uint64_t start_key = start->hash();
  visited.emplace(start_key, NodeInfo{start, 0, "", /*is_start=*/true});
  queue.push_back(start_key);

  while (!queue.empty() && visited.size() < max_states) {
    uint64_t key = queue.front();
    queue.pop_front();
    if (key == target_key) break;
    ExprPtr tree = visited.at(key).tree;
    for (Neighbor& neighbor : Neighbors(tree, only_result_preserving)) {
      uint64_t nkey = neighbor.tree->hash();
      if (visited.count(nkey) > 0) continue;
      visited.emplace(
          nkey, NodeInfo{neighbor.tree, key, std::move(neighbor.rule), false});
      queue.push_back(nkey);
    }
  }

  auto it = visited.find(target_key);
  if (it == visited.end()) return result;
  // Reconstruct backwards.
  std::vector<BtPathStep> reversed;
  uint64_t key = target_key;
  for (;;) {
    const NodeInfo& info = visited.at(key);
    reversed.push_back({info.tree, info.rule});
    if (info.is_start) break;
    key = info.parent_key;
  }
  result.found = true;
  result.steps.assign(reversed.rbegin(), reversed.rend());
  return result;
}

}  // namespace fro
