// Implementing-tree enumeration (paper Section 1.3 / 3.1).
//
// An implementing tree (IT) of a query graph G is an expression Q with
// graph(Q) = G. ITs correspond to connectivity-preserving
// parenthesizations: each operator's predicate is the set of graph edges
// crossing a connected bipartition of its subgraph; Cartesian products are
// excluded. An outerjoin operator's cut must be exactly its one directed
// edge; a join operator's cut is a nonempty set of join edges.
//
// Trees are produced in *canonical orientation*: at every node the left
// subtree contains the smallest ground-relation id of the node's leaves.
// Every IT equals exactly one canonical tree up to reversal BTs (which are
// always result-preserving), so enumeration, counting, and closure all
// work modulo reversal.

#ifndef FRO_ENUMERATE_IT_ENUM_H_
#define FRO_ENUMERATE_IT_ENUM_H_

#include <cstdint>
#include <vector>

#include "algebra/expr.h"
#include "common/rng.h"
#include "graph/query_graph.h"
#include "relational/database.h"

namespace fro {

/// Search-space accounting for enumeration / counting runs.
struct EnumStats {
  /// Distinct connected node-masks the memo table materialized.
  uint64_t states_visited = 0;
  /// Trees produced (EnumerateIts) or counted (CountIts).
  uint64_t trees = 0;
};

/// All canonical implementing trees of `graph` (which must be connected).
/// Stops after `limit` trees when given. Fills `stats` when non-null.
std::vector<ExprPtr> EnumerateIts(const QueryGraph& graph, const Database& db,
                                  size_t limit = static_cast<size_t>(-1),
                                  EnumStats* stats = nullptr);

/// Number of canonical implementing trees, without materializing them.
/// Fills `stats` when non-null.
uint64_t CountIts(const QueryGraph& graph, EnumStats* stats = nullptr);

/// A uniformly random canonical implementing tree (null if the graph has
/// none, e.g. it is disconnected).
ExprPtr RandomIt(const QueryGraph& graph, const Database& db, Rng* rng);

/// Reorients every join-like node so the left subtree holds the smallest
/// ground-relation id (applying reversals; flags flip accordingly).
ExprPtr CanonicalOrientation(const ExprPtr& expr);

}  // namespace fro

#endif  // FRO_ENUMERATE_IT_ENUM_H_
