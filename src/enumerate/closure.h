// Closure of an implementing tree under basic transforms (paper
// Section 3.2, Lemmas 2 and 3).
//
// States are canonical orientations (see it_enum.h), so reversal BTs are
// folded away; a closure step is "optional reversals at the two involved
// nodes, then one reassociation, then recanonicalize". A step is
// result-preserving iff its reassociation is (reversals always are).
//
// States are deduplicated on the cached structural hash (Expr::hash);
// with the hash-consing arena a visit costs O(1) instead of the
// O(tree)-sized fingerprint string the seed implementation rebuilt per
// visit. Expansion can run on a worker pool whose shared seen-set is
// mutex-sharded by hash; the serial mode is deterministic and is what
// tests use.

#ifndef FRO_ENUMERATE_CLOSURE_H_
#define FRO_ENUMERATE_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "algebra/expr.h"

namespace fro {

struct ClosureOptions {
  /// Restrict expansion to result-preserving BTs (the Lemma 2 set). With
  /// false, all applicable BTs are used (the Lemma 3 set).
  bool only_result_preserving = false;
  /// Stop after reaching this many states (safety valve).
  size_t max_states = 1000000;
  /// Worker threads expanding the frontier. <= 1 runs the deterministic
  /// serial BFS (stable `trees` order); > 1 runs the parallel search,
  /// which visits the same state set in unspecified order.
  int num_threads = 1;
};

struct ClosureResult {
  /// Canonical trees reachable from the start (including the start).
  std::vector<ExprPtr> trees;
  bool truncated = false;
  /// Number of successful BT applications performed during the search.
  uint64_t bt_applications = 0;
  /// Largest number of states that were queued but not yet expanded.
  size_t peak_frontier = 0;
};

ClosureResult BtClosure(const ExprPtr& start,
                        const ClosureOptions& options = ClosureOptions());

}  // namespace fro

#endif  // FRO_ENUMERATE_CLOSURE_H_
