// Closure of an implementing tree under basic transforms (paper
// Section 3.2, Lemmas 2 and 3).
//
// States are canonical orientations (see it_enum.h), so reversal BTs are
// folded away; a closure step is "optional reversals at the two involved
// nodes, then one reassociation, then recanonicalize". A step is
// result-preserving iff its reassociation is (reversals always are).

#ifndef FRO_ENUMERATE_CLOSURE_H_
#define FRO_ENUMERATE_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "algebra/expr.h"

namespace fro {

struct ClosureOptions {
  /// Restrict expansion to result-preserving BTs (the Lemma 2 set). With
  /// false, all applicable BTs are used (the Lemma 3 set).
  bool only_result_preserving = false;
  /// Stop after reaching this many states (safety valve).
  size_t max_states = 1000000;
};

struct ClosureResult {
  /// Canonical trees reachable from the start (including the start).
  std::vector<ExprPtr> trees;
  bool truncated = false;
  /// Number of successful BT applications performed during the search.
  uint64_t bt_applications = 0;
};

ClosureResult BtClosure(const ExprPtr& start,
                        const ClosureOptions& options = ClosureOptions());

}  // namespace fro

#endif  // FRO_ENUMERATE_CLOSURE_H_
