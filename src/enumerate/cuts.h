// Connected-bipartition ("cut") enumeration over query graphs, shared by
// the implementing-tree enumerator and the DP optimizer.

#ifndef FRO_ENUMERATE_CUTS_H_
#define FRO_ENUMERATE_CUTS_H_

#include <cstdint>

#include "graph/query_graph.h"
#include "relational/predicate.h"

namespace fro {

/// A realizable connected bipartition of a node mask and the operator it
/// induces (see it_enum.h for realizability).
struct Cut {
  uint64_t left;   // node mask of the (canonical) left part
  uint64_t right;  // node mask of the right part
  bool outerjoin;  // true: the cut is a single directed edge
  bool preserves_left;
  PredicatePtr pred;
};

/// The smallest ground-relation id among the graph nodes in `mask`.
RelId MinRel(const QueryGraph& graph, uint64_t mask);

/// Examines the bipartition (a, b) of some connected mask; fills `cut`
/// (with canonical left/right orientation: the part holding the smallest
/// relation id goes left) and returns true if it is realizable.
bool MakeCut(const QueryGraph& graph, uint64_t a, uint64_t b, Cut* cut);

/// Enumerates realizable cuts of a connected `mask`, invoking `fn(cut)`
/// for each; stops early if fn returns false. Each unordered bipartition
/// is visited once.
template <typename Fn>
void ForEachCut(const QueryGraph& graph, uint64_t mask, Fn&& fn) {
  const uint64_t low = mask & (~mask + 1);
  for (uint64_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
    if ((sub & low) == 0) continue;
    uint64_t rest = mask & ~sub;
    Cut cut;
    if (!MakeCut(graph, sub, rest, &cut)) continue;
    if (!fn(cut)) return;
  }
}

}  // namespace fro

#endif  // FRO_ENUMERATE_CUTS_H_
