// Constructive Lemma 3 / Theorem 1: find an explicit sequence of basic
// transforms taking one implementing tree to another. The paper's proof
// of Theorem 1 is exactly such a sequence
//
//   Q = Q_0 ~BT~> Q_1 ~BT~> ... ~BT~> Q_n = Q'
//
// with every step result-preserving; this module materializes it via
// breadth-first search over canonical orientations, so the returned
// sequence is shortest (in reassociation count; reversals are folded into
// canonicalization).

#ifndef FRO_ENUMERATE_BT_PATH_H_
#define FRO_ENUMERATE_BT_PATH_H_

#include <string>
#include <vector>

#include "algebra/expr.h"

namespace fro {

struct BtPathStep {
  ExprPtr tree;      // the tree after applying `rule`
  std::string rule;  // the identity used; empty for the starting tree
};

struct BtPathResult {
  bool found = false;
  /// steps[0] is the canonicalized start; steps.back() the canonicalized
  /// target. Empty when not found.
  std::vector<BtPathStep> steps;
};

/// Searches for a BT sequence from `from` to `to` (compared modulo
/// reversal). With `only_result_preserving`, every step must be a
/// result-preserving BT — by Lemma 2 + Lemma 3 such a path exists between
/// any two implementing trees of a nice graph with strong predicates.
BtPathResult FindBtPath(const ExprPtr& from, const ExprPtr& to,
                        bool only_result_preserving = true,
                        size_t max_states = 100000);

}  // namespace fro

#endif  // FRO_ENUMERATE_BT_PATH_H_
