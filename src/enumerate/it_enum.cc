#include "enumerate/it_enum.h"

#include <bit>
#include <unordered_map>

#include "common/check.h"
#include "enumerate/cuts.h"

namespace fro {

namespace {

class Enumerator {
 public:
  Enumerator(const QueryGraph& graph, const Database& db, size_t limit)
      : graph_(graph), db_(db), limit_(limit) {}

  const std::vector<ExprPtr>& TreesFor(uint64_t mask) {
    auto it = memo_.find(mask);
    if (it != memo_.end()) return it->second;
    std::vector<ExprPtr> trees;
    if (std::popcount(mask) == 1) {
      int node = std::countr_zero(mask);
      trees.push_back(Expr::Leaf(graph_.node_rel(node), db_));
    } else {
      ForEachCut(graph_, mask, [&](const Cut& cut) {
        const std::vector<ExprPtr>& lefts = TreesFor(cut.left);
        const std::vector<ExprPtr>& rights = TreesFor(cut.right);
        for (const ExprPtr& lt : lefts) {
          for (const ExprPtr& rt : rights) {
            if (cut.outerjoin) {
              trees.push_back(
                  Expr::OuterJoin(lt, rt, cut.pred, cut.preserves_left));
            } else {
              trees.push_back(Expr::Join(lt, rt, cut.pred));
            }
            if (trees.size() >= limit_) return false;
          }
        }
        return true;
      });
    }
    return memo_.emplace(mask, std::move(trees)).first->second;
  }

  uint64_t states_visited() const { return memo_.size(); }

 private:
  const QueryGraph& graph_;
  const Database& db_;
  size_t limit_;
  std::unordered_map<uint64_t, std::vector<ExprPtr>> memo_;
};

class Counter {
 public:
  explicit Counter(const QueryGraph& graph) : graph_(graph) {}

  uint64_t CountFor(uint64_t mask) {
    auto it = memo_.find(mask);
    if (it != memo_.end()) return it->second;
    uint64_t count = 0;
    if (std::popcount(mask) == 1) {
      count = 1;
    } else {
      ForEachCut(graph_, mask, [&](const Cut& cut) {
        count += CountFor(cut.left) * CountFor(cut.right);
        return true;
      });
    }
    memo_.emplace(mask, count);
    return count;
  }

  uint64_t states_visited() const { return memo_.size(); }

 private:
  const QueryGraph& graph_;
  std::unordered_map<uint64_t, uint64_t> memo_;
};

}  // namespace

std::vector<ExprPtr> EnumerateIts(const QueryGraph& graph, const Database& db,
                                  size_t limit, EnumStats* stats) {
  FRO_CHECK(graph.IsConnected(graph.AllMask()))
      << "implementing trees require a connected query graph";
  Enumerator enumerator(graph, db, limit);
  std::vector<ExprPtr> trees = enumerator.TreesFor(graph.AllMask());
  if (trees.size() > limit) trees.resize(limit);
  if (stats != nullptr) {
    stats->states_visited = enumerator.states_visited();
    stats->trees = trees.size();
  }
  return trees;
}

uint64_t CountIts(const QueryGraph& graph, EnumStats* stats) {
  if (!graph.IsConnected(graph.AllMask())) return 0;
  Counter counter(graph);
  uint64_t count = counter.CountFor(graph.AllMask());
  if (stats != nullptr) {
    stats->states_visited = counter.states_visited();
    stats->trees = count;
  }
  return count;
}

namespace {

ExprPtr RandomItFor(const QueryGraph& graph, const Database& db,
                    uint64_t mask, Counter* counter, Rng* rng) {
  if (std::popcount(mask) == 1) {
    int node = std::countr_zero(mask);
    return Expr::Leaf(graph.node_rel(node), db);
  }
  // Weighted choice over cuts, weight = #trees(left) * #trees(right).
  struct Choice {
    Cut cut;
    uint64_t weight;
  };
  std::vector<Choice> choices;
  uint64_t total = 0;
  ForEachCut(graph, mask, [&](const Cut& cut) {
    uint64_t w = counter->CountFor(cut.left) * counter->CountFor(cut.right);
    if (w > 0) {
      choices.push_back({cut, w});
      total += w;
    }
    return true;
  });
  if (total == 0) return nullptr;
  uint64_t pick = rng->Uniform(total);
  for (const Choice& choice : choices) {
    if (pick < choice.weight) {
      ExprPtr lt = RandomItFor(graph, db, choice.cut.left, counter, rng);
      ExprPtr rt = RandomItFor(graph, db, choice.cut.right, counter, rng);
      if (choice.cut.outerjoin) {
        return Expr::OuterJoin(lt, rt, choice.cut.pred,
                               choice.cut.preserves_left);
      }
      return Expr::Join(lt, rt, choice.cut.pred);
    }
    pick -= choice.weight;
  }
  return nullptr;
}

}  // namespace

ExprPtr RandomIt(const QueryGraph& graph, const Database& db, Rng* rng) {
  if (!graph.IsConnected(graph.AllMask())) return nullptr;
  Counter counter(graph);
  if (counter.CountFor(graph.AllMask()) == 0) return nullptr;
  return RandomItFor(graph, db, graph.AllMask(), &counter, rng);
}

ExprPtr CanonicalOrientation(const ExprPtr& expr) {
  if (expr->is_leaf()) return expr;
  if (!expr->is_join_like()) {
    // Canonicalize below non-IT operators without reorienting them.
    ExprPtr left =
        expr->left() != nullptr ? CanonicalOrientation(expr->left()) : nullptr;
    ExprPtr right = expr->right() != nullptr
                        ? CanonicalOrientation(expr->right())
                        : nullptr;
    if (left == expr->left() && right == expr->right()) return expr;
    switch (expr->kind()) {
      case OpKind::kGoj:
        return Expr::Goj(left, right, expr->pred(), expr->goj_subset());
      case OpKind::kUnion:
        return Expr::Union(left, right);
      case OpKind::kRestrict:
        return Expr::Restrict(left, expr->pred());
      case OpKind::kProject:
        return Expr::Project(left, expr->project_cols(),
                             expr->project_dedup());
      default:
        FRO_CHECK(false);
    }
  }
  ExprPtr left = CanonicalOrientation(expr->left());
  ExprPtr right = CanonicalOrientation(expr->right());
  const uint64_t lmask = left->rel_mask();
  const uint64_t rmask = right->rel_mask();
  bool flip = std::countr_zero(rmask) < std::countr_zero(lmask);
  bool preserves_left = expr->preserves_left();
  if (flip) {
    std::swap(left, right);
    preserves_left = !preserves_left;
  }
  if (!flip && left == expr->left() && right == expr->right()) return expr;
  switch (expr->kind()) {
    case OpKind::kJoin:
      return Expr::Join(left, right, expr->pred());
    case OpKind::kOuterJoin:
      return Expr::OuterJoin(left, right, expr->pred(), preserves_left);
    case OpKind::kAntijoin:
      return Expr::Antijoin(left, right, expr->pred(), preserves_left);
    case OpKind::kSemijoin:
      return Expr::Semijoin(left, right, expr->pred(), preserves_left);
    default:
      FRO_CHECK(false);
  }
  return nullptr;
}

}  // namespace fro
