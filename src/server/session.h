// The query-serving session: every data-bearing verb (QUERY / EXPLAIN /
// ANALYZE) funnels through here. One QuerySession is shared by all
// worker threads; it is stateless per call apart from three shared,
// internally synchronized components:
//
//   * an AST memo — repeated query texts are lexed and parsed once and
//     the SelectQuery replayed (the lang layer's parse-once reuse),
//   * the LRU plan cache threaded into Optimize (hash-keyed plan reuse),
//   * the metrics registry (latency, outcomes, per-operator totals).
//
// QUERY runs through lang::RunParsedQuery — the one Status-carrying
// execution surface — with the caller's ExecControl attached, so
// deadlines and CANCEL stop it mid-drain and surface as kCancelled /
// kDeadlineExceeded statuses; results render as the canonical table
// (sorted rows and columns), which is what makes "byte-identical to
// serial execution" a testable claim. The executor engine (batch by
// default) is a per-session option; per-operator metrics roll up from
// the engine-agnostic PlanOpStats snapshot either engine produces.

#ifndef FRO_SERVER_SESSION_H_
#define FRO_SERVER_SESSION_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/batch.h"
#include "exec/iterator.h"
#include "lang/ast.h"
#include "lang/model.h"
#include "server/metrics.h"
#include "optimizer/feedback.h"
#include "optimizer/plan_cache.h"
#include "server/protocol.h"

namespace fro {

/// A shared pool of *extra* intra-query worker threads — the server's
/// admission control for morsel-driven parallelism (exec/morsel.h). A
/// query wanting N workers asks for N-1 extras (it always keeps its own
/// serving thread); TryAcquire is best-effort and may grant fewer,
/// including zero, in which case the query simply runs serially. A busy
/// server therefore degrades to serial execution instead of queueing or
/// oversubscribing cores.
class ThreadBudget {
 public:
  explicit ThreadBudget(size_t capacity) : available_(capacity) {}

  /// Grants min(want, available) extra threads and reserves them.
  size_t TryAcquire(size_t want);

  /// Returns `granted` threads to the pool (pass TryAcquire's result).
  void Release(size_t granted);

  size_t available() const;

 private:
  mutable std::mutex mu_;
  size_t available_;
};

struct SessionOptions {
  /// Parsed-AST memo entries kept (LRU); 0 disables the memo.
  size_t ast_cache_capacity = 256;
  /// Which execution engine serves QUERY / ANALYZE (results and counters
  /// are engine-independent).
  ExecEngine engine = ExecEngine::kBatch;
  /// Per-query execution deadline armed through RunOptions; <= 0
  /// disables deadlines.
  int default_deadline_ms = 0;
  /// Intra-query worker threads used when a request carries no
  /// `?threads=` option; 1 = serial (the bit-identical default).
  int default_query_threads = 1;
  /// Hard per-request cap: a `?threads=N` ask is clamped to this before
  /// consulting the budget.
  int max_query_threads = 1;
  /// Optional shared pool of extra worker threads (admission control
  /// across concurrent queries). Not owned; null means no pooling — every
  /// request gets its clamped ask.
  ThreadBudget* thread_budget = nullptr;
  /// Optional shared cardinality-feedback store (optimizer/feedback.h).
  /// QUERY executions feed their measured per-operator cardinalities in
  /// and report Q-error to the plan cache; all three verbs plan against
  /// a snapshot of the corrections, and ANALYZE marks corrected
  /// estimates. Not owned; null disables the feedback loop.
  FeedbackStore* feedback = nullptr;
};

class QuerySession {
 public:
  /// None of the pointers are owned; `metrics` and `plan_cache` may be
  /// null (no recording / no caching). `db` must outlive the session and
  /// stay unmodified while queries run.
  QuerySession(const NestedDb* db, LruPlanCache* plan_cache,
               ServerMetrics* metrics,
               SessionOptions options = SessionOptions());

  /// Serves one QUERY / EXPLAIN / ANALYZE request. `control` may be null
  /// (no deadline, not cancellable). Thread-safe.
  Response Execute(const Request& request, ExecControl* control);

  /// Parse-once memo counters (hits = reused ASTs).
  uint64_t ast_hits() const;
  uint64_t ast_misses() const;

 private:
  Result<SelectQuery> ParseCached(const std::string& text);

  /// Resolves a request's thread ask into the worker count the query may
  /// actually use: clamp to [1, max_query_threads], then reserve the
  /// extras (ask - 1) from the budget. Pair with ReleaseThreads.
  int AcquireThreads(int requested);
  void ReleaseThreads(int acquired);

  Response RunQueryVerb(const std::string& text, int threads,
                        ExecControl* control, bool* cache_hit);
  Response RunExplainVerb(const std::string& text);
  Response RunAnalyzeVerb(const std::string& text, int threads);

  const NestedDb* db_;
  LruPlanCache* plan_cache_;
  ServerMetrics* metrics_;
  SessionOptions options_;

  mutable std::mutex ast_mu_;
  /// Front = most recently used.
  std::list<std::pair<std::string, SelectQuery>> ast_lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, SelectQuery>>::iterator>
      ast_index_;
  uint64_t ast_hits_ = 0;
  uint64_t ast_misses_ = 0;
};

}  // namespace fro

#endif  // FRO_SERVER_SESSION_H_
