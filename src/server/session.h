// The query-serving session: every data-bearing verb (QUERY / EXPLAIN /
// ANALYZE) funnels through here. One QuerySession is shared by all
// worker threads; it is stateless per call apart from three shared,
// internally synchronized components:
//
//   * an AST memo — repeated query texts are lexed and parsed once and
//     the SelectQuery replayed (the lang layer's parse-once reuse),
//   * the LRU plan cache threaded into Optimize (hash-keyed plan reuse),
//   * the metrics registry (latency, outcomes, per-operator totals).
//
// QUERY runs through lang::RunParsedQuery — the one Status-carrying
// execution surface — with the caller's ExecControl attached, so
// deadlines and CANCEL stop it mid-drain and surface as kCancelled /
// kDeadlineExceeded statuses; results render as the canonical table
// (sorted rows and columns), which is what makes "byte-identical to
// serial execution" a testable claim. The executor engine (batch by
// default) is a per-session option; per-operator metrics roll up from
// the engine-agnostic PlanOpStats snapshot either engine produces.

#ifndef FRO_SERVER_SESSION_H_
#define FRO_SERVER_SESSION_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/batch.h"
#include "exec/iterator.h"
#include "lang/ast.h"
#include "lang/model.h"
#include "server/metrics.h"
#include "optimizer/plan_cache.h"
#include "server/protocol.h"

namespace fro {

struct SessionOptions {
  /// Parsed-AST memo entries kept (LRU); 0 disables the memo.
  size_t ast_cache_capacity = 256;
  /// Which execution engine serves QUERY / ANALYZE (results and counters
  /// are engine-independent).
  ExecEngine engine = ExecEngine::kBatch;
  /// Per-query execution deadline armed through RunOptions; <= 0
  /// disables deadlines.
  int default_deadline_ms = 0;
};

class QuerySession {
 public:
  /// None of the pointers are owned; `metrics` and `plan_cache` may be
  /// null (no recording / no caching). `db` must outlive the session and
  /// stay unmodified while queries run.
  QuerySession(const NestedDb* db, LruPlanCache* plan_cache,
               ServerMetrics* metrics,
               SessionOptions options = SessionOptions());

  /// Serves one QUERY / EXPLAIN / ANALYZE request. `control` may be null
  /// (no deadline, not cancellable). Thread-safe.
  Response Execute(const Request& request, ExecControl* control);

  /// Parse-once memo counters (hits = reused ASTs).
  uint64_t ast_hits() const;
  uint64_t ast_misses() const;

 private:
  Result<SelectQuery> ParseCached(const std::string& text);

  Response RunQueryVerb(const std::string& text, ExecControl* control,
                        bool* cache_hit);
  Response RunExplainVerb(const std::string& text);
  Response RunAnalyzeVerb(const std::string& text);

  const NestedDb* db_;
  LruPlanCache* plan_cache_;
  ServerMetrics* metrics_;
  SessionOptions options_;

  mutable std::mutex ast_mu_;
  /// Front = most recently used.
  std::list<std::pair<std::string, SelectQuery>> ast_lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, SelectQuery>>::iterator>
      ast_index_;
  uint64_t ast_hits_ = 0;
  uint64_t ast_misses_ = 0;
};

}  // namespace fro

#endif  // FRO_SERVER_SESSION_H_
