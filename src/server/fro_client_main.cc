// fro_client — command-line client for fro_serve.
//
//   $ fro_client --port 7437 "Select All From EMPLOYEE*ChildName"
//   $ echo "\\stats" | fro_client --port 7437
//
// Each input line (arguments joined, else stdin) is one request:
//   \explain <query>   EXPLAIN
//   \analyze <query>   ANALYZE
//   \stats             STATS
//   \cancel <tag>      CANCEL
//   \ping              PING
//   anything else      QUERY
//
// Responses print as `[ok]` or `[err <status>]` plus the body.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/str_util.h"
#include "server/client.h"

namespace {

void Dispatch(fro::FroClient& client, const std::string& line) {
  if (line.empty()) return;
  fro::Result<fro::Response> reply =
      fro::StartsWith(line, "\\explain ")  ? client.Explain(line.substr(9))
      : fro::StartsWith(line, "\\analyze ") ? client.Analyze(line.substr(9))
      : fro::StartsWith(line, "\\stats")    ? client.Stats()
      : fro::StartsWith(line, "\\cancel ")  ? client.Cancel(line.substr(8))
      : fro::StartsWith(line, "\\ping")     ? client.Ping()
                                            : client.Query(line);
  if (!reply.ok()) {
    std::printf("[transport error] %s\n", reply.status().ToString().c_str());
    return;
  }
  if (reply->status.ok()) {
    std::printf("[ok]\n%s", reply->body.c_str());
  } else {
    std::printf("[err %s]\n", reply->status.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7437;
  int first_arg = 1;
  for (; first_arg < argc; ++first_arg) {
    if (std::strcmp(argv[first_arg], "--host") == 0 &&
        first_arg + 1 < argc) {
      host = argv[++first_arg];
    } else if (std::strcmp(argv[first_arg], "--port") == 0 &&
               first_arg + 1 < argc) {
      port = std::atoi(argv[++first_arg]);
    } else {
      break;
    }
  }

  fro::FroClient client;
  fro::Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "fro_client: %s\n", connected.ToString().c_str());
    return 1;
  }

  if (first_arg < argc) {
    std::string line;
    for (int i = first_arg; i < argc; ++i) {
      if (i > first_arg) line += " ";
      line += argv[i];
    }
    Dispatch(client, line);
    return 0;
  }
  std::string line;
  while (std::getline(std::cin, line)) Dispatch(client, line);
  return 0;
}
