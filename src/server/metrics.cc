#include "server/metrics.h"

#include <cstdio>

namespace fro {

namespace {

int BucketOf(uint64_t micros) {
  int bucket = 0;
  while (micros > 1 && bucket < LatencyHistogram::kBuckets - 1) {
    micros >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * (total - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket > rank) {
      // Linear interpolation inside [2^(b-1), 2^b).
      const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
      const double hi = static_cast<double>(1ull << b);
      const double frac =
          static_cast<double>(rank - seen + 1) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return static_cast<double>(1ull << (kBuckets - 1));
}

double LatencyHistogram::mean() const {
  const uint64_t total = count();
  if (total == 0) return 0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(total);
}

void ServerMetrics::RecordQuery(const QueryObservation& observation) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(observation.latency_micros);
  if (observation.cache_hit) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  switch (observation.status.code()) {
    case StatusCode::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kDeadlineExceeded:
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void ServerMetrics::RecordOperator(const std::string& physical_name,
                                   const ExecStats& stats) {
  std::lock_guard<std::mutex> lock(op_mu_);
  op_totals_[physical_name] += stats;
}

void ServerMetrics::RecordOptimizerPasses(
    const std::vector<PassStats>& passes) {
  std::lock_guard<std::mutex> lock(pass_mu_);
  for (const PassStats& p : passes) {
    PassTotals& totals = pass_totals_[p.pass];
    if (p.ran) {
      ++totals.runs;
    } else {
      ++totals.skips;
    }
    totals.applications += static_cast<uint64_t>(p.applications);
    totals.plans_considered += p.plans_considered;
  }
}

std::string ServerMetrics::ToText() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "queries=%llu ok=%llu errors=%llu timeouts=%llu "
                "cancelled=%llu rejected=%llu\n",
                static_cast<unsigned long long>(queries()),
                static_cast<unsigned long long>(
                    ok_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(errors()),
                static_cast<unsigned long long>(timeouts()),
                static_cast<unsigned long long>(cancelled()),
                static_cast<unsigned long long>(rejected()));
  out += line;
  std::snprintf(line, sizeof(line),
                "connections=%llu frame_errors=%llu query_cache_hits=%llu\n",
                static_cast<unsigned long long>(
                    connections_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    frame_errors_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(cache_hits()));
  out += line;
  std::snprintf(line, sizeof(line),
                "latency_mean_us=%.1f latency_p50_us=%.1f "
                "latency_p99_us=%.1f\n",
                latency_.mean(), latency_.Quantile(0.5),
                latency_.Quantile(0.99));
  out += line;
  {
    std::lock_guard<std::mutex> lock(op_mu_);
    for (const auto& [name, stats] : op_totals_) {
      std::snprintf(line, sizeof(line),
                    "op %s reads=%llu emitted=%llu probes=%llu evals=%llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(stats.tuples_read()),
                    static_cast<unsigned long long>(stats.emitted),
                    static_cast<unsigned long long>(stats.probes),
                    static_cast<unsigned long long>(stats.predicate_evals));
      out += line;
    }
  }
  std::lock_guard<std::mutex> lock(pass_mu_);
  for (const auto& [name, totals] : pass_totals_) {
    std::snprintf(line, sizeof(line),
                  "pass %s runs=%llu skips=%llu applications=%llu "
                  "plans_considered=%llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(totals.runs),
                  static_cast<unsigned long long>(totals.skips),
                  static_cast<unsigned long long>(totals.applications),
                  static_cast<unsigned long long>(totals.plans_considered));
    out += line;
  }
  return out;
}

}  // namespace fro
