// fro_serve — the query-serving daemon. Serves the Section 5 company
// database (optionally scaled) over the length-prefixed TCP protocol.
//
//   $ fro_serve --port 7437
//   $ fro_serve --port 0 --workers 8 --cache-capacity 256 --scale 100
//
// Flags:
//   --port N            listen port on 127.0.0.1 (0 = ephemeral, printed)
//   --workers N         worker threads (default 4)
//   --queue N           admission queue bound (default 16)
//   --deadline-ms N     per-query deadline, 0 disables (default 30000)
//   --cache-capacity N  plan-cache entries, 0 disables (default 128)
//   --query-threads N   per-query cap on `?threads=` asks (default 1)
//   --thread-budget N   shared pool of extra exec threads (default 0)
//   --scale N           company-database scale factor (default 1)
//   --metrics-dump      print the STATS payload on shutdown
//
// SIGINT / SIGTERM shut the server down cleanly.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "server/server.h"
#include "testing/nested_sample.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int UsageError(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--queue N] "
               "[--deadline-ms N] [--cache-capacity N] [--query-threads N] "
               "[--thread-budget N] [--scale N] [--metrics-dump]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fro::ServerOptions options;
  options.port = 7437;
  int scale = 1;
  bool metrics_dump = false;
  for (int i = 1; i < argc; ++i) {
    auto int_flag = [&](const char* name, int* out) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    int cache_capacity = -1;
    if (int_flag("--port", &options.port) ||
        int_flag("--workers", &options.num_workers) ||
        int_flag("--queue", &options.max_pending) ||
        int_flag("--deadline-ms", &options.default_deadline_ms) ||
        int_flag("--query-threads", &options.max_query_threads) ||
        int_flag("--thread-budget", &options.exec_thread_budget) ||
        int_flag("--scale", &scale)) {
      continue;
    }
    if (int_flag("--cache-capacity", &cache_capacity)) {
      options.plan_cache_capacity = static_cast<size_t>(
          cache_capacity < 0 ? 0 : cache_capacity);
      continue;
    }
    if (std::strcmp(argv[i], "--metrics-dump") == 0) {
      metrics_dump = true;
      continue;
    }
    return UsageError(argv[0]);
  }

  fro::NestedDb db = scale <= 1 ? fro::MakeCompanyNestedDb()
                                : fro::MakeScaledCompanyNestedDb(scale);
  fro::FroServer server(&db, options);
  fro::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fro_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("fro_serve listening on 127.0.0.1:%d (workers=%d queue=%d "
              "deadline=%dms cache=%zu query-threads=%d thread-budget=%d "
              "scale=%d)\n",
              server.port(), options.num_workers, options.max_pending,
              options.default_deadline_ms, options.plan_cache_capacity,
              options.max_query_threads, options.exec_thread_budget, scale);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();
  if (metrics_dump) {
    std::printf("%s", server.StatsText().c_str());
  }
  return 0;
}
