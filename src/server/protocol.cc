#include "server/protocol.h"

#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/str_util.h"

namespace fro {

namespace {

// Verb spellings, indexed by Verb.
constexpr const char* kVerbNames[] = {"QUERY",  "EXPLAIN", "ANALYZE",
                                      "STATS",  "CANCEL",  "PING"};

bool VerbRequiresArgument(Verb verb) {
  return verb == Verb::kQuery || verb == Verb::kExplain ||
         verb == Verb::kAnalyze || verb == Verb::kCancel;
}

// Reads exactly `n` bytes. Only an EOF before the first byte of a frame
// *header* is a clean close; with `mid_frame` set — the payload read,
// which begins with the peer already committed to `n` more bytes — EOF at
// any offset, including zero, is a torn frame and is reported through
// `*mid_frame_eof`.
Status ReadFull(int fd, char* out, size_t n, bool mid_frame,
                bool* mid_frame_eof) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) {
      if (!mid_frame && got == 0) return Unavailable("connection closed");
      if (mid_frame_eof != nullptr) *mid_frame_eof = true;
      return Unavailable("connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("recv failed: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

// Parses the `?opt[,opt...]` suffix of a request head into `request`.
Status ParseRequestOptions(const std::string& text, Request* request) {
  if (text.empty()) return InvalidArgument("empty options after '?'");
  size_t pos = 0;
  while (true) {
    const size_t comma = text.find(',', pos);
    const std::string option =
        comma == std::string::npos ? text.substr(pos)
                                   : text.substr(pos, comma - pos);
    const size_t eq = option.find('=');
    const std::string name = option.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : option.substr(eq + 1);
    if (name == "threads") {
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        return InvalidArgument("threads= expects a decimal count, got '" +
                               value + "'");
      }
      unsigned long parsed = std::strtoul(value.c_str(), nullptr, 10);
      // The session clamps to its real maximum anyway; capping here just
      // keeps a hostile digit string from overflowing int.
      if (parsed > 4096) parsed = 4096;
      request->threads = static_cast<int>(parsed);
    } else {
      return InvalidArgument("unknown request option: " + option);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return Status::Ok();
}

}  // namespace

const char* VerbName(Verb verb) {
  return kVerbNames[static_cast<size_t>(verb)];
}

Result<Request> ParseRequest(const std::string& payload) {
  if (payload.empty()) return InvalidArgument("empty request frame");
  const size_t space = payload.find(' ');
  std::string head = payload.substr(0, space);
  Request request;
  if (space != std::string::npos) {
    request.argument = payload.substr(space + 1);
  }
  const size_t question = head.find('?');
  std::string options_text;
  bool have_options = false;
  if (question != std::string::npos) {
    options_text = head.substr(question + 1);
    head = head.substr(0, question);
    have_options = true;
  }
  const size_t at = head.find('@');
  if (at != std::string::npos) {
    request.tag = head.substr(at + 1);
    head = head.substr(0, at);
    if (request.tag.empty()) return InvalidArgument("empty tag after '@'");
  }
  if (have_options) {
    FRO_RETURN_IF_ERROR(ParseRequestOptions(options_text, &request));
  }
  bool known = false;
  for (size_t i = 0; i < std::size(kVerbNames); ++i) {
    if (head == kVerbNames[i]) {
      request.verb = static_cast<Verb>(i);
      known = true;
      break;
    }
  }
  if (!known) return InvalidArgument("unknown verb: " + head);
  if (VerbRequiresArgument(request.verb) && request.argument.empty()) {
    return InvalidArgument(std::string(VerbName(request.verb)) +
                           " requires an argument");
  }
  return request;
}

std::string SerializeRequest(const Request& request) {
  std::string out = VerbName(request.verb);
  if (!request.tag.empty()) {
    out += '@';
    out += request.tag;
  }
  if (request.threads > 0) {
    out += "?threads=";
    out += std::to_string(request.threads);
  }
  if (!request.argument.empty()) {
    out += ' ';
    out += request.argument;
  }
  return out;
}

std::string SerializeResponse(const Response& response) {
  if (response.status.ok()) return "OK\n" + response.body;
  // Error messages are folded to one line so the status line stays
  // parseable.
  std::string message = response.status.message();
  for (char& c : message) {
    if (c == '\n') c = ' ';
  }
  return std::string("ERR ") + StatusCodeName(response.status.code()) + " " +
         message;
}

Result<Response> ParseResponse(const std::string& payload) {
  Response response;
  if (StartsWith(payload, "OK\n")) {
    response.body = payload.substr(3);
    return response;
  }
  // A bare "OK" status line with no body is legal; anything else glued
  // onto the OK ("OKgarbage") is a malformed frame, not a success.
  if (payload == "OK") return response;
  if (!StartsWith(payload, "ERR ")) {
    return InvalidArgument("malformed response frame");
  }
  const std::string rest = payload.substr(4);
  const size_t space = rest.find(' ');
  const std::string code_name = rest.substr(0, space);
  const std::string message =
      space == std::string::npos ? "" : rest.substr(space + 1);
  response.status = Status(StatusCodeFromName(code_name), message);
  return response;
}

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  const uint32_t n = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>(n >> 24), static_cast<char>(n >> 16),
                    static_cast<char>(n >> 8), static_cast<char>(n)};
  // Gathering write: the 4-byte header and the payload leave through one
  // sendmsg, so a response costs no header+payload copy into a fresh
  // wire buffer.
  struct iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  struct msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = payload.empty() ? 1 : 2;
  while (msg.msg_iovlen > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not a
    // process-wide SIGPIPE.
    ssize_t r = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("send failed: ") + std::strerror(errno));
    }
    size_t done = static_cast<size_t>(r);
    while (msg.msg_iovlen > 0 && done >= msg.msg_iov[0].iov_len) {
      done -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    if (msg.msg_iovlen > 0 && done > 0) {
      msg.msg_iov[0].iov_base =
          static_cast<char*>(msg.msg_iov[0].iov_base) + done;
      msg.msg_iov[0].iov_len -= done;
    }
  }
  return Status::Ok();
}

Status ReadFrame(int fd, std::string* payload, bool* mid_frame_eof) {
  if (mid_frame_eof != nullptr) *mid_frame_eof = false;
  char header[4];
  FRO_RETURN_IF_ERROR(
      ReadFull(fd, header, 4, /*mid_frame=*/false, mid_frame_eof));
  const uint32_t n = (static_cast<uint32_t>(static_cast<unsigned char>(
                          header[0]))
                      << 24) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(
                          header[1]))
                      << 16) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(
                          header[2]))
                      << 8) |
                     static_cast<uint32_t>(static_cast<unsigned char>(
                         header[3]));
  if (n > kMaxFrameBytes) {
    return InvalidArgument("declared frame length " + std::to_string(n) +
                           " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  payload->resize(n);
  if (n == 0) return Status::Ok();
  // The header committed the peer to `n` more bytes: an EOF here — even
  // before the payload's first byte — is a torn frame, never a clean
  // close.
  return ReadFull(fd, payload->data(), n, /*mid_frame=*/true, mid_frame_eof);
}

}  // namespace fro
