#include "server/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/str_util.h"

namespace fro {

namespace {

// Verb spellings, indexed by Verb.
constexpr const char* kVerbNames[] = {"QUERY",  "EXPLAIN", "ANALYZE",
                                      "STATS",  "CANCEL",  "PING"};

bool VerbRequiresArgument(Verb verb) {
  return verb == Verb::kQuery || verb == Verb::kExplain ||
         verb == Verb::kAnalyze || verb == Verb::kCancel;
}

// Reads exactly `n` bytes; distinguishes clean EOF before the first byte.
Status ReadFull(int fd, char* out, size_t n, bool* clean_eof) {
  *clean_eof = false;
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) {
      if (got == 0) *clean_eof = true;
      return Unavailable(got == 0 ? "connection closed"
                                  : "connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("recv failed: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

const char* VerbName(Verb verb) {
  return kVerbNames[static_cast<size_t>(verb)];
}

Result<Request> ParseRequest(const std::string& payload) {
  if (payload.empty()) return InvalidArgument("empty request frame");
  const size_t space = payload.find(' ');
  std::string head = payload.substr(0, space);
  Request request;
  if (space != std::string::npos) {
    request.argument = payload.substr(space + 1);
  }
  const size_t at = head.find('@');
  if (at != std::string::npos) {
    request.tag = head.substr(at + 1);
    head = head.substr(0, at);
    if (request.tag.empty()) return InvalidArgument("empty tag after '@'");
  }
  bool known = false;
  for (size_t i = 0; i < std::size(kVerbNames); ++i) {
    if (head == kVerbNames[i]) {
      request.verb = static_cast<Verb>(i);
      known = true;
      break;
    }
  }
  if (!known) return InvalidArgument("unknown verb: " + head);
  if (VerbRequiresArgument(request.verb) && request.argument.empty()) {
    return InvalidArgument(std::string(VerbName(request.verb)) +
                           " requires an argument");
  }
  return request;
}

std::string SerializeRequest(const Request& request) {
  std::string out = VerbName(request.verb);
  if (!request.tag.empty()) {
    out += '@';
    out += request.tag;
  }
  if (!request.argument.empty()) {
    out += ' ';
    out += request.argument;
  }
  return out;
}

std::string SerializeResponse(const Response& response) {
  if (response.status.ok()) return "OK\n" + response.body;
  // Error messages are folded to one line so the status line stays
  // parseable.
  std::string message = response.status.message();
  for (char& c : message) {
    if (c == '\n') c = ' ';
  }
  return std::string("ERR ") + StatusCodeName(response.status.code()) + " " +
         message;
}

Result<Response> ParseResponse(const std::string& payload) {
  Response response;
  if (StartsWith(payload, "OK\n")) {
    response.body = payload.substr(3);
    return response;
  }
  if (StartsWith(payload, "OK")) return response;  // empty body
  if (!StartsWith(payload, "ERR ")) {
    return InvalidArgument("malformed response frame");
  }
  const std::string rest = payload.substr(4);
  const size_t space = rest.find(' ');
  const std::string code_name = rest.substr(0, space);
  const std::string message =
      space == std::string::npos ? "" : rest.substr(space + 1);
  response.status = Status(StatusCodeFromName(code_name), message);
  return response;
}

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  const uint32_t n = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>(n >> 24), static_cast<char>(n >> 16),
                    static_cast<char>(n >> 8), static_cast<char>(n)};
  std::string wire(header, 4);
  wire += payload;
  size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not a
    // process-wide SIGPIPE.
    ssize_t r = ::send(fd, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Status ReadFrame(int fd, std::string* payload) {
  char header[4];
  bool clean_eof = false;
  FRO_RETURN_IF_ERROR(ReadFull(fd, header, 4, &clean_eof));
  const uint32_t n = (static_cast<uint32_t>(static_cast<unsigned char>(
                          header[0]))
                      << 24) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(
                          header[1]))
                      << 16) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(
                          header[2]))
                      << 8) |
                     static_cast<uint32_t>(static_cast<unsigned char>(
                         header[3]));
  if (n > kMaxFrameBytes) {
    return InvalidArgument("declared frame length " + std::to_string(n) +
                           " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  payload->resize(n);
  if (n == 0) return Status::Ok();
  return ReadFull(fd, payload->data(), n, &clean_eof);
}

}  // namespace fro
