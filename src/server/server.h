// fro_serve's TCP front end: an acceptor thread plus a fixed worker pool
// behind a bounded admission queue.
//
// Architecture. The acceptor enqueues accepted connections; each worker
// pops one and serves its frames sequentially until the client closes, so
// the worker count bounds in-flight queries and the queue bounds waiting
// connections. When the queue is full the acceptor replies with one
// `ERR ResourceExhausted` frame and closes — load is shed at admission,
// never by blocking the accept loop.
//
// Deadlines and cancellation. Every QUERY gets an ExecControl with a
// deadline of `options.default_deadline_ms`; the executor checks it
// cooperatively (exec/iterator.h), so runaway queries stop within one
// tuple. A QUERY whose verb carried `@tag` is registered while it runs,
// and `CANCEL tag` from any connection raises its cancel flag.
//
// Sharing. All workers share one read-only NestedDb, one LruPlanCache,
// and one ServerMetrics; per-query state (translation, plan, pipeline)
// is worker-local. This is exactly the concurrency regime the
// concurrent_smoke_test exercises under ThreadSanitizer.

#ifndef FRO_SERVER_SERVER_H_
#define FRO_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/iterator.h"
#include "lang/model.h"
#include "server/metrics.h"
#include "optimizer/plan_cache.h"
#include "server/session.h"

namespace fro {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back via port() — how the tests avoid collisions).
  int port = 0;
  /// Worker threads = maximum concurrently served connections.
  int num_workers = 4;
  /// Admission queue bound: connections accepted but not yet claimed by a
  /// worker. Beyond it, new connections are refused with
  /// ResourceExhausted.
  int max_pending = 16;
  /// Per-query execution deadline; <= 0 disables deadlines.
  int default_deadline_ms = 30000;
  /// Plan-cache entries; 0 serves every query cold (cache off).
  size_t plan_cache_capacity = 128;
  /// Execution engine for QUERY / ANALYZE (batch by default; results and
  /// counters are engine-independent).
  ExecEngine engine = ExecEngine::kBatch;
  /// Per-query cap on `?threads=N` asks (morsel-driven intra-query
  /// parallelism, exec/morsel.h); 1 serves every query serially.
  int max_query_threads = 1;
  /// Shared pool of *extra* intra-query worker threads across all
  /// concurrently served queries. 0 means no extras: every query runs
  /// serially no matter what it asks for. Extras are granted best-effort
  /// per query and returned when it finishes.
  int exec_thread_budget = 0;
  /// Cardinality-feedback loop (optimizer/feedback.h): executions feed
  /// measured per-operator cardinalities into a shared store, plans are
  /// chosen against the corrected numbers, and cached plans whose running
  /// Q-error drifts past the threshold are re-optimized once. Off turns
  /// the server back into a purely static-estimate planner.
  bool enable_feedback = true;
  /// Distinct subexpressions the feedback store remembers.
  size_t feedback_capacity = 1024;
  /// Running-Q-error threshold past which a cached plan is marked stale
  /// and re-planned on its next planning lookup.
  double q_error_threshold = 4.0;
};

class FroServer {
 public:
  /// `db` must outlive the server and is never mutated.
  FroServer(const NestedDb* db, ServerOptions options);
  ~FroServer();

  FroServer(const FroServer&) = delete;
  FroServer& operator=(const FroServer&) = delete;

  /// Binds, listens, and spawns the acceptor + workers.
  Status Start();

  /// Stops accepting, interrupts open connections and running queries,
  /// joins all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

  const ServerMetrics& metrics() const { return metrics_; }
  const LruPlanCache& plan_cache() const { return plan_cache_; }
  const QuerySession& session() const { return *session_; }
  const FeedbackStore& feedback_store() const { return feedback_store_; }

  /// The STATS verb's payload: metrics, plan-cache, feedback, and
  /// AST-memo lines.
  std::string StatsText() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  Response Dispatch(const Request& request);

  /// Registry of cancellable in-flight queries (tag -> control).
  void RegisterQuery(const std::string& tag, ExecControl* control);
  void UnregisterQuery(const std::string& tag);
  bool CancelQuery(const std::string& tag);

  const NestedDb* db_;
  ServerOptions options_;
  LruPlanCache plan_cache_;
  /// Shared actuals registry feeding the re-planning loop; populated by
  /// every QUERY regardless of worker, consulted by every optimization.
  FeedbackStore feedback_store_;
  ServerMetrics metrics_;
  /// Admission control for intra-query parallelism, shared by all
  /// sessions/workers; sized by options_.exec_thread_budget.
  ThreadBudget thread_budget_;
  std::unique_ptr<QuerySession> session_;

  std::atomic<bool> running_{false};
  /// Atomic because Stop() closes it while AcceptLoop reads it to accept.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted, unclaimed connection fds

  std::mutex conn_mu_;
  std::unordered_set<int> open_conns_;  // fds being served, for Stop()

  std::mutex inflight_mu_;
  std::unordered_map<std::string, ExecControl*> inflight_;
};

}  // namespace fro

#endif  // FRO_SERVER_SERVER_H_
