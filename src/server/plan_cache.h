// Compatibility shim: the plan cache (interface, LRU realization, and
// PlanCacheStats) merged into the single surface in
// optimizer/plan_cache.h. Include that header directly in new code.

#ifndef FRO_SERVER_PLAN_CACHE_H_
#define FRO_SERVER_PLAN_CACHE_H_

#include "optimizer/plan_cache.h"  // IWYU pragma: export

#endif  // FRO_SERVER_PLAN_CACHE_H_
