// Thread-safe LRU realization of the optimizer's PlanCacheInterface.
//
// Keys are canonical-query structural hashes (PR 2's hash-consing), so a
// hit means "this exact query shape was optimized before" — and by
// Theorem 1 (see optimizer/plan_cache.h) replaying the cached
// implementing tree is sound. Recency is maintained on Lookup and
// Insert; capacity overflows evict the least recently used entry.
// Counters are cumulative for the cache's lifetime.

#ifndef FRO_SERVER_PLAN_CACHE_H_
#define FRO_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "optimizer/plan_cache.h"

namespace fro {

/// Point-in-time counters of an LruPlanCache.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t size = 0;
  size_t capacity = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  std::string ToString() const;
};

/// A mutex-guarded LRU map keyed on uint64 plan hashes. `capacity == 0`
/// disables caching entirely (every Lookup misses, Inserts are dropped) —
/// the serving layer's "cache off" mode for A/B benchmarking.
class LruPlanCache : public PlanCacheInterface {
 public:
  explicit LruPlanCache(size_t capacity) : capacity_(capacity) {}

  std::optional<CachedPlan> Lookup(uint64_t key) override;
  void Insert(uint64_t key, CachedPlan plan) override;

  /// Drops every entry; counters are kept.
  void Clear();

  PlanCacheStats stats() const;

 private:
  struct Entry {
    uint64_t key;
    CachedPlan plan;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace fro

#endif  // FRO_SERVER_PLAN_CACHE_H_
