#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "server/protocol.h"

namespace fro {

FroServer::FroServer(const NestedDb* db, ServerOptions options)
    : db_(db),
      options_(options),
      plan_cache_(options.plan_cache_capacity, options.q_error_threshold),
      feedback_store_([&options] {
        FeedbackOptions feedback_options;
        feedback_options.capacity = options.feedback_capacity;
        return feedback_options;
      }()),
      thread_budget_(options.exec_thread_budget > 0
                         ? static_cast<size_t>(options.exec_thread_budget)
                         : 0),
      session_(nullptr) {
  SessionOptions session_options;
  session_options.engine = options_.engine;
  session_options.default_deadline_ms = options_.default_deadline_ms;
  session_options.max_query_threads =
      options_.max_query_threads > 0 ? options_.max_query_threads : 1;
  session_options.thread_budget = &thread_budget_;
  session_options.feedback =
      options_.enable_feedback ? &feedback_store_ : nullptr;
  session_ = std::make_unique<QuerySession>(
      db_, options_.plan_cache_capacity > 0 ? &plan_cache_ : nullptr,
      &metrics_, session_options);
}

FroServer::~FroServer() { Stop(); }

Status FroServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Unavailable(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status =
        Unavailable(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&FroServer::AcceptLoop, this);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&FroServer::WorkerLoop, this);
  }
  return Status::Ok();
}

void FroServer::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept().
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  // Cancel whatever is executing so workers leave their drains promptly.
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto& [tag, control] : inflight_) control->RequestCancel();
  }
  // Unblock workers parked in ReadFrame on idle connections.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_conns_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Close connections no worker ever claimed.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

void FroServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;  // Stop() already closed the listener
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop(), or fatal
    }
    metrics_.RecordConnection();
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() < static_cast<size_t>(options_.max_pending)) {
        pending_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Shed load at admission: one explanatory frame, then close.
      metrics_.RecordRejected();
      Response overload;
      overload.status = ResourceExhausted("server overloaded: admission "
                                          "queue full");
      WriteFrame(fd, SerializeResponse(overload));
      ::close(fd);
    }
  }
}

void FroServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (!running_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_conns_.insert(fd);
    }
    // Re-check after publishing the fd: a Stop() that raced ahead of the
    // insert has already walked open_conns_, so it relies on this check;
    // one that runs after it will find the fd and shut it down.
    if (running_.load(std::memory_order_acquire)) ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_conns_.erase(fd);
    }
    ::close(fd);
  }
}

void FroServer::ServeConnection(int fd) {
  std::string payload;
  while (running_.load(std::memory_order_acquire)) {
    bool mid_frame_eof = false;
    Status read = ReadFrame(fd, &payload, &mid_frame_eof);
    if (!read.ok()) {
      // Clean close, mid-frame truncation, or an unframeable length: in
      // every case drop the connection. A torn frame (peer died between
      // a header and its payload, or inside either) counts as a framing
      // error; a length-limit violation additionally gets a best-effort
      // explanatory frame first.
      if (mid_frame_eof) {
        metrics_.RecordFrameError();
      } else if (read.code() == StatusCode::kInvalidArgument) {
        metrics_.RecordFrameError();
        Response err;
        err.status = read;
        WriteFrame(fd, SerializeResponse(err));
      }
      return;
    }
    Response response;
    Result<Request> request = ParseRequest(payload);
    if (!request.ok()) {
      // Malformed request payload: answer and keep the connection — the
      // framing is still intact.
      metrics_.RecordFrameError();
      response.status = request.status();
    } else {
      response = Dispatch(*request);
    }
    if (!WriteFrame(fd, SerializeResponse(response)).ok()) return;
  }
}

Response FroServer::Dispatch(const Request& request) {
  Response response;
  switch (request.verb) {
    case Verb::kPing:
      response.body = "pong\n";
      return response;
    case Verb::kStats:
      response.body = StatsText();
      return response;
    case Verb::kCancel:
      if (CancelQuery(request.argument)) {
        response.body = "cancel requested for @" + request.argument + "\n";
      } else {
        response.status =
            NotFound("no running query tagged @" + request.argument);
      }
      return response;
    case Verb::kQuery:
    case Verb::kExplain:
    case Verb::kAnalyze: {
      // The control carries only cancellation here; the session arms the
      // deadline itself through RunOptions (the single place execution
      // options are set).
      ExecControl control;
      const bool cancellable =
          request.verb == Verb::kQuery && !request.tag.empty();
      if (cancellable) RegisterQuery(request.tag, &control);
      response = session_->Execute(request, &control);
      if (cancellable) UnregisterQuery(request.tag);
      return response;
    }
  }
  response.status = Internal("unhandled verb");
  return response;
}

void FroServer::RegisterQuery(const std::string& tag, ExecControl* control) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_[tag] = control;
}

void FroServer::UnregisterQuery(const std::string& tag) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.erase(tag);
}

bool FroServer::CancelQuery(const std::string& tag) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  auto it = inflight_.find(tag);
  if (it == inflight_.end()) return false;
  it->second->RequestCancel();
  return true;
}

std::string FroServer::StatsText() const {
  std::string out = metrics_.ToText();
  out += "plan_cache " + plan_cache_.stats().ToString() + "\n";
  // Re-plan counts live in the plan-cache line (replans=/stale=); the
  // Describe payload adds the store rollup and its Q-error histogram.
  out += feedback_store_.Describe(/*top_n=*/0);
  out += "ast_memo hits=" + std::to_string(session_->ast_hits()) +
         " misses=" + std::to_string(session_->ast_misses()) + "\n";
  out += "exec_threads max_per_query=" +
         std::to_string(options_.max_query_threads > 0
                            ? options_.max_query_threads
                            : 1) +
         " budget=" + std::to_string(options_.exec_thread_budget) +
         " available=" + std::to_string(thread_budget_.available()) + "\n";
  return out;
}

}  // namespace fro
