#include "server/session.h"

#include <chrono>

#include "common/check.h"
#include "lang/lang.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "optimizer/explain.h"
#include "optimizer/optimizer.h"
#include "relational/pretty.h"

namespace fro {

namespace {

// The optimize tail shared by all three verbs: translate the parsed AST
// and plan it through the (possibly cached) optimizer.
struct PlannedQuery {
  TranslationResult translation;
  OptimizeOutcome optimize;
};

Result<PlannedQuery> Plan(const NestedDb& db, const SelectQuery& ast,
                          PlanCacheInterface* cache,
                          const CardinalityFeedback* feedback) {
  PlannedQuery planned;
  FRO_ASSIGN_OR_RETURN(planned.translation, TranslateQuery(db, ast));
  OptimizeOptions options;
  options.plan_cache = cache;
  options.feedback = feedback;
  FRO_ASSIGN_OR_RETURN(
      planned.optimize,
      Optimize(planned.translation.query, *planned.translation.db, options));
  return planned;
}

std::string RenderResult(const Relation& relation, const Catalog& catalog,
                         const std::string& notes) {
  PrettyOptions pretty;
  pretty.canonical = true;
  pretty.max_rows = static_cast<size_t>(-1);
  std::string body = PrettyTable(relation, &catalog, pretty);
  body += "(" + std::to_string(relation.NumRows()) + " rows; " + notes + ")\n";
  return body;
}

}  // namespace

size_t ThreadBudget::TryAcquire(size_t want) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t granted = want < available_ ? want : available_;
  available_ -= granted;
  return granted;
}

void ThreadBudget::Release(size_t granted) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ += granted;
}

size_t ThreadBudget::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

QuerySession::QuerySession(const NestedDb* db, LruPlanCache* plan_cache,
                           ServerMetrics* metrics, SessionOptions options)
    : db_(db), plan_cache_(plan_cache), metrics_(metrics), options_(options) {
  FRO_CHECK(db_ != nullptr) << "QuerySession requires a database";
}

Result<SelectQuery> QuerySession::ParseCached(const std::string& text) {
  if (options_.ast_cache_capacity == 0) return ParseQuery(text);
  {
    std::lock_guard<std::mutex> lock(ast_mu_);
    auto it = ast_index_.find(text);
    if (it != ast_index_.end()) {
      ++ast_hits_;
      ast_lru_.splice(ast_lru_.begin(), ast_lru_, it->second);
      return it->second->second;  // copy out under the lock
    }
    ++ast_misses_;
  }
  FRO_ASSIGN_OR_RETURN(SelectQuery ast, ParseQuery(text));
  std::lock_guard<std::mutex> lock(ast_mu_);
  if (ast_index_.find(text) == ast_index_.end()) {
    ast_lru_.emplace_front(text, ast);
    ast_index_[text] = ast_lru_.begin();
    while (ast_lru_.size() > options_.ast_cache_capacity) {
      ast_index_.erase(ast_lru_.back().first);
      ast_lru_.pop_back();
    }
  }
  return ast;
}

uint64_t QuerySession::ast_hits() const {
  std::lock_guard<std::mutex> lock(ast_mu_);
  return ast_hits_;
}

uint64_t QuerySession::ast_misses() const {
  std::lock_guard<std::mutex> lock(ast_mu_);
  return ast_misses_;
}

int QuerySession::AcquireThreads(int requested) {
  int want = requested > 0 ? requested : options_.default_query_threads;
  if (want > options_.max_query_threads) want = options_.max_query_threads;
  if (want < 1) want = 1;
  if (want == 1 || options_.thread_budget == nullptr) return want;
  // The serving thread itself always works, so only the extras are
  // admission-controlled; a dry budget degrades the query to serial.
  const size_t granted =
      options_.thread_budget->TryAcquire(static_cast<size_t>(want - 1));
  return 1 + static_cast<int>(granted);
}

void QuerySession::ReleaseThreads(int acquired) {
  if (acquired > 1 && options_.thread_budget != nullptr) {
    options_.thread_budget->Release(static_cast<size_t>(acquired - 1));
  }
}

Response QuerySession::RunQueryVerb(const std::string& text, int threads,
                                    ExecControl* control, bool* cache_hit) {
  Response response;
  Result<SelectQuery> ast = ParseCached(text);
  if (!ast.ok()) {
    response.status = ast.status();
    return response;
  }
  // The one place this request's execution options are assembled:
  // deadline, plan cache, engine choice, and worker threads all flow
  // through RunOptions into the Status-carrying RunParsedQuery surface.
  RunOptions run = RunOptions()
                       .WithPlanCache(plan_cache_)
                       .WithEngine(options_.engine)
                       .WithThreads(threads)
                       .WithControl(control)
                       .WithFeedback(options_.feedback);
  if (options_.default_deadline_ms > 0) {
    run.WithDeadline(std::chrono::milliseconds(options_.default_deadline_ms));
  }
  Result<QueryRunResult> result = RunParsedQuery(*db_, *ast, run);
  if (!result.ok()) {
    // Includes kCancelled / kDeadlineExceeded from DrainChecked: the
    // status reaches the wire protocol instead of a truncated table.
    response.status = result.status();
    return response;
  }
  *cache_hit = result->optimize.cache_hit;
  if (metrics_ != nullptr) {
    ForEachOp(result->plan_stats, [this](const PlanOpStats& op, int) {
      metrics_->RecordOperator(op.physical_name, op.stats);
    });
    metrics_->RecordOptimizerPasses(result->optimize.passes);
  }
  response.body = RenderResult(result->relation,
                               result->translation.db->catalog(),
                               result->optimize.Summary());
  return response;
}

Response QuerySession::RunExplainVerb(const std::string& text) {
  Response response;
  Result<SelectQuery> ast = ParseCached(text);
  if (!ast.ok()) {
    response.status = ast.status();
    return response;
  }
  CardinalityFeedback feedback_snapshot;
  const CardinalityFeedback* feedback = nullptr;
  if (options_.feedback != nullptr) {
    feedback_snapshot = options_.feedback->Snapshot();
    feedback = &feedback_snapshot;
  }
  Result<PlannedQuery> planned = Plan(*db_, *ast, plan_cache_, feedback);
  if (!planned.ok()) {
    response.status = planned.status();
    return response;
  }
  response.body = Explain(planned->optimize.plan, *planned->translation.db);
  response.body += "(" + planned->optimize.Summary() + ")\n";
  return response;
}

Response QuerySession::RunAnalyzeVerb(const std::string& text, int threads) {
  Response response;
  Result<SelectQuery> ast = ParseCached(text);
  if (!ast.ok()) {
    response.status = ast.status();
    return response;
  }
  CardinalityFeedback feedback_snapshot;
  const CardinalityFeedback* feedback = nullptr;
  if (options_.feedback != nullptr) {
    feedback_snapshot = options_.feedback->Snapshot();
    feedback = &feedback_snapshot;
  }
  Result<PlannedQuery> planned = Plan(*db_, *ast, plan_cache_, feedback);
  if (!planned.ok()) {
    response.status = planned.status();
    return response;
  }
  ExplainAnalyzeResult analyzed =
      ExplainAnalyze(planned->optimize.plan, *planned->translation.db,
                     JoinAlgo::kAuto, options_.engine, threads, feedback);
  response.body = analyzed.text;
  // The same per-pass rendering the shell's \analyze uses
  // (FormatPassStats): one code path for pipeline observability.
  response.body += FormatPassStats(planned->optimize.passes);
  response.body += "(" + std::to_string(analyzed.result.NumRows()) +
                   " rows; " +
                   std::to_string(analyzed.base_tuples_read) +
                   " base tuples read)\n";
  return response;
}

Response QuerySession::Execute(const Request& request, ExecControl* control) {
  const auto start = std::chrono::steady_clock::now();
  bool cache_hit = false;
  Response response;
  switch (request.verb) {
    case Verb::kQuery: {
      const int threads = AcquireThreads(request.threads);
      response = RunQueryVerb(request.argument, threads, control, &cache_hit);
      ReleaseThreads(threads);
      break;
    }
    case Verb::kExplain:
      response = RunExplainVerb(request.argument);
      break;
    case Verb::kAnalyze: {
      const int threads = AcquireThreads(request.threads);
      response = RunAnalyzeVerb(request.argument, threads);
      ReleaseThreads(threads);
      break;
    }
    default:
      response.status =
          InvalidArgument(std::string("QuerySession cannot serve verb ") +
                          VerbName(request.verb));
      break;
  }
  if (metrics_ != nullptr) {
    QueryObservation observation;
    observation.status = response.status;
    observation.latency_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    observation.cache_hit = cache_hit;
    metrics_->RecordQuery(observation);
  }
  return response;
}

}  // namespace fro
