#include "server/session.h"

#include <chrono>

#include "common/check.h"
#include "exec/build.h"
#include "lang/lang.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "optimizer/explain.h"
#include "optimizer/optimizer.h"
#include "relational/pretty.h"

namespace fro {

namespace {

// The optimize tail shared by all three verbs: translate the parsed AST
// and plan it through the (possibly cached) optimizer.
struct PlannedQuery {
  TranslationResult translation;
  OptimizeOutcome optimize;
};

Result<PlannedQuery> Plan(const NestedDb& db, const SelectQuery& ast,
                          PlanCacheInterface* cache) {
  PlannedQuery planned;
  FRO_ASSIGN_OR_RETURN(planned.translation, TranslateQuery(db, ast));
  OptimizeOptions options;
  options.plan_cache = cache;
  FRO_ASSIGN_OR_RETURN(
      planned.optimize,
      Optimize(planned.translation.query, *planned.translation.db, options));
  return planned;
}

std::string RenderResult(const Relation& relation, const Catalog& catalog,
                         const std::string& notes) {
  PrettyOptions pretty;
  pretty.canonical = true;
  pretty.max_rows = static_cast<size_t>(-1);
  std::string body = PrettyTable(relation, &catalog, pretty);
  body += "(" + std::to_string(relation.NumRows()) + " rows; " + notes + ")\n";
  return body;
}

}  // namespace

QuerySession::QuerySession(const NestedDb* db, LruPlanCache* plan_cache,
                           ServerMetrics* metrics, SessionOptions options)
    : db_(db), plan_cache_(plan_cache), metrics_(metrics), options_(options) {
  FRO_CHECK(db_ != nullptr) << "QuerySession requires a database";
}

Result<SelectQuery> QuerySession::ParseCached(const std::string& text) {
  if (options_.ast_cache_capacity == 0) return ParseQuery(text);
  {
    std::lock_guard<std::mutex> lock(ast_mu_);
    auto it = ast_index_.find(text);
    if (it != ast_index_.end()) {
      ++ast_hits_;
      ast_lru_.splice(ast_lru_.begin(), ast_lru_, it->second);
      return it->second->second;  // copy out under the lock
    }
    ++ast_misses_;
  }
  FRO_ASSIGN_OR_RETURN(SelectQuery ast, ParseQuery(text));
  std::lock_guard<std::mutex> lock(ast_mu_);
  if (ast_index_.find(text) == ast_index_.end()) {
    ast_lru_.emplace_front(text, ast);
    ast_index_[text] = ast_lru_.begin();
    while (ast_lru_.size() > options_.ast_cache_capacity) {
      ast_index_.erase(ast_lru_.back().first);
      ast_lru_.pop_back();
    }
  }
  return ast;
}

uint64_t QuerySession::ast_hits() const {
  std::lock_guard<std::mutex> lock(ast_mu_);
  return ast_hits_;
}

uint64_t QuerySession::ast_misses() const {
  std::lock_guard<std::mutex> lock(ast_mu_);
  return ast_misses_;
}

Response QuerySession::RunQueryVerb(const std::string& text,
                                    ExecControl* control, bool* cache_hit) {
  Response response;
  Result<SelectQuery> ast = ParseCached(text);
  if (!ast.ok()) {
    response.status = ast.status();
    return response;
  }
  Result<PlannedQuery> planned = Plan(*db_, *ast, plan_cache_);
  if (!planned.ok()) {
    response.status = planned.status();
    return response;
  }
  *cache_hit = planned->optimize.cache_hit;

  const Database& rel_db = *planned->translation.db;
  IteratorPtr root = BuildIterator(planned->optimize.plan, rel_db);
  root->SetControl(control);
  // Drain() opens, exhausts, and closes; the counters survive Close (only
  // Open resets them), so the rollup below reads settled stats.
  Relation result = Drain(root.get());
  if (metrics_ != nullptr) {
    root->Visit([this](TupleIterator* op, int) {
      metrics_->RecordOperator(op->physical_name(), op->stats());
    });
  }
  if (control != nullptr && control->stopped()) {
    response.status = control->status();
    return response;
  }
  response.body =
      RenderResult(result, rel_db.catalog(), planned->optimize.notes);
  return response;
}

Response QuerySession::RunExplainVerb(const std::string& text) {
  Response response;
  Result<SelectQuery> ast = ParseCached(text);
  if (!ast.ok()) {
    response.status = ast.status();
    return response;
  }
  Result<PlannedQuery> planned = Plan(*db_, *ast, plan_cache_);
  if (!planned.ok()) {
    response.status = planned.status();
    return response;
  }
  response.body = Explain(planned->optimize.plan, *planned->translation.db);
  response.body += "(" + planned->optimize.notes + ")\n";
  return response;
}

Response QuerySession::RunAnalyzeVerb(const std::string& text) {
  Response response;
  Result<SelectQuery> ast = ParseCached(text);
  if (!ast.ok()) {
    response.status = ast.status();
    return response;
  }
  Result<PlannedQuery> planned = Plan(*db_, *ast, plan_cache_);
  if (!planned.ok()) {
    response.status = planned.status();
    return response;
  }
  ExplainAnalyzeResult analyzed =
      ExplainAnalyze(planned->optimize.plan, *planned->translation.db);
  response.body = analyzed.text;
  response.body += "(" + std::to_string(analyzed.result.NumRows()) +
                   " rows; " +
                   std::to_string(analyzed.base_tuples_read) +
                   " base tuples read)\n";
  return response;
}

Response QuerySession::Execute(const Request& request, ExecControl* control) {
  const auto start = std::chrono::steady_clock::now();
  bool cache_hit = false;
  Response response;
  switch (request.verb) {
    case Verb::kQuery:
      response = RunQueryVerb(request.argument, control, &cache_hit);
      break;
    case Verb::kExplain:
      response = RunExplainVerb(request.argument);
      break;
    case Verb::kAnalyze:
      response = RunAnalyzeVerb(request.argument);
      break;
    default:
      response.status =
          InvalidArgument(std::string("QuerySession cannot serve verb ") +
                          VerbName(request.verb));
      break;
  }
  if (metrics_ != nullptr) {
    QueryObservation observation;
    observation.status = response.status;
    observation.latency_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    observation.cache_hit = cache_hit;
    metrics_->RecordQuery(observation);
  }
  return response;
}

}  // namespace fro
