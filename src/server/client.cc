#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fro {

FroClient::~FroClient() { Close(); }

Status FroClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    Close();
    return InvalidArgument("unparseable host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Unavailable(std::string("connect: ") + std::strerror(errno));
    Close();
    return status;
  }
  return Status::Ok();
}

void FroClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Response> FroClient::Call(const Request& request) {
  if (fd_ < 0) return FailedPrecondition("client not connected");
  FRO_RETURN_IF_ERROR(WriteFrame(fd_, SerializeRequest(request)));
  std::string payload;
  FRO_RETURN_IF_ERROR(ReadFrame(fd_, &payload));
  return ParseResponse(payload);
}

Result<Response> FroClient::Query(const std::string& text,
                                  const std::string& tag) {
  Request request;
  request.verb = Verb::kQuery;
  request.argument = text;
  request.tag = tag;
  return Call(request);
}

Result<Response> FroClient::Explain(const std::string& text) {
  Request request;
  request.verb = Verb::kExplain;
  request.argument = text;
  return Call(request);
}

Result<Response> FroClient::Analyze(const std::string& text) {
  Request request;
  request.verb = Verb::kAnalyze;
  request.argument = text;
  return Call(request);
}

Result<Response> FroClient::Stats() {
  Request request;
  request.verb = Verb::kStats;
  return Call(request);
}

Result<Response> FroClient::Cancel(const std::string& tag) {
  Request request;
  request.verb = Verb::kCancel;
  request.argument = tag;
  return Call(request);
}

Result<Response> FroClient::Ping() {
  Request request;
  request.verb = Verb::kPing;
  return Call(request);
}

}  // namespace fro
