// Blocking client for the fro_serve protocol; the substrate under
// fro_client, fro_shell's \connect mode, the integration tests, and the
// load generator. One FroClient owns one connection and is not
// thread-safe — use one per client thread.

#ifndef FRO_SERVER_CLIENT_H_
#define FRO_SERVER_CLIENT_H_

#include <string>

#include "server/protocol.h"

namespace fro {

class FroClient {
 public:
  FroClient() = default;
  ~FroClient();

  FroClient(const FroClient&) = delete;
  FroClient& operator=(const FroClient&) = delete;
  FroClient(FroClient&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FroClient& operator=(FroClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to `host:port` (host as dotted quad or "localhost").
  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One request/response round trip. A returned error Status means the
  /// transport failed; a server-side failure comes back as an OK Result
  /// whose Response.status is the server's error.
  Result<Response> Call(const Request& request);

  /// Verb shorthands.
  Result<Response> Query(const std::string& text,
                         const std::string& tag = "");
  Result<Response> Explain(const std::string& text);
  Result<Response> Analyze(const std::string& text);
  Result<Response> Stats();
  Result<Response> Cancel(const std::string& tag);
  Result<Response> Ping();

 private:
  int fd_ = -1;
};

}  // namespace fro

#endif  // FRO_SERVER_CLIENT_H_
