// The fro_serve wire protocol: length-prefixed text frames over TCP.
//
// Framing. Every message — request or response — is one frame:
//
//   frame    := length payload
//   length   := uint32, big-endian, byte count of `payload`
//   payload  := UTF-8 text, at most kMaxFrameBytes bytes
//
// Requests. The payload's first token is the verb, optionally suffixed
// with a client-chosen tag (`VERB@tag`) and/or request options
// (`VERB?threads=4`); the rest of the payload is the argument:
//
//   request  := verb ['@' tag] ['?' options] [' ' argument]
//   verb     := QUERY | EXPLAIN | ANALYZE | STATS | CANCEL | PING
//   options  := option (',' option)*
//   option   := "threads=" 1*DIGIT
//
//   QUERY   <section-5 query>   run, reply with the canonical result table
//   EXPLAIN <section-5 query>   reply with the optimized plan + estimates
//   ANALYZE <section-5 query>   execute instrumented, actual vs. estimated
//   STATS                       server metrics + plan-cache counters
//   CANCEL  <tag>               cooperatively stop the running query whose
//                               QUERY verb carried @<tag>
//   PING                        liveness probe, replies "pong"
//
// Responses. The first line is the status, the rest is the body:
//
//   response := "OK\n" body
//             | "ERR " code-name " " message "\n"
//   code-name := StatusCodeName spelling, e.g. InvalidArgument
//
// Malformed frames (oversized length, truncated payload, unknown verb)
// never kill the server: they produce an ERR response — or, when the
// framing itself is unrecoverable, a closed connection — and the serving
// loop moves on.

#ifndef FRO_SERVER_PROTOCOL_H_
#define FRO_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fro {

/// Hard cap on one frame's payload; a declared length beyond this is
/// treated as a framing error (protects the server from a 4 GiB malloc
/// driven by four hostile bytes).
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Request verbs, in wire spelling.
enum class Verb : uint8_t {
  kQuery,
  kExplain,
  kAnalyze,
  kStats,
  kCancel,
  kPing,
};

const char* VerbName(Verb verb);

struct Request {
  Verb verb = Verb::kPing;
  /// Verb argument (query text, cancel tag); may be empty.
  std::string argument;
  /// Client-chosen tag from `VERB@tag`, empty if absent. A tagged QUERY
  /// is cancellable via CANCEL <tag> from any connection.
  std::string tag;
  /// Requested intra-query worker threads from `VERB?threads=N`; 0 means
  /// unset (the session's default applies). The session clamps the
  /// request to its per-query maximum and to the server's shared thread
  /// budget — a `threads=` option is a hint, never a reservation.
  int threads = 0;
};

struct Response {
  Status status;
  /// Response body (result table, plan text, metrics dump); empty on
  /// errors.
  std::string body;
};

/// Parses a request payload. Fails on an empty payload, an unknown verb,
/// or a missing required argument.
Result<Request> ParseRequest(const std::string& payload);

/// Renders a request as a frame payload (client side).
std::string SerializeRequest(const Request& request);

/// Renders/parses the response payload ("OK\n<body>" / "ERR code msg").
std::string SerializeResponse(const Response& response);
Result<Response> ParseResponse(const std::string& payload);

// --- Socket framing (blocking fd I/O) --------------------------------------

/// Writes one frame. `fd` must be a connected stream socket. Header and
/// payload go out through one gathering sendmsg — no per-response
/// header+payload copy into a wire buffer.
Status WriteFrame(int fd, const std::string& payload);

/// Reads one frame into `*payload`. Returns Unavailable("connection
/// closed") on a clean EOF at a frame boundary, InvalidArgument on an
/// oversized declared length, and Unavailable("connection closed
/// mid-frame") when the peer dies inside a frame — including between the
/// header and its payload. When `mid_frame_eof` is non-null it is set
/// exactly on that mid-frame EOF case, so servers can count torn frames
/// (frame_errors) without string-matching the status.
Status ReadFrame(int fd, std::string* payload,
                 bool* mid_frame_eof = nullptr);

}  // namespace fro

#endif  // FRO_SERVER_PROTOCOL_H_
