// The per-server metrics registry behind the STATS verb and
// `fro_serve --metrics-dump`: request outcome counters, a log-bucketed
// latency histogram (approximate p50/p99), and per-physical-operator
// ExecStats totals aggregated from every executed pipeline (PR 1's
// instrumentation, rolled up across queries).

#ifndef FRO_SERVER_METRICS_H_
#define FRO_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "optimizer/rewrite_pass.h"
#include "relational/exec_stats.h"

namespace fro {

/// Latencies in microseconds, bucketed by power of two up to ~17 minutes.
/// Record() is lock-free; percentiles interpolate within the winning
/// bucket (exact enough for dashboards; benches keep raw samples).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 30;

  void Record(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Approximate quantile in microseconds, q in [0, 1].
  double Quantile(double q) const;
  double mean() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// One query's contribution to the registry.
struct QueryObservation {
  Status status;
  uint64_t latency_micros = 0;
  bool cache_hit = false;
};

class ServerMetrics {
 public:
  void RecordQuery(const QueryObservation& observation);
  /// Folds one executed pipeline's per-operator counters into the
  /// per-operator totals (`physical_name` -> summed ExecStats).
  void RecordOperator(const std::string& physical_name,
                      const ExecStats& stats);
  /// Folds one optimization's per-pass stats (OptimizeOutcome::passes)
  /// into the per-pass totals surfaced by the STATS dump.
  void RecordOptimizerPasses(const std::vector<PassStats>& passes);
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordConnection() {
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordFrameError() {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t queries() const { return queries_.load(std::memory_order_relaxed); }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  uint64_t cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t frame_errors() const {
    return frame_errors_.load(std::memory_order_relaxed);
  }
  const LatencyHistogram& latency() const { return latency_; }

  /// The STATS dump: one `key=value` per line, an `op <name> ...` line
  /// per physical operator, and a `pass <name> ...` rollup per rewrite
  /// pass.
  std::string ToText() const;

 private:
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> frame_errors_{0};
  LatencyHistogram latency_;

  mutable std::mutex op_mu_;
  std::map<std::string, ExecStats> op_totals_;

  /// Cumulative per-pass totals, keyed by pass name.
  struct PassTotals {
    uint64_t runs = 0;
    uint64_t skips = 0;
    uint64_t applications = 0;
    uint64_t plans_considered = 0;
  };
  mutable std::mutex pass_mu_;
  std::map<std::string, PassTotals> pass_totals_;
};

}  // namespace fro

#endif  // FRO_SERVER_METRICS_H_
