// Relations with bag (multiset) semantics.
//
// The paper defines relations as sets but explicitly prefers algebraic
// proofs valid "in an environment where duplicates are permitted", so rows
// are stored as a multiset. Comparison helpers implement the paper's
// padding convention: to compare or union relations with different schemes,
// both are first padded with nulls to the union scheme (Section 2.1).

#ifndef FRO_RELATIONAL_RELATION_H_
#define FRO_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace fro {

class Catalog;

/// A finite bag of tuples over a fixed Scheme.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Scheme scheme) : scheme_(std::move(scheme)) {}
  Relation(Scheme scheme, std::vector<Tuple> rows);

  const Scheme& scheme() const { return scheme_; }
  size_t NumRows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a row; arity must match the scheme.
  void AddRow(Tuple row);
  void AddRow(std::vector<Value> values) { AddRow(Tuple(std::move(values))); }

  void Reserve(size_t n) { rows_.reserve(n); }

  /// Value of attribute `attr` in row `i`; the attribute must be in the
  /// scheme.
  const Value& ValueOf(size_t i, AttrId attr) const;

  std::string ToString(const Catalog* catalog = nullptr) const;

 private:
  Scheme scheme_;
  std::vector<Tuple> rows_;
};

/// Re-layouts `rel` to `target` scheme: attributes present in `rel` keep
/// their values; attributes only in `target` are null-padded. Every
/// attribute of `rel` must appear in `target`.
Relation PadToScheme(const Relation& rel, const Scheme& target);

/// The union scheme of two relations with canonical (sorted-AttrId) column
/// order.
Scheme UnionScheme(const Relation& a, const Relation& b);

/// Bag union after padding both operands to the union scheme (the paper's
/// convention for writing `(R - S) ∪ (R ▷ S)`).
Relation BagUnionPadded(const Relation& a, const Relation& b);

/// Multiset equality modulo scheme order and padding: both relations are
/// padded to the union scheme (canonical column order) and compared as
/// sorted bags. This is the paper's notion of "same result".
bool BagEquals(const Relation& a, const Relation& b);

/// Stable textual form: canonical column order, sorted rows. Two relations
/// are BagEquals iff their canonical strings match; handy in test failures.
std::string CanonicalString(const Relation& rel,
                            const Catalog* catalog = nullptr);

}  // namespace fro

#endif  // FRO_RELATIONAL_RELATION_H_
