// Predicate trees: comparisons, boolean connectives, IS NULL.
//
// Predicates evaluate under Kleene three-valued logic; a tuple satisfies a
// predicate only if it evaluates to True.
//
// This header also implements the paper's central side condition: a
// predicate p is *strong* with respect to an attribute set S if p cannot
// evaluate to True on any tuple whose S attributes are all null
// (Section 2.1). Strength is decided by an abstract interpretation that is
// conservative: `IsStrongWrt` never returns true for a non-strong
// predicate. (It can return false for a predicate that is strong only via
// value-level reasoning across conjuncts, which does not arise for the
// predicate shapes the paper considers.)

#ifndef FRO_RELATIONAL_PREDICATE_H_
#define FRO_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace fro {

class Catalog;

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpSymbol(CmpOp op);

/// A scalar operand of a comparison: a column reference or a literal.
class Operand {
 public:
  static Operand Column(AttrId attr) { return Operand(attr); }
  static Operand Literal(Value value) { return Operand(std::move(value)); }

  bool is_column() const { return is_column_; }
  AttrId attr() const;
  const Value& literal() const;

  /// The operand's value under `tuple` (literal value, or the column's
  /// value looked up through `scheme`).
  const Value& Resolve(const Tuple& tuple, const Scheme& scheme) const;

  std::string ToString(const Catalog* catalog) const;

 private:
  explicit Operand(AttrId attr) : is_column_(true), attr_(attr) {}
  explicit Operand(Value value)
      : is_column_(false), literal_(std::move(value)) {}

  bool is_column_;
  AttrId attr_ = 0;
  Value literal_;
};

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// An immutable predicate tree. Build via the factory functions; share via
/// PredicatePtr.
class Predicate {
 public:
  enum class Kind : uint8_t { kConst, kCmp, kAnd, kOr, kNot, kIsNull };

  /// Constant TRUE / FALSE.
  static PredicatePtr Const(bool value);
  static PredicatePtr Cmp(CmpOp op, Operand lhs, Operand rhs);
  /// N-ary AND; flattens nested ANDs; empty list means TRUE.
  static PredicatePtr And(std::vector<PredicatePtr> children);
  /// N-ary OR; flattens nested ORs; empty list means FALSE.
  static PredicatePtr Or(std::vector<PredicatePtr> children);
  static PredicatePtr Not(PredicatePtr child);
  static PredicatePtr IsNull(Operand operand);

  Kind kind() const { return kind_; }

  /// Cached 64-bit structural hash, computed at construction. Canonical
  /// with respect to AND/OR child order (children are combined in sorted
  /// hash order), matching the equivalence the canonical fingerprint uses:
  /// two conjunctions differing only in conjunct order hash identically.
  uint64_t Hash() const { return hash_; }

  bool const_value() const { return const_value_; }
  CmpOp cmp_op() const { return cmp_op_; }
  const Operand& lhs() const { return operands_[0]; }
  const Operand& rhs() const { return operands_[1]; }
  const Operand& operand() const { return operands_[0]; }
  const std::vector<PredicatePtr>& children() const { return children_; }

  /// Three-valued evaluation against a row of `scheme`.
  TriBool Eval(const Tuple& tuple, const Scheme& scheme) const;

  /// Attributes referenced anywhere in the tree.
  const AttrSet& References() const { return references_; }

  /// True if the predicate can never evaluate to True when every attribute
  /// in `nulled` is null. Conservative (see file comment).
  bool IsStrongWrt(const AttrSet& nulled) const;

  /// Splits a top-level conjunction into its conjuncts (a non-AND predicate
  /// is its own single conjunct). A constant TRUE yields no conjuncts.
  std::vector<PredicatePtr> Conjuncts(const PredicatePtr& self) const;

  std::string ToString(const Catalog* catalog = nullptr) const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kConst;
  uint64_t hash_ = 0;
  bool const_value_ = true;
  CmpOp cmp_op_ = CmpOp::kEq;
  std::vector<Operand> operands_;
  std::vector<PredicatePtr> children_;
  AttrSet references_;
};

/// A predicate compiled against one fixed Scheme: every column operand's
/// position is resolved at bind time, so per-row evaluation is a flat
/// tree walk over direct tuple indices — no per-row hash lookups. This is
/// the batch executor's amortization of predicate interpretation: bind
/// once per pipeline, evaluate per tuple. Equivalent to
/// `pred->Eval(tuple, scheme)` on every input (the equivalence suite
/// asserts engine agreement).
class BoundPredicate {
 public:
  /// Unbound; Eval must not be called until Bind().
  BoundPredicate() = default;
  BoundPredicate(const PredicatePtr& pred, const Scheme& scheme) {
    Bind(pred, scheme);
  }

  /// (Re)binds to `pred` resolved against `scheme`. Like
  /// Operand::Resolve, check-fails if a referenced column is missing.
  void Bind(const PredicatePtr& pred, const Scheme& scheme);

  bool bound() const { return !nodes_.empty(); }

  /// Three-valued evaluation; positions were resolved at bind time.
  TriBool Eval(const Tuple& tuple) const { return EvalNode(0, tuple); }

 private:
  struct Node {
    Predicate::Kind kind = Predicate::Kind::kConst;
    bool const_value = true;
    CmpOp op = CmpOp::kEq;
    /// Column position in the bound scheme, or -1 for a literal operand.
    int lhs_pos = -1;
    int rhs_pos = -1;
    Value lhs_lit;
    Value rhs_lit;
    /// Indices into nodes_ (children stored after their parent).
    std::vector<uint32_t> children;
  };

  uint32_t Compile(const Predicate& pred, const Scheme& scheme);
  TriBool EvalNode(uint32_t index, const Tuple& tuple) const;

  std::vector<Node> nodes_;
};

class ColumnVector;

/// A predicate compiled against one fixed Scheme for column-at-a-time
/// evaluation: the batch engine's kernel form of BoundPredicate. Where
/// BoundPredicate walks the tree once per row, VectorPredicate walks it
/// once per batch, each node producing two byte masks over the rows —
/// is-True and is-False (neither set = Unknown, the 3VL encoding that
/// makes Kleene connectives plain byte ops: AND is t1&t2 / f1|f2, OR is
/// t1|t2 / f1&f2, NOT swaps). Comparisons over dense numeric columns run
/// as tight auto-vectorizable loops with the null masks folded in
/// afterwards; generic (string/mixed) columns fall back to a scalar loop
/// over stored Values. Row-for-row equivalent to BoundPredicate::Eval —
/// including the quirk that SQL numeric comparison is expressed purely
/// via `<` and `>` (so kernels use e.g. !(a<b)&&!(a>b) for equality
/// rather than operator==).
class VectorPredicate {
 public:
  VectorPredicate() = default;
  VectorPredicate(const PredicatePtr& pred, const Scheme& scheme) {
    Bind(pred, scheme);
  }

  void Bind(const PredicatePtr& pred, const Scheme& scheme);
  bool bound() const { return !nodes_.empty(); }

  /// Evaluates rows [offset, offset+n) of a columnized input. `cols` is
  /// indexed by bound-scheme position (length = scheme size; positions
  /// the predicate never references may be null). out_true[i] /
  /// out_false[i] receive 1 where row offset+i evaluates True / False;
  /// either output may be null when not needed. Not const: reuses
  /// per-instance scratch, so each thread needs its own VectorPredicate
  /// (batch operators are per-worker already).
  void Eval(const ColumnVector* const* cols, size_t offset, size_t n,
            uint8_t* out_true, uint8_t* out_false);

  /// Distinct bound-scheme positions the predicate reads: the columns a
  /// caller must supply in `cols` (others may be left null).
  const std::vector<int>& column_positions() const { return col_positions_; }

 private:
  struct Node {
    Predicate::Kind kind = Predicate::Kind::kConst;
    bool const_value = true;
    CmpOp op = CmpOp::kEq;
    int lhs_pos = -1;  // column position in the bound scheme, or -1
    int rhs_pos = -1;
    Value lhs_lit;
    Value rhs_lit;
    std::vector<uint32_t> children;
  };

  uint32_t Compile(const Predicate& pred, const Scheme& scheme);
  void EvalNode(uint32_t index, const ColumnVector* const* cols,
                size_t offset, size_t n);
  void EvalCmp(const Node& node, const ColumnVector* const* cols,
               size_t offset, size_t n, uint8_t* t, uint8_t* f);

  std::vector<Node> nodes_;
  std::vector<int> col_positions_;
  // Per-node result masks and dense-side conversion buffers, reused
  // across batches so steady-state evaluation never allocates.
  std::vector<std::vector<uint8_t>> true_masks_;
  std::vector<std::vector<uint8_t>> false_masks_;
  std::vector<double> lhs_scratch_;
  std::vector<double> rhs_scratch_;
};

/// Convenience factories for the common column/column and column/literal
/// comparisons.
PredicatePtr EqCols(AttrId a, AttrId b);
PredicatePtr CmpCols(CmpOp op, AttrId a, AttrId b);
PredicatePtr CmpLit(CmpOp op, AttrId a, Value v);

/// AND of two predicates (either may be null, meaning absent).
PredicatePtr AndOf(PredicatePtr a, PredicatePtr b);

/// Structural equality modulo AND/OR child order (the same equivalence
/// `Hash()` is canonical for). Used by the expression interner to verify
/// candidates that collide on `Hash()`.
bool PredEquals(const Predicate& a, const Predicate& b);

}  // namespace fro

#endif  // FRO_RELATIONAL_PREDICATE_H_
