// Execution counters used to reproduce the paper's cost arithmetic.
//
// Example 1 of the paper argues in "tuples retrieved": the naive order of
// `R1 - (R2 -> R3)` touches 2*10^7 + 1 tuples while the reordered
// `(R1 - R2) -> R3` touches 3. The kernels increment these counters with
// exactly that accounting: every tuple read from an input and every index
// probe result counts as a retrieval.

#ifndef FRO_RELATIONAL_EXEC_STATS_H_
#define FRO_RELATIONAL_EXEC_STATS_H_

#include <cstdint>
#include <string>

namespace fro {

struct ExecStats {
  /// Tuples fetched from base or intermediate relations (including tuples
  /// returned by index probes).
  uint64_t tuples_read = 0;
  /// Tuples emitted into operator outputs.
  uint64_t tuples_emitted = 0;
  /// Number of index probe operations.
  uint64_t index_probes = 0;
  /// Predicate evaluations.
  uint64_t predicate_evals = 0;

  ExecStats& operator+=(const ExecStats& other) {
    tuples_read += other.tuples_read;
    tuples_emitted += other.tuples_emitted;
    index_probes += other.index_probes;
    predicate_evals += other.predicate_evals;
    return *this;
  }

  std::string ToString() const {
    return "read=" + std::to_string(tuples_read) +
           " emitted=" + std::to_string(tuples_emitted) +
           " probes=" + std::to_string(index_probes) +
           " evals=" + std::to_string(predicate_evals);
  }
};

}  // namespace fro

#endif  // FRO_RELATIONAL_EXEC_STATS_H_
