// Execution counters used to reproduce the paper's cost arithmetic.
//
// Example 1 of the paper argues in "tuples retrieved": the naive order of
// `R1 - (R2 -> R3)` touches 2*10^7 + 1 tuples while the reordered
// `(R1 - R2) -> R3` touches 3. One counter struct serves every layer with
// exactly that accounting: the kernels in relational/ops.h and
// relational/sort_merge.h fill it per invocation, the materializing
// evaluator (algebra/eval.h) sums it across a tree, and the pipelined
// Volcano executor (exec/iterator.h) keeps one per operator. Tests assert
// that executor and evaluator produce identical counters operator by
// operator.

#ifndef FRO_RELATIONAL_EXEC_STATS_H_
#define FRO_RELATIONAL_EXEC_STATS_H_

#include <cstdint>
#include <string>

namespace fro {

/// Per-operator execution counters. `left_reads` / `right_reads` separate
/// the two inputs so Example 1's base-table retrievals can be attributed
/// (every tuple read from an input and every index probe result counts as
/// a retrieval). The `*_ns` wall-clock fields are filled only by the
/// pipelined executor, and only when timing collection is enabled there;
/// kernels leave them zero.
struct ExecStats {
  uint64_t left_reads = 0;   // tuples fetched from the left input
  uint64_t right_reads = 0;  // tuples fetched from the right input
  uint64_t emitted = 0;      // tuples in the output
  uint64_t probes = 0;       // hash/index probe operations
  uint64_t predicate_evals = 0;
  uint64_t open_ns = 0;  // wall-clock spent in Open()
  uint64_t next_ns = 0;  // wall-clock spent across all Next() calls

  /// Tuples fetched from either input (the quantity Example 1 counts when
  /// the inputs are ground relations).
  uint64_t tuples_read() const { return left_reads + right_reads; }

  ExecStats& operator+=(const ExecStats& other) {
    left_reads += other.left_reads;
    right_reads += other.right_reads;
    emitted += other.emitted;
    probes += other.probes;
    predicate_evals += other.predicate_evals;
    open_ns += other.open_ns;
    next_ns += other.next_ns;
    return *this;
  }

  std::string ToString() const {
    return "read=" + std::to_string(tuples_read()) +
           " emitted=" + std::to_string(emitted) +
           " probes=" + std::to_string(probes) +
           " evals=" + std::to_string(predicate_evals);
  }
};

/// Historical name for the same counters, kept for the kernel signatures.
using KernelStats = ExecStats;

}  // namespace fro

#endif  // FRO_RELATIONAL_EXEC_STATS_H_
