#include "relational/tuple.h"

namespace fro {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out;
  out.reserve(values_.size() + other.values_.size());
  out.insert(out.end(), values_.begin(), values_.end());
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

size_t Tuple::Hash() const {
  size_t h = 0x811c9dc5;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace fro
