#include "relational/tuple.h"

namespace fro {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out;
  out.reserve(values_.size() + other.values_.size());
  out.insert(out.end(), values_.begin(), values_.end());
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

void Tuple::AssignConcat(const Tuple& a, const Tuple& b) {
  values_.resize(a.values_.size() + b.values_.size());
  size_t i = 0;
  for (const Value& v : a.values_) values_[i++] = v;
  for (const Value& v : b.values_) values_[i++] = v;
}

void Tuple::AssignConcatNulls(const Tuple& a, size_t null_count) {
  values_.resize(a.values_.size() + null_count);
  size_t i = 0;
  for (const Value& v : a.values_) values_[i++] = v;
  for (; i < values_.size(); ++i) values_[i] = Value::Null();
}

void Tuple::AssignMapped(const Tuple& src, const std::vector<int>& positions) {
  values_.resize(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] < 0) {
      values_[i] = Value::Null();
    } else {
      values_[i] = src.value(static_cast<size_t>(positions[i]));
    }
  }
}

size_t Tuple::Hash() const {
  size_t h = 0x811c9dc5;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace fro
