// In-memory hash index over one or more columns of a relation.

#ifndef FRO_RELATIONAL_INDEX_H_
#define FRO_RELATIONAL_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"

namespace fro {

/// Hash index mapping a key (values of `key_attrs` in scheme order) to the
/// row indices holding it. Rows whose key contains a null are not indexed:
/// under SQL semantics a null key can never equi-match, which is exactly
/// the behaviour joins need.
class HashIndex {
 public:
  /// Builds an index on `relation` (which must outlive the index).
  HashIndex(const Relation& relation, const std::vector<AttrId>& key_attrs);

  /// Row indices whose key equals `key` (structural equality on non-null
  /// values). Keys containing nulls return no rows.
  const std::vector<size_t>& Probe(const std::vector<Value>& key) const;

  /// Borrowed-key probe: the same lookup over `len` values at `key`
  /// without materializing an owned key vector (heterogeneous unordered
  /// lookup). Lets callers reuse a scratch buffer across probes.
  const std::vector<size_t>& Probe(const Value* key, size_t len) const;

  size_t num_keys() const { return buckets_.size(); }
  const std::vector<AttrId>& key_attrs() const { return key_attrs_; }

 private:
  /// Non-owning view of a probe key; hashed and compared exactly like an
  /// owned key vector so it can stand in for one during lookup.
  struct KeyView {
    const Value* data;
    size_t len;
  };
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(const std::vector<Value>& key) const;
    size_t operator()(const KeyView& key) const;
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
    bool operator()(const KeyView& a, const std::vector<Value>& b) const;
    bool operator()(const std::vector<Value>& a, const KeyView& b) const;
  };

  std::vector<AttrId> key_attrs_;
  std::unordered_map<std::vector<Value>, std::vector<size_t>, KeyHash, KeyEq>
      buckets_;
  std::vector<size_t> empty_;
};

}  // namespace fro

#endif  // FRO_RELATIONAL_INDEX_H_
