#include "relational/index_manager.h"

#include <algorithm>

#include "relational/ops.h"

namespace fro {

void IndexManager::CreateIndex(const Database& db, RelId rel,
                               std::vector<AttrId> key_attrs) {
  std::vector<AttrId> sorted = key_attrs;
  std::sort(sorted.begin(), sorted.end());
  // Replace an existing hash index on the same keys.
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return !e.is_trie() && e.rel == rel &&
                                         e.sorted_keys == sorted;
                                }),
                 entries_.end());
  Entry entry;
  entry.rel = rel;
  entry.keys = key_attrs;
  entry.sorted_keys = std::move(sorted);
  entry.generation = db.generation(rel);
  entry.normalized = NormalizeOnKeyColumns(db.relation(rel), key_attrs);
  entry.index = std::make_unique<HashIndex>(entry.normalized, key_attrs);
  entries_.push_back(std::move(entry));
}

const HashIndex* IndexManager::Find(
    const Database& db, RelId rel,
    const std::vector<AttrId>& key_attrs) const {
  std::vector<AttrId> sorted = key_attrs;
  std::sort(sorted.begin(), sorted.end());
  for (const Entry& entry : entries_) {
    if (entry.is_trie() || entry.rel != rel || entry.sorted_keys != sorted) {
      continue;
    }
    // A snapshot from before the relation's latest mutation would
    // silently serve pre-mutation rows; refuse it.
    if (entry.generation != db.generation(rel)) return nullptr;
    return entry.index.get();
  }
  return nullptr;
}

void IndexManager::AdoptTrie(const Database& db, RelId rel,
                             std::vector<AttrId> key_attrs,
                             std::unique_ptr<TrieIndexBase> trie) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return e.is_trie() && e.rel == rel &&
                                         e.keys == key_attrs;
                                }),
                 entries_.end());
  Entry entry;
  entry.rel = rel;
  entry.sorted_keys = key_attrs;
  std::sort(entry.sorted_keys.begin(), entry.sorted_keys.end());
  entry.keys = std::move(key_attrs);
  entry.generation = db.generation(rel);
  entry.trie = std::move(trie);
  entries_.push_back(std::move(entry));
}

const TrieIndexBase* IndexManager::FindTrie(
    const Database& db, RelId rel,
    const std::vector<AttrId>& key_attrs) const {
  for (const Entry& entry : entries_) {
    if (!entry.is_trie() || entry.rel != rel || entry.keys != key_attrs) {
      continue;
    }
    if (entry.generation != db.generation(rel)) return nullptr;
    return entry.trie.get();
  }
  return nullptr;
}

size_t IndexManager::Refresh(const Database& db) {
  size_t touched = 0;
  // Drop stale tries (their builder lives a layer up), collect stale hash
  // entries to rebuild.
  std::vector<std::pair<RelId, std::vector<AttrId>>> rebuild;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->generation == db.generation(it->rel)) {
      ++it;
      continue;
    }
    ++touched;
    if (!it->is_trie()) rebuild.emplace_back(it->rel, it->keys);
    it = entries_.erase(it);
  }
  for (auto& [rel, keys] : rebuild) CreateIndex(db, rel, std::move(keys));
  return touched;
}

std::vector<IndexInfo> IndexManager::ListIndexes(const Database& db) const {
  std::vector<IndexInfo> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    IndexInfo info;
    info.rel = entry.rel;
    info.key_attrs = entry.keys;
    info.is_trie = entry.is_trie();
    info.rows = entry.is_trie() ? entry.trie->num_rows()
                                : entry.normalized.NumRows();
    info.generation = entry.generation;
    info.stale = entry.generation != db.generation(entry.rel);
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace fro
