#include "relational/index_manager.h"

#include <algorithm>

#include "relational/ops.h"

namespace fro {

void IndexManager::CreateIndex(const Database& db, RelId rel,
                               std::vector<AttrId> key_attrs) {
  std::vector<AttrId> sorted = key_attrs;
  std::sort(sorted.begin(), sorted.end());
  // Replace an existing index on the same keys.
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return e.rel == rel &&
                                         e.sorted_keys == sorted;
                                }),
                 entries_.end());
  Entry entry;
  entry.rel = rel;
  entry.sorted_keys = std::move(sorted);
  entry.normalized = NormalizeOnKeyColumns(db.relation(rel), key_attrs);
  entry.index =
      std::make_unique<HashIndex>(entry.normalized, key_attrs);
  entries_.push_back(std::move(entry));
}

const HashIndex* IndexManager::Find(
    RelId rel, const std::vector<AttrId>& key_attrs) const {
  std::vector<AttrId> sorted = key_attrs;
  std::sort(sorted.begin(), sorted.end());
  for (const Entry& entry : entries_) {
    if (entry.rel == rel && entry.sorted_keys == sorted) {
      return entry.index.get();
    }
  }
  return nullptr;
}

}  // namespace fro
