#include "relational/pretty.h"

#include <algorithm>
#include <vector>

#include "relational/schema.h"

namespace fro {

namespace {

std::string CellText(const Value& value, const PrettyOptions& options) {
  if (value.is_null()) return options.null_text;
  if (value.kind() == Value::Kind::kString) return value.AsString();
  return value.ToString();
}

// Display width in characters; the default null marker is multi-byte
// UTF-8 but single-column.
size_t DisplayWidth(const std::string& text) {
  size_t width = 0;
  for (size_t i = 0; i < text.size();) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    i += c < 0x80 ? 1 : c < 0xE0 ? 2 : c < 0xF0 ? 3 : 4;
    ++width;
  }
  return width;
}

std::string Padded(const std::string& text, size_t width) {
  std::string out = text;
  size_t current = DisplayWidth(text);
  if (current < width) out.append(width - current, ' ');
  return out;
}

}  // namespace

std::string PrettyTable(const Relation& rel, const Catalog* catalog,
                        const PrettyOptions& options) {
  // Column order & headers.
  std::vector<AttrId> cols = rel.scheme().cols();
  if (options.canonical) std::sort(cols.begin(), cols.end());
  std::vector<std::string> headers;
  std::vector<int> positions;
  for (AttrId attr : cols) {
    headers.push_back(catalog != nullptr ? catalog->AttrName(attr)
                                         : "#" + std::to_string(attr));
    positions.push_back(rel.scheme().IndexOf(attr));
  }

  // Rows (possibly sorted by the displayed column order).
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<Value>> sort_keys;
  for (const Tuple& row : rel.rows()) {
    std::vector<std::string> cells;
    std::vector<Value> key;
    for (int pos : positions) {
      const Value& v = row.value(static_cast<size_t>(pos));
      cells.push_back(CellText(v, options));
      key.push_back(v);
    }
    rows.push_back(std::move(cells));
    sort_keys.push_back(std::move(key));
  }
  if (options.canonical) {
    std::vector<size_t> order(rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return sort_keys[a] < sort_keys[b];
    });
    std::vector<std::vector<std::string>> sorted;
    sorted.reserve(rows.size());
    for (size_t i : order) sorted.push_back(std::move(rows[i]));
    rows = std::move(sorted);
  }

  // Column widths.
  std::vector<size_t> widths;
  for (const std::string& h : headers) widths.push_back(DisplayWidth(h));
  const size_t shown = std::min(rows.size(), options.max_rows);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(rows[r][c]));
    }
  }

  std::string out;
  for (size_t c = 0; c < headers.size(); ++c) {
    if (c > 0) out += " | ";
    out += Padded(headers[c], widths[c]);
  }
  out += "\n";
  for (size_t c = 0; c < headers.size(); ++c) {
    if (c > 0) out += "-+-";
    out.append(widths[c], '-');
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += Padded(rows[r][c], widths[c]);
    }
    out += "\n";
  }
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size() - shown) + " more)\n";
  }
  return out;
}

}  // namespace fro
