#include "relational/sort_merge.h"

#include <algorithm>

#include "common/check.h"

namespace fro {

namespace {

enum class MergeMode : uint8_t { kInner, kLeftOuter, kAnti, kSemi };

// A row's extracted, normalized key; rows with any null key component
// can never equi-match.
struct KeyedRow {
  size_t row;
  std::vector<Value> key;
  bool null_key;
};

std::vector<KeyedRow> ExtractKeys(const Relation& rel,
                                  const std::vector<AttrId>& attrs) {
  std::vector<int> positions;
  positions.reserve(attrs.size());
  for (AttrId attr : attrs) {
    int pos = rel.scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0);
    positions.push_back(pos);
  }
  std::vector<KeyedRow> out;
  out.reserve(rel.NumRows());
  for (size_t i = 0; i < rel.NumRows(); ++i) {
    KeyedRow keyed{i, {}, false};
    for (int pos : positions) {
      Value v = NormalizeHashKeyValue(rel.row(i).value(
          static_cast<size_t>(pos)));
      if (v.is_null()) {
        keyed.null_key = true;
        break;
      }
      keyed.key.push_back(std::move(v));
    }
    out.push_back(std::move(keyed));
  }
  // Null-key rows sort to the front (their key vectors are short/empty),
  // but we only compare keys among non-null-key rows, so simply order by
  // (null_key, key).
  std::sort(out.begin(), out.end(),
            [](const KeyedRow& a, const KeyedRow& b) {
              if (a.null_key != b.null_key) return a.null_key;
              return a.key < b.key;
            });
  return out;
}

Relation Merge(MergeMode mode, const Relation& left, const Relation& right,
               const PredicatePtr& pred, KernelStats* stats) {
  EquiKeys keys = ExtractEquiKeys(pred, left.scheme(), right.scheme());
  FRO_CHECK(keys.Usable())
      << "sort-merge requires at least one equi-key conjunct";
  KernelStats local;
  local.left_reads = left.NumRows();
  local.right_reads = right.NumRows();

  const Scheme joined_scheme = left.scheme().Concat(right.scheme());
  Relation out(mode == MergeMode::kInner || mode == MergeMode::kLeftOuter
                   ? joined_scheme
                   : left.scheme());

  std::vector<KeyedRow> lkeys = ExtractKeys(left, keys.left);
  std::vector<KeyedRow> rkeys = ExtractKeys(right, keys.right);

  auto emit_unmatched_left = [&](size_t row) {
    if (mode == MergeMode::kLeftOuter) {
      ++local.emitted;
      out.AddRow(left.row(row).Concat(Tuple::Nulls(right.scheme().size())));
    } else if (mode == MergeMode::kAnti) {
      ++local.emitted;
      out.AddRow(left.row(row));
    }
  };

  size_t li = 0;
  size_t ri = 0;
  // Null-key left rows (sorted first) are unmatched by definition.
  while (li < lkeys.size() && lkeys[li].null_key) {
    emit_unmatched_left(lkeys[li].row);
    ++li;
  }
  while (ri < rkeys.size() && rkeys[ri].null_key) ++ri;

  while (li < lkeys.size()) {
    // Group of equal left keys.
    size_t lj = li;
    while (lj < lkeys.size() && lkeys[lj].key == lkeys[li].key) ++lj;
    // Advance the right side to the first key >= the left key.
    while (ri < rkeys.size() && rkeys[ri].key < lkeys[li].key) ++ri;
    size_t rj = ri;
    while (rj < rkeys.size() && rkeys[rj].key == lkeys[li].key) ++rj;

    for (size_t l = li; l < lj; ++l) {
      bool matched = false;
      for (size_t r = ri; r < rj; ++r) {
        Tuple joined = left.row(lkeys[l].row).Concat(right.row(rkeys[r].row));
        ++local.predicate_evals;
        if (!IsTrue(pred->Eval(joined, joined_scheme))) continue;
        matched = true;
        if (mode == MergeMode::kInner || mode == MergeMode::kLeftOuter) {
          ++local.emitted;
          out.AddRow(std::move(joined));
        } else if (mode == MergeMode::kSemi) {
          break;  // one witness suffices
        } else {
          break;  // anti: disqualified
        }
      }
      if (matched && mode == MergeMode::kSemi) {
        ++local.emitted;
        out.AddRow(left.row(lkeys[l].row));
      }
      if (!matched) emit_unmatched_left(lkeys[l].row);
    }
    li = lj;
  }
  if (stats != nullptr) *stats += local;
  return out;
}

}  // namespace

Relation SortMergeJoin(const Relation& left, const Relation& right,
                       const PredicatePtr& pred, KernelStats* stats) {
  return Merge(MergeMode::kInner, left, right, pred, stats);
}

Relation SortMergeLeftOuterJoin(const Relation& left, const Relation& right,
                                const PredicatePtr& pred,
                                KernelStats* stats) {
  return Merge(MergeMode::kLeftOuter, left, right, pred, stats);
}

Relation SortMergeAntijoin(const Relation& left, const Relation& right,
                           const PredicatePtr& pred, KernelStats* stats) {
  return Merge(MergeMode::kAnti, left, right, pred, stats);
}

Relation SortMergeSemijoin(const Relation& left, const Relation& right,
                           const PredicatePtr& pred, KernelStats* stats) {
  return Merge(MergeMode::kSemi, left, right, pred, stats);
}

}  // namespace fro
