// Kleene three-valued logic, used for predicate evaluation over nulls.
//
// Comparing a null with anything yields Unknown; a tuple satisfies a
// predicate only when it evaluates to True (Unknown filters like False).
// This matches the paper's requirement that a "strong" predicate "returns
// False when all attributes of [a] relation are null": with equality
// predicates, null operands never produce True.

#ifndef FRO_RELATIONAL_TRIBOOL_H_
#define FRO_RELATIONAL_TRIBOOL_H_

#include <cstdint>

namespace fro {

enum class TriBool : uint8_t {
  kFalse = 0,
  kUnknown = 1,
  kTrue = 2,
};

inline TriBool TriNot(TriBool a) {
  switch (a) {
    case TriBool::kFalse:
      return TriBool::kTrue;
    case TriBool::kTrue:
      return TriBool::kFalse;
    case TriBool::kUnknown:
      return TriBool::kUnknown;
  }
  return TriBool::kUnknown;
}

inline TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kTrue && b == TriBool::kTrue) return TriBool::kTrue;
  return TriBool::kUnknown;
}

inline TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kFalse && b == TriBool::kFalse) return TriBool::kFalse;
  return TriBool::kUnknown;
}

/// The filtering interpretation: only True passes.
inline bool IsTrue(TriBool a) { return a == TriBool::kTrue; }

inline const char* TriBoolName(TriBool a) {
  switch (a) {
    case TriBool::kFalse:
      return "false";
    case TriBool::kUnknown:
      return "unknown";
    case TriBool::kTrue:
      return "true";
  }
  return "?";
}

}  // namespace fro

#endif  // FRO_RELATIONAL_TRIBOOL_H_
