// Attribute identifiers, attribute sets, schemes, and the catalog.
//
// The paper assumes a database is "a set of relations whose schemes are
// mutually disjoint" (ground relations). The Catalog interns every
// attribute as `<relation>.<attribute>` and assigns it a dense AttrId, so
// disjointness holds by construction; tuples from different relations can
// be concatenated without renaming.

#ifndef FRO_RELATIONAL_SCHEMA_H_
#define FRO_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fro {

/// Dense identifier of an interned attribute.
using AttrId = uint32_t;
/// Dense identifier of a registered relation (ground relation / variable).
using RelId = uint32_t;

/// A sorted, duplicate-free set of attribute ids with set algebra.
class AttrSet {
 public:
  AttrSet() = default;
  /// Builds from an arbitrary list (sorted and deduplicated).
  explicit AttrSet(std::vector<AttrId> ids);

  static AttrSet Of(std::initializer_list<AttrId> ids) {
    return AttrSet(std::vector<AttrId>(ids));
  }

  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }
  bool Contains(AttrId id) const;
  bool ContainsAll(const AttrSet& other) const;
  bool Overlaps(const AttrSet& other) const;

  AttrSet Union(const AttrSet& other) const;
  AttrSet Intersect(const AttrSet& other) const;
  AttrSet Subtract(const AttrSet& other) const;

  void Insert(AttrId id);

  const std::vector<AttrId>& ids() const { return ids_; }
  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  bool operator==(const AttrSet& other) const { return ids_ == other.ids_; }

 private:
  std::vector<AttrId> ids_;  // sorted, unique
};

/// An *ordered* list of distinct attributes: the column layout of a
/// relation or intermediate result.
class Scheme {
 public:
  Scheme() = default;
  /// Columns must be distinct.
  explicit Scheme(std::vector<AttrId> cols);

  size_t size() const { return cols_.size(); }
  bool empty() const { return cols_.empty(); }
  AttrId col(size_t i) const { return cols_[i]; }
  const std::vector<AttrId>& cols() const { return cols_; }

  /// Position of `id`, or -1 if absent.
  int IndexOf(AttrId id) const;
  bool Contains(AttrId id) const { return IndexOf(id) >= 0; }

  /// Concatenation; the operand schemes must be disjoint.
  Scheme Concat(const Scheme& other) const;

  AttrSet ToAttrSet() const;

  bool operator==(const Scheme& other) const { return cols_ == other.cols_; }

 private:
  std::vector<AttrId> cols_;
  std::unordered_map<AttrId, int> index_;  // id -> position
};

/// Interns relation and attribute names. One catalog per Database.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a relation name; fails if already present.
  Result<RelId> RegisterRelation(const std::string& name);

  /// Registers attribute `rel.attr`; fails if already present or if `rel`
  /// is unknown.
  Result<AttrId> RegisterAttr(RelId rel, const std::string& attr_name);

  Result<RelId> FindRelation(const std::string& name) const;
  /// Finds `rel.attr` by names.
  Result<AttrId> FindAttr(const std::string& rel_name,
                          const std::string& attr_name) const;

  size_t num_relations() const { return rel_names_.size(); }
  size_t num_attrs() const { return attr_names_.size(); }

  const std::string& RelationName(RelId rel) const;
  /// Qualified name "rel.attr".
  const std::string& AttrName(AttrId id) const;
  /// The relation an attribute belongs to.
  RelId AttrRelation(AttrId id) const;
  /// All attributes of a relation, in registration order.
  const std::vector<AttrId>& RelationAttrs(RelId rel) const;

 private:
  std::vector<std::string> rel_names_;
  std::unordered_map<std::string, RelId> rel_by_name_;
  std::vector<std::string> attr_names_;       // qualified
  std::vector<RelId> attr_rel_;               // AttrId -> RelId
  std::vector<std::vector<AttrId>> rel_attrs_;  // RelId -> attrs
  std::unordered_map<std::string, AttrId> attr_by_name_;
};

}  // namespace fro

#endif  // FRO_RELATIONAL_SCHEMA_H_
