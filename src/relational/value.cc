#include "relational/value.h"

#include <functional>

#include "common/check.h"
#include "common/str_util.h"

namespace fro {

int64_t Value::AsInt() const {
  FRO_CHECK(kind() == Kind::kInt) << "Value::AsInt on " << ToString();
  return std::get<int64_t>(rep_);
}

double Value::AsDouble() const {
  FRO_CHECK(kind() == Kind::kDouble) << "Value::AsDouble on " << ToString();
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  FRO_CHECK(kind() == Kind::kString) << "Value::AsString on " << ToString();
  return std::get<std::string>(rep_);
}

double Value::NumericValue() const {
  if (kind() == Kind::kInt) return static_cast<double>(std::get<int64_t>(rep_));
  FRO_CHECK(kind() == Kind::kDouble) << "non-numeric Value " << ToString();
  return std::get<double>(rep_);
}

bool Value::operator<(const Value& other) const {
  if (kind() != other.kind()) return kind() < other.kind();
  return rep_ < other.rep_;
}

size_t Value::Hash() const {
  switch (kind()) {
    case Kind::kNull:
      return 0x9ae16a3b2f90404fULL;
    case Kind::kInt:
      return std::hash<int64_t>{}(std::get<int64_t>(rep_));
    case Kind::kDouble:
      return std::hash<double>{}(std::get<double>(rep_));
    case Kind::kString:
      return std::hash<std::string>{}(std::get<std::string>(rep_));
  }
  return 0;
}

std::optional<int> Value::CompareSql(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  const bool a_num = a.kind() == Kind::kInt || a.kind() == Kind::kDouble;
  const bool b_num = b.kind() == Kind::kInt || b.kind() == Kind::kDouble;
  if (a_num && b_num) {
    const double x = a.NumericValue();
    const double y = b.NumericValue();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.kind() == Kind::kString && b.kind() == Kind::kString) {
    return a.AsString().compare(b.AsString());
  }
  // Cross-kind (string vs numeric): incomparable -> Unknown.
  return std::nullopt;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "-";
    case Kind::kInt:
      return std::to_string(std::get<int64_t>(rep_));
    case Kind::kDouble:
      return StrFormat("%g", std::get<double>(rep_));
    case Kind::kString:
      return "'" + std::get<std::string>(rep_) + "'";
  }
  return "?";
}

namespace {

TriBool FromComparison(std::optional<int> cmp, bool (*test)(int)) {
  if (!cmp.has_value()) return TriBool::kUnknown;
  return test(*cmp) ? TriBool::kTrue : TriBool::kFalse;
}

}  // namespace

TriBool SqlEq(const Value& a, const Value& b) {
  return FromComparison(Value::CompareSql(a, b), [](int c) { return c == 0; });
}
TriBool SqlNe(const Value& a, const Value& b) {
  return FromComparison(Value::CompareSql(a, b), [](int c) { return c != 0; });
}
TriBool SqlLt(const Value& a, const Value& b) {
  return FromComparison(Value::CompareSql(a, b), [](int c) { return c < 0; });
}
TriBool SqlLe(const Value& a, const Value& b) {
  return FromComparison(Value::CompareSql(a, b), [](int c) { return c <= 0; });
}
TriBool SqlGt(const Value& a, const Value& b) {
  return FromComparison(Value::CompareSql(a, b), [](int c) { return c > 0; });
}
TriBool SqlGe(const Value& a, const Value& b) {
  return FromComparison(Value::CompareSql(a, b), [](int c) { return c >= 0; });
}

}  // namespace fro
