// Physical operator kernels: join, outerjoin, antijoin, semijoin,
// generalized outerjoin (paper eq. 14), restrict, project, cross product,
// and padded bag union.
//
// Every join-like kernel is left-anchored: LeftOuterJoin preserves the left
// operand, Antijoin/Semijoin filter the left operand. The algebra layer
// realizes the paper's "symmetric forms" (<-, left-antijoin, ...) by
// swapping operands before calling the kernel; relations compare
// attribute-aligned, so operand order never affects results.
//
// All kernels agree exactly on semantics; the algorithm choice (`JoinAlgo`)
// only changes cost counters. The hash path is used automatically when the
// predicate contains at least one column=column equality conjunct across
// the operands; the full predicate is always re-checked on candidates, so
// hash pruning is purely an optimization.

#ifndef FRO_RELATIONAL_OPS_H_
#define FRO_RELATIONAL_OPS_H_

#include <cstdint>
#include <vector>

#include "relational/exec_stats.h"
#include "relational/index.h"
#include "relational/predicate.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace fro {

enum class JoinAlgo : uint8_t {
  kNestedLoop,
  kHash,
  /// Hash when an equi-conjunct exists, nested loop otherwise.
  kAuto,
};

/// Equality conjuncts `left_col = right_col` extracted from a predicate,
/// plus whether any exist (the hash path's applicability).
struct EquiKeys {
  std::vector<AttrId> left;
  std::vector<AttrId> right;
  bool Usable() const { return !left.empty(); }
};

/// Scans top-level conjuncts of `pred` for column=column equalities with
/// one side in each scheme.
EquiKeys ExtractEquiKeys(const PredicatePtr& pred, const Scheme& left,
                         const Scheme& right);

/// Normalizes a hash-key value so structural hashing agrees with SQL
/// equality across int/double (SqlEq(1, 1.0) is true).
Value NormalizeHashKeyValue(const Value& v);

/// A copy of `rel` with `key_attrs` columns normalized for hashing; used
/// to build indexes whose probes agree with SQL equality.
Relation NormalizeOnKeyColumns(const Relation& rel,
                               const std::vector<AttrId>& key_attrs);

/// JN[p](L, R): concatenations of matching tuples (paper Section 1.2).
/// With `prebuilt_right_index` (an index over R's key columns, e.g. from
/// an IndexManager), the hash path probes it instead of building an
/// ad-hoc table; the index's row numbering must match R.
Relation Join(const Relation& left, const Relation& right,
              const PredicatePtr& pred, JoinAlgo algo, KernelStats* stats,
              const HashIndex* prebuilt_right_index = nullptr);

/// OJ[p](L, R): the join plus unmatched left tuples padded with nulls on
/// R's attributes. L is the preserved relation.
Relation LeftOuterJoin(const Relation& left, const Relation& right,
                       const PredicatePtr& pred, JoinAlgo algo,
                       KernelStats* stats,
                       const HashIndex* prebuilt_right_index = nullptr);

/// AJ[p](L, R): left tuples with no match in R (output scheme = L's).
Relation Antijoin(const Relation& left, const Relation& right,
                  const PredicatePtr& pred, JoinAlgo algo,
                  KernelStats* stats,
                  const HashIndex* prebuilt_right_index = nullptr);

/// SJ[p](L, R): left tuples with at least one match (output scheme = L's).
Relation Semijoin(const Relation& left, const Relation& right,
                  const PredicatePtr& pred, JoinAlgo algo,
                  KernelStats* stats,
                  const HashIndex* prebuilt_right_index = nullptr);

/// GOJ[S, p](L, R), paper eq. 14: the join, plus — for each *distinct*
/// S-projection of L that never appears in the join — one tuple holding
/// that projection padded with nulls on all other attributes. `subset` must
/// be contained in L's scheme.
Relation GeneralizedOuterJoin(const Relation& left, const Relation& right,
                              const PredicatePtr& pred, const AttrSet& subset,
                              JoinAlgo algo, KernelStats* stats);

/// Tuples of `input` satisfying `pred`.
Relation Restrict(const Relation& input, const PredicatePtr& pred,
                  KernelStats* stats);

/// Projection onto `cols` (in the given order); removes duplicates when
/// `dedup` is set (the paper's π).
Relation Project(const Relation& input, const std::vector<AttrId>& cols,
                 bool dedup, KernelStats* stats);

/// All concatenations (no predicate).
Relation CrossProduct(const Relation& left, const Relation& right,
                      KernelStats* stats);

}  // namespace fro

#endif  // FRO_RELATIONAL_OPS_H_
