#include "relational/index.h"

#include "common/check.h"

namespace fro {

namespace {

size_t HashKeySpan(const Value* data, size_t len) {
  size_t h = 0x811c9dc5;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i].Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

bool KeySpanEquals(const Value* a, size_t a_len, const std::vector<Value>& b) {
  if (a_len != b.size()) return false;
  for (size_t i = 0; i < a_len; ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

size_t HashIndex::KeyHash::operator()(const std::vector<Value>& key) const {
  return HashKeySpan(key.data(), key.size());
}

size_t HashIndex::KeyHash::operator()(const KeyView& key) const {
  return HashKeySpan(key.data, key.len);
}

bool HashIndex::KeyEq::operator()(const std::vector<Value>& a,
                                  const std::vector<Value>& b) const {
  return a == b;
}

bool HashIndex::KeyEq::operator()(const KeyView& a,
                                  const std::vector<Value>& b) const {
  return KeySpanEquals(a.data, a.len, b);
}

bool HashIndex::KeyEq::operator()(const std::vector<Value>& a,
                                  const KeyView& b) const {
  return KeySpanEquals(b.data, b.len, a);
}

HashIndex::HashIndex(const Relation& relation,
                     const std::vector<AttrId>& key_attrs)
    : key_attrs_(key_attrs) {
  std::vector<int> positions;
  positions.reserve(key_attrs.size());
  for (AttrId attr : key_attrs) {
    int pos = relation.scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0) << "index key attribute not in relation scheme";
    positions.push_back(pos);
  }
  for (size_t i = 0; i < relation.NumRows(); ++i) {
    std::vector<Value> key;
    key.reserve(positions.size());
    bool has_null = false;
    for (int pos : positions) {
      const Value& v = relation.row(i).value(static_cast<size_t>(pos));
      if (v.is_null()) {
        has_null = true;
        break;
      }
      key.push_back(v);
    }
    if (has_null) continue;  // null keys never equi-match
    buckets_[std::move(key)].push_back(i);
  }
}

const std::vector<size_t>& HashIndex::Probe(
    const std::vector<Value>& key) const {
  return Probe(key.data(), key.size());
}

const std::vector<size_t>& HashIndex::Probe(const Value* key,
                                            size_t len) const {
  for (size_t i = 0; i < len; ++i) {
    if (key[i].is_null()) return empty_;
  }
  auto it = buckets_.find(KeyView{key, len});
  return it == buckets_.end() ? empty_ : it->second;
}

}  // namespace fro
