#include "relational/index.h"

#include "common/check.h"

namespace fro {

size_t HashIndex::KeyHash::operator()(const std::vector<Value>& key) const {
  size_t h = 0x811c9dc5;
  for (const Value& v : key) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

bool HashIndex::KeyEq::operator()(const std::vector<Value>& a,
                                  const std::vector<Value>& b) const {
  return a == b;
}

HashIndex::HashIndex(const Relation& relation,
                     const std::vector<AttrId>& key_attrs)
    : key_attrs_(key_attrs) {
  std::vector<int> positions;
  positions.reserve(key_attrs.size());
  for (AttrId attr : key_attrs) {
    int pos = relation.scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0) << "index key attribute not in relation scheme";
    positions.push_back(pos);
  }
  for (size_t i = 0; i < relation.NumRows(); ++i) {
    std::vector<Value> key;
    key.reserve(positions.size());
    bool has_null = false;
    for (int pos : positions) {
      const Value& v = relation.row(i).value(static_cast<size_t>(pos));
      if (v.is_null()) {
        has_null = true;
        break;
      }
      key.push_back(v);
    }
    if (has_null) continue;  // null keys never equi-match
    buckets_[std::move(key)].push_back(i);
  }
}

const std::vector<size_t>& HashIndex::Probe(
    const std::vector<Value>& key) const {
  for (const Value& v : key) {
    if (v.is_null()) return empty_;
  }
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

}  // namespace fro
