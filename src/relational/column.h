// Columnar value storage: per-attribute value vectors with explicit null
// masks, the storage half of the batch engine's columnar layout.
//
// A ColumnVector holds one attribute's values contiguously. Columns whose
// non-null values are all ints (or all doubles) keep a dense typed array
// the SIMD-friendly kernels (VectorPredicate, HashColumns) loop over;
// anything else — strings, mixed numeric kinds — demotes to a generic
// Value array that the same kernels handle with scalar loops. Either way
// nulls live in a separate byte mask, which is how the paper's 3VL maps
// onto columnar data: the value array answers "what is it?", the null
// mask answers "is it there?", and predicate kernels combine the two
// under Kleene logic without ever materializing a null Value.
//
// The mask is one byte per row rather than a packed bitmap: mask
// combination (AND/OR of 3VL truth masks) then auto-vectorizes to plain
// byte ops with no cross-lane bit extraction, and a byte load per row is
// the same cost as the value load it accompanies (DESIGN.md §10).

#ifndef FRO_RELATIONAL_COLUMN_H_
#define FRO_RELATIONAL_COLUMN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "relational/value.h"

namespace fro {

class Relation;

/// One attribute's values, stored contiguously with a separate null mask.
class ColumnVector {
 public:
  /// Storage tag. kEmpty means no non-null value has been appended yet
  /// (an all-null column stays kEmpty); kInt/kDouble are the dense typed
  /// layouts; kGeneric is the exact-Value fallback.
  enum class Tag : uint8_t { kEmpty = 0, kInt, kDouble, kGeneric };

  ColumnVector() = default;

  size_t size() const { return nulls_.size(); }
  Tag tag() const { return tag_; }

  /// Forgets all values but keeps the underlying capacity, so refilling
  /// a recycled column performs no allocations at steady state.
  void Clear() {
    tag_ = Tag::kEmpty;
    ints_.clear();
    dbls_.clear();
    vals_.clear();
    nulls_.clear();
  }

  void Reserve(size_t n) { nulls_.reserve(n); }

  /// Appends a value, demoting the storage tag if the kind does not
  /// match (int into a double column, any string, ...). Exactness is
  /// preserved: ValueAt(i) always reproduces the appended Value.
  void Append(const Value& v);
  void AppendNull();

  /// Appends src's i-th value. Same-tag typed columns copy one scalar;
  /// mismatches fall back to Append(ValueAt).
  void AppendFrom(const ColumnVector& src, size_t i);

  /// Index entry meaning "append NULL instead of gathering" — the
  /// outerjoin padding row marker in AppendGather index lists.
  static constexpr uint32_t kNullIndex = UINT32_MAX;

  /// Bulk AppendFrom: appends src's values at idx[0..n); idx[i] ==
  /// kNullIndex appends NULL. Typed sources landing in a same-tag (or
  /// fresh) destination run one tight gather loop per value array —
  /// the hash join flushes a whole output batch per column this way
  /// instead of tag-dispatching per value.
  void AppendGather(const ColumnVector& src, const uint32_t* idx, size_t n);

  const uint8_t* null_mask() const { return nulls_.data(); }
  bool is_null(size_t i) const { return nulls_[i] != 0; }

  /// Dense typed storage; valid only for the matching tag. Null rows
  /// hold an unspecified placeholder — consult the null mask first.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return dbls_.data(); }
  /// Generic storage; valid only for kGeneric.
  const Value* generic() const { return vals_.data(); }

  /// The exact value at i (null rows yield Value::Null()); any tag.
  Value ValueAt(size_t i) const;

  /// The SQL-comparison reading of a typed numeric value: ints widen to
  /// double exactly as Value::CompareSql does. Typed non-null rows only.
  double NumericAt(size_t i) const {
    return tag_ == Tag::kInt ? static_cast<double>(ints_[i]) : dbls_[i];
  }

 private:
  void Demote();

  Tag tag_ = Tag::kEmpty;
  std::vector<int64_t> ints_;
  std::vector<double> dbls_;
  std::vector<Value> vals_;
  std::vector<uint8_t> nulls_;  // 1 = NULL; parallel to the value storage
};

/// Lazily-columnized mirror of a Relation: per-attribute ColumnVectors
/// built on first request and cached. The relation's rows must not
/// change while the mirror exists (the same contract batch scans already
/// impose). Safe for concurrent Column() calls from morsel workers:
/// construction is guarded by a mutex and publication is an
/// acquire/release flag per column.
class RelationColumns {
 public:
  explicit RelationColumns(const Relation* relation);

  /// The columnized attribute at scheme position `pos`.
  const ColumnVector& Column(size_t pos) const;

  const Relation& relation() const { return *relation_; }

 private:
  struct Slot {
    std::atomic<bool> ready{false};
    ColumnVector column;
  };

  const Relation* relation_;
  mutable std::mutex mu_;  // serializes builders; readers go lock-free
  std::unique_ptr<Slot[]> slots_;
};

/// The hash the flat numeric probe tables key on: the normalized key's
/// bit pattern spread by a multiply/xor-shift mix (ints widened to
/// doubles leave most entropy in the high mantissa bits; the multiply
/// diffuses it). Shared by the hash-join build and HashColumns so both
/// sides of a probe agree.
inline uint64_t HashNumericKey(double key) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(key));
  __builtin_memcpy(&bits, &key, sizeof(bits));
  bits *= 0x9E3779B97F4A7C15ull;
  bits ^= bits >> 32;
  return bits;
}

/// NormalizeHashKeyValue restricted to a typed numeric column row: the
/// normalized double (ints widened, -0.0 collapsed to +0.0). Call only
/// for non-null rows of kInt/kDouble columns.
inline double NormalizedNumericKey(const ColumnVector& col, size_t i) {
  const double d = col.NumericAt(i);
  return d == 0.0 ? 0.0 : d;
}

/// Batched equi-key hashing: for rows [offset, offset+n) of the key
/// columns, writes the normalized key and its hash into out_keys /
/// out_hashes and sets out_has_key to 0 where any key column is null or
/// non-numeric (such rows never probe — a null key matches nothing and a
/// non-numeric key cannot equal an all-numeric build key). Indices into
/// the out arrays are batch-relative (row `offset + i` lands at `i`).
/// Multi-column keys mix per-column hashes left to right. out_keys may
/// be null when only hashes are needed (multi-column callers).
/// Returns false — leaving the outputs unspecified — when some column is
/// generic (mixed kinds / strings), in which case callers must use the
/// row-at-a-time probe path.
bool HashColumns(const std::vector<const ColumnVector*>& cols, size_t offset,
                 size_t n, double* out_keys, uint64_t* out_hashes,
                 uint8_t* out_has_key);

}  // namespace fro

#endif  // FRO_RELATIONAL_COLUMN_H_
