#include "relational/ops.h"

#include <set>
#include <utility>

#include "common/check.h"
#include "relational/index.h"

namespace fro {

EquiKeys ExtractEquiKeys(const PredicatePtr& pred, const Scheme& left,
                         const Scheme& right) {
  EquiKeys keys;
  if (pred == nullptr) return keys;
  for (const PredicatePtr& conjunct : pred->Conjuncts(pred)) {
    if (conjunct->kind() != Predicate::Kind::kCmp) continue;
    if (conjunct->cmp_op() != CmpOp::kEq) continue;
    const Operand& a = conjunct->lhs();
    const Operand& b = conjunct->rhs();
    if (!a.is_column() || !b.is_column()) continue;
    if (left.Contains(a.attr()) && right.Contains(b.attr())) {
      keys.left.push_back(a.attr());
      keys.right.push_back(b.attr());
    } else if (left.Contains(b.attr()) && right.Contains(a.attr())) {
      keys.left.push_back(b.attr());
      keys.right.push_back(a.attr());
    }
  }
  return keys;
}

Value NormalizeHashKeyValue(const Value& v) {
  if (v.kind() == Value::Kind::kInt) {
    return Value::Double(static_cast<double>(v.AsInt()));
  }
  return v;
}

Relation NormalizeOnKeyColumns(const Relation& rel,
                               const std::vector<AttrId>& key_attrs) {
  std::vector<int> positions;
  positions.reserve(key_attrs.size());
  for (AttrId attr : key_attrs) {
    positions.push_back(rel.scheme().IndexOf(attr));
  }
  Relation out(rel.scheme());
  out.Reserve(rel.NumRows());
  for (const Tuple& row : rel.rows()) {
    std::vector<Value> values = row.values();
    for (int pos : positions) {
      values[static_cast<size_t>(pos)] =
          NormalizeHashKeyValue(values[static_cast<size_t>(pos)]);
    }
    out.AddRow(Tuple(std::move(values)));
  }
  return out;
}

namespace {

// Internal match-driving core shared by join / outerjoin / antijoin /
// semijoin. For each left row it invokes `on_match` for every right row
// satisfying the full predicate and then `on_done(had_match)`.
class Matcher {
 public:
  Matcher(const Relation& left, const Relation& right,
          const PredicatePtr& pred, JoinAlgo algo, KernelStats* stats,
          const HashIndex* prebuilt = nullptr)
      : left_(left),
        right_(right),
        pred_(pred),
        stats_(stats),
        out_scheme_(left.scheme().Concat(right.scheme())) {
    EquiKeys keys = ExtractEquiKeys(pred, left.scheme(), right.scheme());
    // A prebuilt index is usable when every one of its key columns has an
    // equi-conjunct partner on the left (probe keys must cover the
    // index's full key, in its order).
    if (prebuilt != nullptr && keys.Usable() &&
        algo != JoinAlgo::kNestedLoop) {
      EquiKeys aligned;
      for (AttrId right_attr : prebuilt->key_attrs()) {
        for (size_t i = 0; i < keys.right.size(); ++i) {
          if (keys.right[i] == right_attr) {
            aligned.left.push_back(keys.left[i]);
            aligned.right.push_back(right_attr);
            break;
          }
        }
      }
      if (aligned.right.size() == prebuilt->key_attrs().size()) {
        use_hash_ = true;
        keys_ = std::move(aligned);
        index_ = prebuilt;
        return;
      }
    }
    use_hash_ = algo == JoinAlgo::kHash ||
                (algo == JoinAlgo::kAuto && keys.Usable());
    if (use_hash_ && !keys.Usable()) {
      // Hash requested but no equi keys: fall back to nested loop.
      use_hash_ = false;
    }
    if (use_hash_) {
      keys_ = std::move(keys);
      normalized_right_ = NormalizeOnKeyColumns(right_, keys_.right);
      owned_index_ =
          std::make_unique<HashIndex>(normalized_right_, keys_.right);
      index_ = owned_index_.get();
    }
  }

  const Scheme& out_scheme() const { return out_scheme_; }

  /// With `stop_after_first_match`, stops scanning candidates for a left
  /// row as soon as one match is found — the accounting (and work) the
  /// antijoin/semijoin kernels and the pipelined executor share.
  template <typename OnMatch, typename OnDone>
  void Run(OnMatch&& on_match, OnDone&& on_done,
           bool stop_after_first_match = false) {
    std::vector<int> left_key_positions;
    if (use_hash_) {
      for (AttrId attr : keys_.left) {
        left_key_positions.push_back(left_.scheme().IndexOf(attr));
      }
    }
    for (size_t i = 0; i < left_.NumRows(); ++i) {
      ++stats_->left_reads;
      const Tuple& lrow = left_.row(i);
      bool had_match = false;
      auto consider = [&](size_t right_index) {
        ++stats_->right_reads;
        const Tuple& rrow = right_.row(right_index);
        Tuple joined = lrow.Concat(rrow);
        ++stats_->predicate_evals;
        if (pred_ == nullptr || IsTrue(pred_->Eval(joined, out_scheme_))) {
          had_match = true;
          on_match(lrow, rrow, joined);
        }
      };
      if (use_hash_) {
        std::vector<Value> key;
        key.reserve(left_key_positions.size());
        bool null_key = false;
        for (int pos : left_key_positions) {
          Value v = NormalizeHashKeyValue(lrow.value(static_cast<size_t>(pos)));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          key.push_back(std::move(v));
        }
        ++stats_->probes;
        if (!null_key) {
          for (size_t right_index : index_->Probe(key)) {
            consider(right_index);
            if (stop_after_first_match && had_match) break;
          }
        }
      } else {
        for (size_t right_index = 0; right_index < right_.NumRows();
             ++right_index) {
          consider(right_index);
          if (stop_after_first_match && had_match) break;
        }
      }
      on_done(lrow, had_match);
    }
  }

 private:
  const Relation& left_;
  const Relation& right_;
  PredicatePtr pred_;
  KernelStats* stats_;
  Scheme out_scheme_;
  bool use_hash_ = false;
  EquiKeys keys_;
  Relation normalized_right_;
  std::unique_ptr<HashIndex> owned_index_;
  const HashIndex* index_ = nullptr;
};

}  // namespace

Relation Join(const Relation& left, const Relation& right,
              const PredicatePtr& pred, JoinAlgo algo, KernelStats* stats,
              const HashIndex* prebuilt_right_index) {
  KernelStats local;
  Matcher matcher(left, right, pred, algo, &local, prebuilt_right_index);
  Relation out(matcher.out_scheme());
  matcher.Run(
      [&](const Tuple&, const Tuple&, const Tuple& joined) {
        ++local.emitted;
        out.AddRow(joined);
      },
      [](const Tuple&, bool) {});
  if (stats != nullptr) *stats += local;
  return out;
}

Relation LeftOuterJoin(const Relation& left, const Relation& right,
                       const PredicatePtr& pred, JoinAlgo algo,
                       KernelStats* stats,
                       const HashIndex* prebuilt_right_index) {
  KernelStats local;
  Matcher matcher(left, right, pred, algo, &local, prebuilt_right_index);
  Relation out(matcher.out_scheme());
  const size_t right_arity = right.scheme().size();
  matcher.Run(
      [&](const Tuple&, const Tuple&, const Tuple& joined) {
        ++local.emitted;
        out.AddRow(joined);
      },
      [&](const Tuple& lrow, bool had_match) {
        if (!had_match) {
          ++local.emitted;
          out.AddRow(lrow.Concat(Tuple::Nulls(right_arity)));
        }
      });
  if (stats != nullptr) *stats += local;
  return out;
}

Relation Antijoin(const Relation& left, const Relation& right,
                  const PredicatePtr& pred, JoinAlgo algo,
                  KernelStats* stats,
                  const HashIndex* prebuilt_right_index) {
  KernelStats local;
  Matcher matcher(left, right, pred, algo, &local, prebuilt_right_index);
  Relation out(left.scheme());
  matcher.Run([](const Tuple&, const Tuple&, const Tuple&) {},
              [&](const Tuple& lrow, bool had_match) {
                if (!had_match) {
                  ++local.emitted;
                  out.AddRow(lrow);
                }
              },
              /*stop_after_first_match=*/true);
  if (stats != nullptr) *stats += local;
  return out;
}

Relation Semijoin(const Relation& left, const Relation& right,
                  const PredicatePtr& pred, JoinAlgo algo,
                  KernelStats* stats,
                  const HashIndex* prebuilt_right_index) {
  KernelStats local;
  Matcher matcher(left, right, pred, algo, &local, prebuilt_right_index);
  Relation out(left.scheme());
  matcher.Run([](const Tuple&, const Tuple&, const Tuple&) {},
              [&](const Tuple& lrow, bool had_match) {
                if (had_match) {
                  ++local.emitted;
                  out.AddRow(lrow);
                }
              },
              /*stop_after_first_match=*/true);
  if (stats != nullptr) *stats += local;
  return out;
}

Relation GeneralizedOuterJoin(const Relation& left, const Relation& right,
                              const PredicatePtr& pred, const AttrSet& subset,
                              JoinAlgo algo, KernelStats* stats) {
  FRO_CHECK(left.scheme().ToAttrSet().ContainsAll(subset))
      << "GOJ subset must be contained in the left scheme";
  KernelStats local;
  Matcher matcher(left, right, pred, algo, &local);
  Relation out(matcher.out_scheme());

  // Positions of the subset attributes in the left scheme, and in the
  // output scheme (left columns keep their positions under Concat).
  std::vector<int> subset_positions;
  for (AttrId attr : subset) {
    subset_positions.push_back(left.scheme().IndexOf(attr));
  }

  auto project_subset = [&](const Tuple& lrow) {
    std::vector<Value> key;
    key.reserve(subset_positions.size());
    for (int pos : subset_positions) {
      key.push_back(lrow.value(static_cast<size_t>(pos)));
    }
    return key;
  };

  // π[S] of the joined tuples (set semantics), and π[S] of all left rows.
  std::set<std::vector<Value>> matched_projections;
  std::set<std::vector<Value>> left_projections;

  matcher.Run(
      [&](const Tuple& lrow, const Tuple&, const Tuple& joined) {
        ++local.emitted;
        out.AddRow(joined);
        matched_projections.insert(project_subset(lrow));
      },
      [&](const Tuple& lrow, bool) {
        left_projections.insert(project_subset(lrow));
      });

  // (π[S](L) − π[S](JN)) × null: one padded tuple per missing projection.
  const Scheme& out_scheme = matcher.out_scheme();
  for (const std::vector<Value>& key : left_projections) {
    if (matched_projections.count(key) > 0) continue;
    std::vector<Value> values(out_scheme.size());
    for (size_t k = 0; k < subset_positions.size(); ++k) {
      values[static_cast<size_t>(subset_positions[k])] = key[k];
    }
    ++local.emitted;
    out.AddRow(Tuple(std::move(values)));
  }
  if (stats != nullptr) *stats += local;
  return out;
}

Relation Restrict(const Relation& input, const PredicatePtr& pred,
                  KernelStats* stats) {
  KernelStats local;
  Relation out(input.scheme());
  for (const Tuple& row : input.rows()) {
    ++local.left_reads;
    ++local.predicate_evals;
    if (pred == nullptr || IsTrue(pred->Eval(row, input.scheme()))) {
      ++local.emitted;
      out.AddRow(row);
    }
  }
  if (stats != nullptr) *stats += local;
  return out;
}

Relation Project(const Relation& input, const std::vector<AttrId>& cols,
                 bool dedup, KernelStats* stats) {
  KernelStats local;
  std::vector<int> positions;
  positions.reserve(cols.size());
  for (AttrId attr : cols) {
    int pos = input.scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0) << "projection column not in scheme";
    positions.push_back(pos);
  }
  Relation out((Scheme(cols)));
  std::set<std::vector<Value>> seen;
  for (const Tuple& row : input.rows()) {
    ++local.left_reads;
    std::vector<Value> values;
    values.reserve(positions.size());
    for (int pos : positions) {
      values.push_back(row.value(static_cast<size_t>(pos)));
    }
    if (dedup && !seen.insert(values).second) continue;
    ++local.emitted;
    out.AddRow(Tuple(std::move(values)));
  }
  if (stats != nullptr) *stats += local;
  return out;
}

Relation CrossProduct(const Relation& left, const Relation& right,
                      KernelStats* stats) {
  KernelStats local;
  Relation out(left.scheme().Concat(right.scheme()));
  out.Reserve(left.NumRows() * right.NumRows());
  for (const Tuple& lrow : left.rows()) {
    ++local.left_reads;
    for (const Tuple& rrow : right.rows()) {
      ++local.right_reads;
      ++local.emitted;
      out.AddRow(lrow.Concat(rrow));
    }
  }
  if (stats != nullptr) *stats += local;
  return out;
}

}  // namespace fro
