#include "relational/predicate.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/hash.h"
#include "relational/column.h"

namespace fro {

const char* CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

AttrId Operand::attr() const {
  FRO_CHECK(is_column_);
  return attr_;
}

const Value& Operand::literal() const {
  FRO_CHECK(!is_column_);
  return literal_;
}

const Value& Operand::Resolve(const Tuple& tuple, const Scheme& scheme) const {
  if (!is_column_) return literal_;
  int pos = scheme.IndexOf(attr_);
  FRO_CHECK_GE(pos, 0) << "operand column " << attr_ << " not in scheme";
  return tuple.value(static_cast<size_t>(pos));
}

std::string Operand::ToString(const Catalog* catalog) const {
  if (!is_column_) return literal_.ToString();
  return catalog != nullptr ? catalog->AttrName(attr_)
                            : "#" + std::to_string(attr_);
}

namespace {

AttrSet OperandRefs(const Operand& op) {
  AttrSet refs;
  if (op.is_column()) refs.Insert(op.attr());
  return refs;
}

uint64_t HashOperand(const Operand& op) {
  if (op.is_column()) return HashMix(0x11, op.attr());
  return HashMix(0x22, op.literal().Hash());
}

// Hashes of AND/OR children, combined order-insensitively by mixing in
// sorted order (the hash analog of the canonical fingerprint's sorted
// rendering).
uint64_t HashChildrenCommutative(uint64_t tag,
                                 const std::vector<PredicatePtr>& children) {
  std::vector<uint64_t> hashes;
  hashes.reserve(children.size());
  for (const PredicatePtr& child : children) hashes.push_back(child->Hash());
  std::sort(hashes.begin(), hashes.end());
  uint64_t h = tag;
  for (uint64_t ch : hashes) h = HashMix(h, ch);
  return h;
}

}  // namespace

PredicatePtr Predicate::Const(bool value) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kConst;
  p->const_value_ = value;
  p->hash_ = HashMix(0x1, value ? 1 : 0);
  return p;
}

PredicatePtr Predicate::Cmp(CmpOp op, Operand lhs, Operand rhs) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCmp;
  p->cmp_op_ = op;
  p->references_ = OperandRefs(lhs).Union(OperandRefs(rhs));
  p->hash_ = HashMix(HashMix(HashMix(0x2, static_cast<uint64_t>(op)),
                             HashOperand(lhs)),
                     HashOperand(rhs));
  p->operands_.push_back(std::move(lhs));
  p->operands_.push_back(std::move(rhs));
  return p;
}

namespace {

// Flattens nested nodes of the same kind into `out`.
void FlattenInto(Predicate::Kind kind, const PredicatePtr& child,
                 std::vector<PredicatePtr>* out) {
  FRO_CHECK(child != nullptr);
  if (child->kind() == kind) {
    for (const PredicatePtr& grandchild : child->children()) {
      FlattenInto(kind, grandchild, out);
    }
  } else {
    out->push_back(child);
  }
}

}  // namespace

PredicatePtr Predicate::And(std::vector<PredicatePtr> children) {
  std::vector<PredicatePtr> flat;
  for (const PredicatePtr& child : children) {
    FlattenInto(Kind::kAnd, child, &flat);
  }
  if (flat.empty()) return Const(true);
  if (flat.size() == 1) return flat[0];
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  for (const PredicatePtr& child : flat) {
    p->references_ = p->references_.Union(child->References());
  }
  p->hash_ = HashChildrenCommutative(0x3, flat);
  p->children_ = std::move(flat);
  return p;
}

PredicatePtr Predicate::Or(std::vector<PredicatePtr> children) {
  std::vector<PredicatePtr> flat;
  for (const PredicatePtr& child : children) {
    FlattenInto(Kind::kOr, child, &flat);
  }
  if (flat.empty()) return Const(false);
  if (flat.size() == 1) return flat[0];
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  for (const PredicatePtr& child : flat) {
    p->references_ = p->references_.Union(child->References());
  }
  p->hash_ = HashChildrenCommutative(0x4, flat);
  p->children_ = std::move(flat);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr child) {
  FRO_CHECK(child != nullptr);
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->references_ = child->References();
  p->hash_ = HashMix(0x5, child->Hash());
  p->children_.push_back(std::move(child));
  return p;
}

PredicatePtr Predicate::IsNull(Operand operand) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kIsNull;
  p->references_ = OperandRefs(operand);
  p->hash_ = HashMix(0x6, HashOperand(operand));
  p->operands_.push_back(std::move(operand));
  return p;
}

TriBool Predicate::Eval(const Tuple& tuple, const Scheme& scheme) const {
  switch (kind_) {
    case Kind::kConst:
      return const_value_ ? TriBool::kTrue : TriBool::kFalse;
    case Kind::kCmp: {
      const Value& a = lhs().Resolve(tuple, scheme);
      const Value& b = rhs().Resolve(tuple, scheme);
      switch (cmp_op_) {
        case CmpOp::kEq:
          return SqlEq(a, b);
        case CmpOp::kNe:
          return SqlNe(a, b);
        case CmpOp::kLt:
          return SqlLt(a, b);
        case CmpOp::kLe:
          return SqlLe(a, b);
        case CmpOp::kGt:
          return SqlGt(a, b);
        case CmpOp::kGe:
          return SqlGe(a, b);
      }
      return TriBool::kUnknown;
    }
    case Kind::kAnd: {
      TriBool acc = TriBool::kTrue;
      for (const PredicatePtr& child : children_) {
        acc = TriAnd(acc, child->Eval(tuple, scheme));
        if (acc == TriBool::kFalse) break;
      }
      return acc;
    }
    case Kind::kOr: {
      TriBool acc = TriBool::kFalse;
      for (const PredicatePtr& child : children_) {
        acc = TriOr(acc, child->Eval(tuple, scheme));
        if (acc == TriBool::kTrue) break;
      }
      return acc;
    }
    case Kind::kNot:
      return TriNot(children_[0]->Eval(tuple, scheme));
    case Kind::kIsNull:
      return operand().Resolve(tuple, scheme).is_null() ? TriBool::kTrue
                                                        : TriBool::kFalse;
  }
  return TriBool::kUnknown;
}

namespace {

// --- Strength analysis: abstract interpretation --------------------------
//
// Abstract scalar: the operand is definitely null, a known literal, or
// unconstrained. Abstract boolean: the set of TriBool outcomes the
// subexpression may produce, as a 3-bit mask.

enum class AbsScalar : uint8_t { kDefNull, kLiteral, kAny };

constexpr uint8_t kMaskF = 1 << 0;
constexpr uint8_t kMaskU = 1 << 1;
constexpr uint8_t kMaskT = 1 << 2;
constexpr uint8_t kMaskAll = kMaskF | kMaskU | kMaskT;

uint8_t BitOf(TriBool b) {
  switch (b) {
    case TriBool::kFalse:
      return kMaskF;
    case TriBool::kUnknown:
      return kMaskU;
    case TriBool::kTrue:
      return kMaskT;
  }
  return kMaskU;
}

TriBool TriOfBit(uint8_t bit) {
  if (bit == kMaskF) return TriBool::kFalse;
  if (bit == kMaskU) return TriBool::kUnknown;
  return TriBool::kTrue;
}

// Applies a binary Kleene connective pointwise over outcome sets.
uint8_t Pointwise(uint8_t a, uint8_t b, TriBool (*op)(TriBool, TriBool)) {
  uint8_t out = 0;
  for (uint8_t i = 0; i < 3; ++i) {
    if ((a & (1 << i)) == 0) continue;
    for (uint8_t j = 0; j < 3; ++j) {
      if ((b & (1 << j)) == 0) continue;
      out |= BitOf(op(TriOfBit(1 << i), TriOfBit(1 << j)));
    }
  }
  return out;
}

struct AbsOperand {
  AbsScalar kind;
  const Value* literal = nullptr;  // set when kind == kLiteral
};

AbsOperand Abstract(const Operand& op, const AttrSet& nulled) {
  if (!op.is_column()) {
    if (op.literal().is_null()) return {AbsScalar::kDefNull, nullptr};
    return {AbsScalar::kLiteral, &op.literal()};
  }
  if (nulled.Contains(op.attr())) return {AbsScalar::kDefNull, nullptr};
  return {AbsScalar::kAny, nullptr};
}

uint8_t AbstractEval(const Predicate& p, const AttrSet& nulled) {
  switch (p.kind()) {
    case Predicate::Kind::kConst:
      return p.const_value() ? kMaskT : kMaskF;
    case Predicate::Kind::kCmp: {
      AbsOperand a = Abstract(p.lhs(), nulled);
      AbsOperand b = Abstract(p.rhs(), nulled);
      if (a.kind == AbsScalar::kDefNull || b.kind == AbsScalar::kDefNull) {
        // SQL comparison with a definite null is always Unknown.
        return kMaskU;
      }
      if (a.kind == AbsScalar::kLiteral && b.kind == AbsScalar::kLiteral) {
        // Evaluate exactly.
        Tuple empty;
        Scheme none;
        return BitOf(p.Eval(empty, none));
      }
      return kMaskAll;
    }
    case Predicate::Kind::kAnd: {
      uint8_t acc = kMaskT;
      for (const PredicatePtr& child : p.children()) {
        acc = Pointwise(acc, AbstractEval(*child, nulled), TriAnd);
      }
      return acc;
    }
    case Predicate::Kind::kOr: {
      uint8_t acc = kMaskF;
      for (const PredicatePtr& child : p.children()) {
        acc = Pointwise(acc, AbstractEval(*child, nulled), TriOr);
      }
      return acc;
    }
    case Predicate::Kind::kNot: {
      uint8_t inner = AbstractEval(*p.children()[0], nulled);
      uint8_t out = 0;
      for (uint8_t i = 0; i < 3; ++i) {
        if (inner & (1 << i)) out |= BitOf(TriNot(TriOfBit(1 << i)));
      }
      return out;
    }
    case Predicate::Kind::kIsNull: {
      AbsOperand a = Abstract(p.operand(), nulled);
      switch (a.kind) {
        case AbsScalar::kDefNull:
          return kMaskT;
        case AbsScalar::kLiteral:
          return kMaskF;
        case AbsScalar::kAny:
          return kMaskT | kMaskF;
      }
      return kMaskAll;
    }
  }
  return kMaskAll;
}

}  // namespace

bool Predicate::IsStrongWrt(const AttrSet& nulled) const {
  return (AbstractEval(*this, nulled) & kMaskT) == 0;
}

std::vector<PredicatePtr> Predicate::Conjuncts(const PredicatePtr& self) const {
  FRO_CHECK(self.get() == this);
  if (kind_ == Kind::kConst && const_value_) return {};
  if (kind_ != Kind::kAnd) return {self};
  return children_;
}

std::string Predicate::ToString(const Catalog* catalog) const {
  switch (kind_) {
    case Kind::kConst:
      return const_value_ ? "TRUE" : "FALSE";
    case Kind::kCmp:
      return lhs().ToString(catalog) + CmpOpSymbol(cmp_op_) +
             rhs().ToString(catalog);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString(catalog);
      }
      return out + ")";
    }
    case Kind::kNot:
      return "not(" + children_[0]->ToString(catalog) + ")";
    case Kind::kIsNull:
      return operand().ToString(catalog) + " is null";
  }
  return "?";
}

PredicatePtr EqCols(AttrId a, AttrId b) {
  return Predicate::Cmp(CmpOp::kEq, Operand::Column(a), Operand::Column(b));
}

PredicatePtr CmpCols(CmpOp op, AttrId a, AttrId b) {
  return Predicate::Cmp(op, Operand::Column(a), Operand::Column(b));
}

PredicatePtr CmpLit(CmpOp op, AttrId a, Value v) {
  return Predicate::Cmp(op, Operand::Column(a), Operand::Literal(std::move(v)));
}

PredicatePtr AndOf(PredicatePtr a, PredicatePtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Predicate::And({std::move(a), std::move(b)});
}

namespace {

bool OperandEquals(const Operand& a, const Operand& b) {
  if (a.is_column() != b.is_column()) return false;
  if (a.is_column()) return a.attr() == b.attr();
  return a.literal() == b.literal();
}

// Children sorted by hash so commutative nodes compare pairwise. A hash
// tie between structurally different siblings can only produce a false
// negative (callers then treat the predicates as distinct), never a false
// positive.
std::vector<const Predicate*> SortedByHash(
    const std::vector<PredicatePtr>& children) {
  std::vector<const Predicate*> out;
  out.reserve(children.size());
  for (const PredicatePtr& child : children) out.push_back(child.get());
  std::sort(out.begin(), out.end(),
            [](const Predicate* x, const Predicate* y) {
              return x->Hash() < y->Hash();
            });
  return out;
}

}  // namespace

bool PredEquals(const Predicate& a, const Predicate& b) {
  if (&a == &b) return true;
  if (a.kind() != b.kind() || a.Hash() != b.Hash()) return false;
  switch (a.kind()) {
    case Predicate::Kind::kConst:
      return a.const_value() == b.const_value();
    case Predicate::Kind::kCmp:
      return a.cmp_op() == b.cmp_op() && OperandEquals(a.lhs(), b.lhs()) &&
             OperandEquals(a.rhs(), b.rhs());
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      if (a.children().size() != b.children().size()) return false;
      std::vector<const Predicate*> lhs = SortedByHash(a.children());
      std::vector<const Predicate*> rhs = SortedByHash(b.children());
      for (size_t i = 0; i < lhs.size(); ++i) {
        if (!PredEquals(*lhs[i], *rhs[i])) return false;
      }
      return true;
    }
    case Predicate::Kind::kNot:
      return PredEquals(*a.children()[0], *b.children()[0]);
    case Predicate::Kind::kIsNull:
      return OperandEquals(a.operand(), b.operand());
  }
  return false;
}

// --- BoundPredicate ------------------------------------------------------

void BoundPredicate::Bind(const PredicatePtr& pred, const Scheme& scheme) {
  FRO_CHECK(pred != nullptr);
  nodes_.clear();
  Compile(*pred, scheme);
}

uint32_t BoundPredicate::Compile(const Predicate& pred,
                                 const Scheme& scheme) {
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[index];
    node.kind = pred.kind();
    switch (pred.kind()) {
      case Predicate::Kind::kConst:
        node.const_value = pred.const_value();
        break;
      case Predicate::Kind::kCmp:
      case Predicate::Kind::kIsNull: {
        node.op = pred.cmp_op();
        auto bind_operand = [&](const Operand& op, int* pos, Value* lit) {
          if (op.is_column()) {
            *pos = scheme.IndexOf(op.attr());
            FRO_CHECK_GE(*pos, 0)
                << "operand column " << op.attr() << " not in scheme";
          } else {
            *pos = -1;
            *lit = op.literal();
          }
        };
        bind_operand(pred.lhs(), &node.lhs_pos, &node.lhs_lit);
        if (pred.kind() == Predicate::Kind::kCmp) {
          bind_operand(pred.rhs(), &node.rhs_pos, &node.rhs_lit);
        }
        break;
      }
      case Predicate::Kind::kAnd:
      case Predicate::Kind::kOr:
      case Predicate::Kind::kNot:
        break;
    }
  }
  // Children recurse after the parent slot exists; re-fetch the node
  // afterwards because recursion may reallocate nodes_.
  std::vector<uint32_t> children;
  for (const PredicatePtr& child : pred.children()) {
    children.push_back(Compile(*child, scheme));
  }
  nodes_[index].children = std::move(children);
  return index;
}

TriBool BoundPredicate::EvalNode(uint32_t index, const Tuple& tuple) const {
  const Node& node = nodes_[index];
  switch (node.kind) {
    case Predicate::Kind::kConst:
      return node.const_value ? TriBool::kTrue : TriBool::kFalse;
    case Predicate::Kind::kCmp: {
      const Value& a = node.lhs_pos >= 0
                           ? tuple.value(static_cast<size_t>(node.lhs_pos))
                           : node.lhs_lit;
      const Value& b = node.rhs_pos >= 0
                           ? tuple.value(static_cast<size_t>(node.rhs_pos))
                           : node.rhs_lit;
      switch (node.op) {
        case CmpOp::kEq:
          return SqlEq(a, b);
        case CmpOp::kNe:
          return SqlNe(a, b);
        case CmpOp::kLt:
          return SqlLt(a, b);
        case CmpOp::kLe:
          return SqlLe(a, b);
        case CmpOp::kGt:
          return SqlGt(a, b);
        case CmpOp::kGe:
          return SqlGe(a, b);
      }
      return TriBool::kUnknown;
    }
    case Predicate::Kind::kAnd: {
      TriBool acc = TriBool::kTrue;
      for (uint32_t child : node.children) {
        acc = TriAnd(acc, EvalNode(child, tuple));
        if (acc == TriBool::kFalse) break;
      }
      return acc;
    }
    case Predicate::Kind::kOr: {
      TriBool acc = TriBool::kFalse;
      for (uint32_t child : node.children) {
        acc = TriOr(acc, EvalNode(child, tuple));
        if (acc == TriBool::kTrue) break;
      }
      return acc;
    }
    case Predicate::Kind::kNot:
      return TriNot(EvalNode(node.children[0], tuple));
    case Predicate::Kind::kIsNull:
      return (node.lhs_pos >= 0
                  ? tuple.value(static_cast<size_t>(node.lhs_pos))
                  : node.lhs_lit)
                     .is_null()
                 ? TriBool::kTrue
                 : TriBool::kFalse;
  }
  return TriBool::kUnknown;
}

// --- VectorPredicate -----------------------------------------------------

void VectorPredicate::Bind(const PredicatePtr& pred, const Scheme& scheme) {
  FRO_CHECK(pred != nullptr);
  nodes_.clear();
  col_positions_.clear();
  Compile(*pred, scheme);
  for (const Node& node : nodes_) {
    for (int pos : {node.lhs_pos, node.rhs_pos}) {
      if (pos >= 0 && std::find(col_positions_.begin(), col_positions_.end(),
                                pos) == col_positions_.end()) {
        col_positions_.push_back(pos);
      }
    }
  }
  true_masks_.resize(nodes_.size());
  false_masks_.resize(nodes_.size());
}

uint32_t VectorPredicate::Compile(const Predicate& pred,
                                  const Scheme& scheme) {
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[index];
    node.kind = pred.kind();
    switch (pred.kind()) {
      case Predicate::Kind::kConst:
        node.const_value = pred.const_value();
        break;
      case Predicate::Kind::kCmp:
      case Predicate::Kind::kIsNull: {
        node.op = pred.cmp_op();
        auto bind_operand = [&](const Operand& op, int* pos, Value* lit) {
          if (op.is_column()) {
            *pos = scheme.IndexOf(op.attr());
            FRO_CHECK_GE(*pos, 0)
                << "operand column " << op.attr() << " not in scheme";
          } else {
            *pos = -1;
            *lit = op.literal();
          }
        };
        bind_operand(pred.lhs(), &node.lhs_pos, &node.lhs_lit);
        if (pred.kind() == Predicate::Kind::kCmp) {
          bind_operand(pred.rhs(), &node.rhs_pos, &node.rhs_lit);
        }
        break;
      }
      case Predicate::Kind::kAnd:
      case Predicate::Kind::kOr:
      case Predicate::Kind::kNot:
        break;
    }
  }
  std::vector<uint32_t> children;
  for (const PredicatePtr& child : pred.children()) {
    children.push_back(Compile(*child, scheme));
  }
  nodes_[index].children = std::move(children);
  return index;
}

namespace {

// A comparison side lowered for the dense kernels: contiguous doubles
// (possibly a conversion/broadcast into scratch) plus an optional null
// mask.
struct DenseSide {
  const double* data = nullptr;
  const uint8_t* nulls = nullptr;  // nullptr = never null
};

enum class SideClass : uint8_t {
  kDense,       // numeric doubles ready for the tight loops
  kAllUnknown,  // null literal / all-null column: every outcome Unknown
  kGeneric,     // strings or mixed kinds: scalar fallback
};

SideClass ClassifySide(int pos, const Value& lit,
                       const ColumnVector* const* cols, size_t offset,
                       size_t n, std::vector<double>* scratch,
                       DenseSide* out) {
  if (pos < 0) {
    if (lit.is_null()) return SideClass::kAllUnknown;
    if (lit.kind() == Value::Kind::kString) return SideClass::kGeneric;
    scratch->assign(n, lit.NumericValue());
    out->data = scratch->data();
    out->nulls = nullptr;
    return SideClass::kDense;
  }
  const ColumnVector& col = *cols[pos];
  switch (col.tag()) {
    case ColumnVector::Tag::kEmpty:
      return SideClass::kAllUnknown;
    case ColumnVector::Tag::kGeneric:
      return SideClass::kGeneric;
    case ColumnVector::Tag::kDouble:
      out->data = col.doubles() + offset;
      out->nulls = col.null_mask() + offset;
      return SideClass::kDense;
    case ColumnVector::Tag::kInt: {
      scratch->resize(n);
      const int64_t* v = col.ints() + offset;
      double* d = scratch->data();
      for (size_t i = 0; i < n; ++i) d[i] = static_cast<double>(v[i]);
      out->data = scratch->data();
      out->nulls = col.null_mask() + offset;
      return SideClass::kDense;
    }
  }
  return SideClass::kGeneric;
}

TriBool SqlCmp(CmpOp op, const Value& a, const Value& b) {
  switch (op) {
    case CmpOp::kEq:
      return SqlEq(a, b);
    case CmpOp::kNe:
      return SqlNe(a, b);
    case CmpOp::kLt:
      return SqlLt(a, b);
    case CmpOp::kLe:
      return SqlLe(a, b);
    case CmpOp::kGt:
      return SqlGt(a, b);
    case CmpOp::kGe:
      return SqlGe(a, b);
  }
  return TriBool::kUnknown;
}

}  // namespace

void VectorPredicate::EvalCmp(const Node& node,
                              const ColumnVector* const* cols, size_t offset,
                              size_t n, uint8_t* t, uint8_t* f) {
  DenseSide lhs, rhs;
  const SideClass cl = ClassifySide(node.lhs_pos, node.lhs_lit, cols, offset,
                                    n, &lhs_scratch_, &lhs);
  const SideClass cr = ClassifySide(node.rhs_pos, node.rhs_lit, cols, offset,
                                    n, &rhs_scratch_, &rhs);
  if (cl == SideClass::kAllUnknown || cr == SideClass::kAllUnknown) {
    // Comparison with a definite null is Unknown on every row.
    std::memset(t, 0, n);
    std::memset(f, 0, n);
    return;
  }
  if (cl == SideClass::kDense && cr == SideClass::kDense) {
    const double* a = lhs.data;
    const double* b = rhs.data;
    // CompareSql derives its result from `<` and `>` alone (so NaN
    // compares "equal"); the kernels mirror that exactly rather than
    // using operator==.
    switch (node.op) {
      case CmpOp::kEq:
        for (size_t i = 0; i < n; ++i) {
          const uint8_t c = static_cast<uint8_t>(!(a[i] < b[i]) &
                                                 !(a[i] > b[i]));
          t[i] = c;
          f[i] = static_cast<uint8_t>(c ^ 1);
        }
        break;
      case CmpOp::kNe:
        for (size_t i = 0; i < n; ++i) {
          const uint8_t c =
              static_cast<uint8_t>((a[i] < b[i]) | (a[i] > b[i]));
          t[i] = c;
          f[i] = static_cast<uint8_t>(c ^ 1);
        }
        break;
      case CmpOp::kLt:
        for (size_t i = 0; i < n; ++i) {
          const uint8_t c = static_cast<uint8_t>(a[i] < b[i]);
          t[i] = c;
          f[i] = static_cast<uint8_t>(c ^ 1);
        }
        break;
      case CmpOp::kLe:
        for (size_t i = 0; i < n; ++i) {
          const uint8_t c = static_cast<uint8_t>(!(a[i] > b[i]));
          t[i] = c;
          f[i] = static_cast<uint8_t>(c ^ 1);
        }
        break;
      case CmpOp::kGt:
        for (size_t i = 0; i < n; ++i) {
          const uint8_t c = static_cast<uint8_t>(a[i] > b[i]);
          t[i] = c;
          f[i] = static_cast<uint8_t>(c ^ 1);
        }
        break;
      case CmpOp::kGe:
        for (size_t i = 0; i < n; ++i) {
          const uint8_t c = static_cast<uint8_t>(!(a[i] < b[i]));
          t[i] = c;
          f[i] = static_cast<uint8_t>(c ^ 1);
        }
        break;
    }
    // Null rows demote to Unknown after the fact: a branch-free mask
    // application instead of a branch inside the compare loop.
    if (lhs.nulls != nullptr) {
      const uint8_t* nm = lhs.nulls;
      for (size_t i = 0; i < n; ++i) {
        const uint8_t k = static_cast<uint8_t>(nm[i] == 0);
        t[i] &= k;
        f[i] &= k;
      }
    }
    if (rhs.nulls != nullptr) {
      const uint8_t* nm = rhs.nulls;
      for (size_t i = 0; i < n; ++i) {
        const uint8_t k = static_cast<uint8_t>(nm[i] == 0);
        t[i] &= k;
        f[i] &= k;
      }
    }
    return;
  }
  // Scalar fallback: at least one side is generic storage. Values are
  // fetched by reference where stored (generic arrays, literals) and via
  // a per-row temporary for typed columns.
  Value tmp_a, tmp_b;
  auto fetch = [&](int pos, const Value& lit, size_t i,
                   Value* tmp) -> const Value* {
    if (pos < 0) return &lit;
    const ColumnVector& col = *cols[pos];
    if (col.tag() == ColumnVector::Tag::kGeneric) {
      return &col.generic()[offset + i];
    }
    *tmp = col.ValueAt(offset + i);
    return tmp;
  };
  for (size_t i = 0; i < n; ++i) {
    const Value* a = fetch(node.lhs_pos, node.lhs_lit, i, &tmp_a);
    const Value* b = fetch(node.rhs_pos, node.rhs_lit, i, &tmp_b);
    const TriBool r = SqlCmp(node.op, *a, *b);
    t[i] = static_cast<uint8_t>(r == TriBool::kTrue);
    f[i] = static_cast<uint8_t>(r == TriBool::kFalse);
  }
}

void VectorPredicate::EvalNode(uint32_t index,
                               const ColumnVector* const* cols, size_t offset,
                               size_t n) {
  const Node& node = nodes_[index];
  true_masks_[index].resize(n);
  false_masks_[index].resize(n);
  uint8_t* t = true_masks_[index].data();
  uint8_t* f = false_masks_[index].data();
  switch (node.kind) {
    case Predicate::Kind::kConst:
      std::memset(t, node.const_value ? 1 : 0, n);
      std::memset(f, node.const_value ? 0 : 1, n);
      break;
    case Predicate::Kind::kCmp:
      EvalCmp(node, cols, offset, n, t, f);
      break;
    case Predicate::Kind::kAnd:
      // Kleene AND over masks: True iff all True, False iff any False.
      // No short-circuit — the connectives are total functions, so full
      // evaluation matches the row engine's early-out exactly.
      for (size_t c = 0; c < node.children.size(); ++c) {
        const uint32_t child = node.children[c];
        EvalNode(child, cols, offset, n);
        const uint8_t* ct = true_masks_[child].data();
        const uint8_t* cf = false_masks_[child].data();
        if (c == 0) {
          std::memcpy(t, ct, n);
          std::memcpy(f, cf, n);
        } else {
          for (size_t i = 0; i < n; ++i) t[i] &= ct[i];
          for (size_t i = 0; i < n; ++i) f[i] |= cf[i];
        }
      }
      break;
    case Predicate::Kind::kOr:
      for (size_t c = 0; c < node.children.size(); ++c) {
        const uint32_t child = node.children[c];
        EvalNode(child, cols, offset, n);
        const uint8_t* ct = true_masks_[child].data();
        const uint8_t* cf = false_masks_[child].data();
        if (c == 0) {
          std::memcpy(t, ct, n);
          std::memcpy(f, cf, n);
        } else {
          for (size_t i = 0; i < n; ++i) t[i] |= ct[i];
          for (size_t i = 0; i < n; ++i) f[i] &= cf[i];
        }
      }
      break;
    case Predicate::Kind::kNot: {
      const uint32_t child = node.children[0];
      EvalNode(child, cols, offset, n);
      std::memcpy(t, false_masks_[child].data(), n);
      std::memcpy(f, true_masks_[child].data(), n);
      break;
    }
    case Predicate::Kind::kIsNull:
      if (node.lhs_pos < 0) {
        const uint8_t is_null = node.lhs_lit.is_null() ? 1 : 0;
        std::memset(t, is_null, n);
        std::memset(f, is_null ^ 1, n);
      } else {
        const uint8_t* nm = cols[node.lhs_pos]->null_mask() + offset;
        for (size_t i = 0; i < n; ++i) {
          const uint8_t is_null = static_cast<uint8_t>(nm[i] != 0);
          t[i] = is_null;
          f[i] = static_cast<uint8_t>(is_null ^ 1);
        }
      }
      break;
  }
}

void VectorPredicate::Eval(const ColumnVector* const* cols, size_t offset,
                           size_t n, uint8_t* out_true, uint8_t* out_false) {
  FRO_CHECK(bound());
  if (n == 0) return;
  EvalNode(0, cols, offset, n);
  if (out_true != nullptr) {
    std::memcpy(out_true, true_masks_[0].data(), n);
  }
  if (out_false != nullptr) {
    std::memcpy(out_false, false_masks_[0].data(), n);
  }
}

}  // namespace fro
