#include "relational/schema.h"

#include <algorithm>

#include "common/check.h"

namespace fro {

AttrSet::AttrSet(std::vector<AttrId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool AttrSet::Contains(AttrId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool AttrSet::ContainsAll(const AttrSet& other) const {
  return std::includes(ids_.begin(), ids_.end(), other.ids_.begin(),
                       other.ids_.end());
}

bool AttrSet::Overlaps(const AttrSet& other) const {
  auto it = ids_.begin();
  auto jt = other.ids_.begin();
  while (it != ids_.end() && jt != other.ids_.end()) {
    if (*it == *jt) return true;
    if (*it < *jt) {
      ++it;
    } else {
      ++jt;
    }
  }
  return false;
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  std::vector<AttrId> out;
  out.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out));
  AttrSet result;
  result.ids_ = std::move(out);
  return result;
}

AttrSet AttrSet::Intersect(const AttrSet& other) const {
  std::vector<AttrId> out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out));
  AttrSet result;
  result.ids_ = std::move(out);
  return result;
}

AttrSet AttrSet::Subtract(const AttrSet& other) const {
  std::vector<AttrId> out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out));
  AttrSet result;
  result.ids_ = std::move(out);
  return result;
}

void AttrSet::Insert(AttrId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

Scheme::Scheme(std::vector<AttrId> cols) : cols_(std::move(cols)) {
  for (size_t i = 0; i < cols_.size(); ++i) {
    auto [it, inserted] = index_.emplace(cols_[i], static_cast<int>(i));
    FRO_CHECK(inserted) << "duplicate attribute " << cols_[i] << " in scheme";
  }
}

int Scheme::IndexOf(AttrId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : it->second;
}

Scheme Scheme::Concat(const Scheme& other) const {
  std::vector<AttrId> cols = cols_;
  cols.insert(cols.end(), other.cols_.begin(), other.cols_.end());
  return Scheme(std::move(cols));  // ctor checks disjointness
}

AttrSet Scheme::ToAttrSet() const { return AttrSet(cols_); }

Result<RelId> Catalog::RegisterRelation(const std::string& name) {
  if (rel_by_name_.count(name) > 0) {
    return InvalidArgument("relation already registered: " + name);
  }
  RelId id = static_cast<RelId>(rel_names_.size());
  rel_names_.push_back(name);
  rel_attrs_.emplace_back();
  rel_by_name_.emplace(name, id);
  return id;
}

Result<AttrId> Catalog::RegisterAttr(RelId rel, const std::string& attr_name) {
  if (rel >= rel_names_.size()) {
    return InvalidArgument("unknown relation id");
  }
  std::string qualified = rel_names_[rel] + "." + attr_name;
  if (attr_by_name_.count(qualified) > 0) {
    return InvalidArgument("attribute already registered: " + qualified);
  }
  AttrId id = static_cast<AttrId>(attr_names_.size());
  attr_names_.push_back(qualified);
  attr_rel_.push_back(rel);
  rel_attrs_[rel].push_back(id);
  attr_by_name_.emplace(std::move(qualified), id);
  return id;
}

Result<RelId> Catalog::FindRelation(const std::string& name) const {
  auto it = rel_by_name_.find(name);
  if (it == rel_by_name_.end()) return NotFound("relation " + name);
  return it->second;
}

Result<AttrId> Catalog::FindAttr(const std::string& rel_name,
                                 const std::string& attr_name) const {
  auto it = attr_by_name_.find(rel_name + "." + attr_name);
  if (it == attr_by_name_.end()) {
    return NotFound("attribute " + rel_name + "." + attr_name);
  }
  return it->second;
}

const std::string& Catalog::RelationName(RelId rel) const {
  FRO_CHECK(rel < rel_names_.size());
  return rel_names_[rel];
}

const std::string& Catalog::AttrName(AttrId id) const {
  FRO_CHECK(id < attr_names_.size());
  return attr_names_[id];
}

RelId Catalog::AttrRelation(AttrId id) const {
  FRO_CHECK(id < attr_rel_.size());
  return attr_rel_[id];
}

const std::vector<AttrId>& Catalog::RelationAttrs(RelId rel) const {
  FRO_CHECK(rel < rel_attrs_.size());
  return rel_attrs_[rel];
}

}  // namespace fro
