#include "relational/relation.h"

#include <algorithm>

#include "common/check.h"

namespace fro {

Relation::Relation(Scheme scheme, std::vector<Tuple> rows)
    : scheme_(std::move(scheme)), rows_(std::move(rows)) {
  for (const Tuple& row : rows_) {
    FRO_CHECK_EQ(row.arity(), scheme_.size());
  }
}

void Relation::AddRow(Tuple row) {
  FRO_CHECK_EQ(row.arity(), scheme_.size())
      << "row arity does not match scheme";
  rows_.push_back(std::move(row));
}

const Value& Relation::ValueOf(size_t i, AttrId attr) const {
  int pos = scheme_.IndexOf(attr);
  FRO_CHECK_GE(pos, 0) << "attribute not in scheme";
  return rows_[i].value(static_cast<size_t>(pos));
}

std::string Relation::ToString(const Catalog* catalog) const {
  std::string out = "[";
  for (size_t c = 0; c < scheme_.size(); ++c) {
    if (c > 0) out += ", ";
    out += catalog != nullptr ? catalog->AttrName(scheme_.col(c))
                              : "#" + std::to_string(scheme_.col(c));
  }
  out += "]\n";
  for (const Tuple& row : rows_) {
    out += "  " + row.ToString() + "\n";
  }
  return out;
}

Relation PadToScheme(const Relation& rel, const Scheme& target) {
  // Mapping from target column to source column (-1 = pad with null).
  std::vector<int> source(target.size(), -1);
  for (size_t c = 0; c < target.size(); ++c) {
    source[c] = rel.scheme().IndexOf(target.col(c));
  }
  for (AttrId id : rel.scheme().cols()) {
    FRO_CHECK(target.Contains(id))
        << "PadToScheme: target scheme missing attribute " << id;
  }
  Relation out(target);
  out.Reserve(rel.NumRows());
  for (const Tuple& row : rel.rows()) {
    std::vector<Value> values(target.size());
    for (size_t c = 0; c < target.size(); ++c) {
      if (source[c] >= 0) values[c] = row.value(static_cast<size_t>(source[c]));
    }
    out.AddRow(Tuple(std::move(values)));
  }
  return out;
}

Scheme UnionScheme(const Relation& a, const Relation& b) {
  AttrSet all = a.scheme().ToAttrSet().Union(b.scheme().ToAttrSet());
  return Scheme(all.ids());
}

Relation BagUnionPadded(const Relation& a, const Relation& b) {
  Scheme target = UnionScheme(a, b);
  Relation pa = PadToScheme(a, target);
  Relation pb = PadToScheme(b, target);
  Relation out(target);
  out.Reserve(pa.NumRows() + pb.NumRows());
  for (const Tuple& row : pa.rows()) out.AddRow(row);
  for (const Tuple& row : pb.rows()) out.AddRow(row);
  return out;
}

namespace {

std::vector<Tuple> SortedPaddedRows(const Relation& rel,
                                    const Scheme& target) {
  Relation padded = PadToScheme(rel, target);
  std::vector<Tuple> rows = padded.rows();
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

bool BagEquals(const Relation& a, const Relation& b) {
  if (a.NumRows() != b.NumRows()) return false;
  Scheme target = UnionScheme(a, b);
  return SortedPaddedRows(a, target) == SortedPaddedRows(b, target);
}

std::string CanonicalString(const Relation& rel, const Catalog* catalog) {
  Scheme canonical(rel.scheme().ToAttrSet().ids());
  std::vector<Tuple> rows = SortedPaddedRows(rel, canonical);
  Relation sorted(canonical, std::move(rows));
  return sorted.ToString(catalog);
}

}  // namespace fro
