// A single attribute value: NULL, 64-bit integer, double, or string.

#ifndef FRO_RELATIONAL_VALUE_H_
#define FRO_RELATIONAL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "relational/tribool.h"

namespace fro {

/// An attribute value. Values are immutable once constructed.
///
/// Two notions of comparison coexist:
///  * `Value::Equals` / `operator==` is *structural* identity (null equals
///    null); it is what bag semantics, hashing, and duplicate elimination
///    use.
///  * `CompareSql` implements SQL semantics: any comparison involving a
///    null is Unknown. Predicates use this.
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kInt, kDouble, kString };

  /// Constructs NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }

  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric reading of an int or double value (ints widen losslessly for
  /// the magnitudes this library uses).
  double NumericValue() const;

  /// Structural equality: null == null, 1 != 1.0 ("int" and "double" are
  /// distinct kinds even when numerically equal).
  bool Equals(const Value& other) const { return rep_ == other.rep_; }
  bool operator==(const Value& other) const { return Equals(other); }

  /// Structural total order (by kind, then value); used for canonical row
  /// sorting in bag comparison and printing.
  bool operator<(const Value& other) const;

  size_t Hash() const;

  /// SQL comparison: nullopt when either side is null or the kinds are not
  /// comparable (string vs numeric); otherwise <0 / 0 / >0.
  static std::optional<int> CompareSql(const Value& a, const Value& b);

  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// SQL comparison outcomes as TriBool (Unknown on null / incomparable).
TriBool SqlEq(const Value& a, const Value& b);
TriBool SqlNe(const Value& a, const Value& b);
TriBool SqlLt(const Value& a, const Value& b);
TriBool SqlLe(const Value& a, const Value& b);
TriBool SqlGt(const Value& a, const Value& b);
TriBool SqlGe(const Value& a, const Value& b);

}  // namespace fro

#endif  // FRO_RELATIONAL_VALUE_H_
