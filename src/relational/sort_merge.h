// Sort-merge implementations of the join-like operators, for predicates
// with at least one column=column equality conjunct. A third physical
// strategy alongside nested loop and hash (ops.h); all three agree
// exactly on semantics (null keys never match; the full predicate is
// re-checked on every candidate pair).

#ifndef FRO_RELATIONAL_SORT_MERGE_H_
#define FRO_RELATIONAL_SORT_MERGE_H_

#include "relational/ops.h"

namespace fro {

/// Sort-merge join. The predicate must contain at least one equi-key
/// conjunct across the operands (CHECK-enforced).
Relation SortMergeJoin(const Relation& left, const Relation& right,
                       const PredicatePtr& pred, KernelStats* stats);

/// Sort-merge left outer join (left preserved).
Relation SortMergeLeftOuterJoin(const Relation& left, const Relation& right,
                                const PredicatePtr& pred,
                                KernelStats* stats);

/// Sort-merge antijoin (left tuples without a match; output scheme =
/// left's).
Relation SortMergeAntijoin(const Relation& left, const Relation& right,
                           const PredicatePtr& pred, KernelStats* stats);

/// Sort-merge semijoin (left tuples with a match, once).
Relation SortMergeSemijoin(const Relation& left, const Relation& right,
                           const PredicatePtr& pred, KernelStats* stats);

}  // namespace fro

#endif  // FRO_RELATIONAL_SORT_MERGE_H_
