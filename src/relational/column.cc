#include "relational/column.h"

#include "common/check.h"
#include "relational/relation.h"

namespace fro {

void ColumnVector::Demote() {
  // Rebuild the generic array from whichever typed array was live. Null
  // rows become Value::Null(); the typed placeholder is discarded.
  vals_.clear();
  vals_.reserve(nulls_.size());
  for (size_t i = 0; i < nulls_.size(); ++i) {
    if (nulls_[i]) {
      vals_.push_back(Value::Null());
    } else if (tag_ == Tag::kInt) {
      vals_.push_back(Value::Int(ints_[i]));
    } else {
      vals_.push_back(Value::Double(dbls_[i]));
    }
  }
  ints_.clear();
  dbls_.clear();
  tag_ = Tag::kGeneric;
}

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  const Value::Kind kind = v.kind();
  switch (tag_) {
    case Tag::kEmpty:
      // First non-null value decides the layout; backfill placeholders
      // for the all-null prefix.
      if (kind == Value::Kind::kInt) {
        tag_ = Tag::kInt;
        ints_.assign(nulls_.size(), 0);
        ints_.push_back(v.AsInt());
      } else if (kind == Value::Kind::kDouble) {
        tag_ = Tag::kDouble;
        dbls_.assign(nulls_.size(), 0.0);
        dbls_.push_back(v.AsDouble());
      } else {
        tag_ = Tag::kGeneric;
        vals_.assign(nulls_.size(), Value::Null());
        vals_.push_back(v);
      }
      break;
    case Tag::kInt:
      if (kind == Value::Kind::kInt) {
        ints_.push_back(v.AsInt());
      } else {
        Demote();
        vals_.push_back(v);
      }
      break;
    case Tag::kDouble:
      if (kind == Value::Kind::kDouble) {
        dbls_.push_back(v.AsDouble());
      } else {
        Demote();
        vals_.push_back(v);
      }
      break;
    case Tag::kGeneric:
      vals_.push_back(v);
      break;
  }
  nulls_.push_back(0);
}

void ColumnVector::AppendNull() {
  switch (tag_) {
    case Tag::kEmpty:
      break;
    case Tag::kInt:
      ints_.push_back(0);
      break;
    case Tag::kDouble:
      dbls_.push_back(0.0);
      break;
    case Tag::kGeneric:
      vals_.push_back(Value::Null());
      break;
  }
  nulls_.push_back(1);
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.nulls_[i]) {
    AppendNull();
    return;
  }
  if (tag_ == src.tag_) {
    switch (tag_) {
      case Tag::kInt:
        ints_.push_back(src.ints_[i]);
        nulls_.push_back(0);
        return;
      case Tag::kDouble:
        dbls_.push_back(src.dbls_[i]);
        nulls_.push_back(0);
        return;
      case Tag::kGeneric:
        vals_.push_back(src.vals_[i]);
        nulls_.push_back(0);
        return;
      case Tag::kEmpty:
        break;  // unreachable: a non-null row implies a decided tag
    }
  }
  Append(src.ValueAt(i));
}

void ColumnVector::AppendGather(const ColumnVector& src, const uint32_t* idx,
                                size_t n) {
  if (n == 0) return;
  // Fast path: typed source into a destination that already has (or can
  // freshly adopt) the same tag. An all-null destination prefix (kEmpty
  // with rows) needs Append()'s placeholder backfill, so it falls
  // through to the scalar loop, as do generic and mismatched columns.
  if ((src.tag_ == Tag::kInt || src.tag_ == Tag::kDouble) &&
      (tag_ == src.tag_ || (tag_ == Tag::kEmpty && nulls_.empty()))) {
    const size_t base = nulls_.size();
    nulls_.resize(base + n);
    tag_ = src.tag_;
    if (tag_ == Tag::kInt) {
      ints_.resize(base + n);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t j = idx[i];
        const bool pad = j == kNullIndex;
        ints_[base + i] = pad ? 0 : src.ints_[j];
        nulls_[base + i] = pad ? 1 : src.nulls_[j];
      }
    } else {
      dbls_.resize(base + n);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t j = idx[i];
        const bool pad = j == kNullIndex;
        dbls_[base + i] = pad ? 0.0 : src.dbls_[j];
        nulls_[base + i] = pad ? 1 : src.nulls_[j];
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (idx[i] == kNullIndex) {
      AppendNull();
    } else {
      AppendFrom(src, idx[i]);
    }
  }
}

Value ColumnVector::ValueAt(size_t i) const {
  if (nulls_[i]) return Value::Null();
  switch (tag_) {
    case Tag::kInt:
      return Value::Int(ints_[i]);
    case Tag::kDouble:
      return Value::Double(dbls_[i]);
    case Tag::kGeneric:
      return vals_[i];
    case Tag::kEmpty:
      break;  // unreachable: kEmpty columns are all null
  }
  return Value::Null();
}

RelationColumns::RelationColumns(const Relation* relation)
    : relation_(relation),
      slots_(new Slot[relation->scheme().size()]) {}

const ColumnVector& RelationColumns::Column(size_t pos) const {
  FRO_CHECK(pos < relation_->scheme().size());
  Slot& slot = slots_[pos];
  if (!slot.ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!slot.ready.load(std::memory_order_relaxed)) {
      const std::vector<Tuple>& rows = relation_->rows();
      slot.column.Reserve(rows.size());
      for (const Tuple& row : rows) slot.column.Append(row.value(pos));
      slot.ready.store(true, std::memory_order_release);
    }
  }
  return slot.column;
}

bool HashColumns(const std::vector<const ColumnVector*>& cols, size_t offset,
                 size_t n, double* out_keys, uint64_t* out_hashes,
                 uint8_t* out_has_key) {
  for (const ColumnVector* col : cols) {
    if (col->tag() == ColumnVector::Tag::kGeneric) return false;
  }
  bool first = true;
  for (const ColumnVector* col : cols) {
    const uint8_t* nulls = col->null_mask() + offset;
    if (col->tag() == ColumnVector::Tag::kEmpty) {
      // All-null key column: no row has a key. (kEmpty has no value
      // array to read, so handle it before the typed loops.)
      for (size_t i = 0; i < n; ++i) out_has_key[i] = 0;
      return true;
    }
    if (first) {
      for (size_t i = 0; i < n; ++i) out_has_key[i] = !nulls[i];
    } else {
      for (size_t i = 0; i < n; ++i) out_has_key[i] &= !nulls[i];
    }
    // Separate tight loops per tag so each body is a contiguous
    // load/normalize/hash chain the compiler can vectorize.
    if (col->tag() == ColumnVector::Tag::kInt) {
      const int64_t* v = col->ints() + offset;
      for (size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(v[i]);
        const double key = d == 0.0 ? 0.0 : d;
        const uint64_t h = HashNumericKey(key);
        if (out_keys != nullptr) out_keys[i] = key;
        out_hashes[i] = first ? h : (out_hashes[i] * 0x100000001B3ull) ^ h;
      }
    } else {
      const double* v = col->doubles() + offset;
      for (size_t i = 0; i < n; ++i) {
        const double key = v[i] == 0.0 ? 0.0 : v[i];
        const uint64_t h = HashNumericKey(key);
        if (out_keys != nullptr) out_keys[i] = key;
        out_hashes[i] = first ? h : (out_hashes[i] * 0x100000001B3ull) ^ h;
      }
    }
    first = false;
  }
  if (first) {
    // No key columns at all: treat as "no key" everywhere.
    for (size_t i = 0; i < n; ++i) out_has_key[i] = 0;
  }
  return true;
}

}  // namespace fro
