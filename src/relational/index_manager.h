// Persistent hash indexes over base relations.
//
// Example 1 of the paper "assume[s] that these keys have indexes"; the
// manager makes that literal: indexes are built once and reused across
// query executions instead of being rebuilt per hash join. The evaluator
// consults the manager whenever a join-like operator's inner input is a
// base relation whose equi-key columns are indexed.

#ifndef FRO_RELATIONAL_INDEX_MANAGER_H_
#define FRO_RELATIONAL_INDEX_MANAGER_H_

#include <memory>
#include <vector>

#include "relational/database.h"
#include "relational/index.h"

namespace fro {

class IndexManager {
 public:
  IndexManager() = default;
  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Builds (or rebuilds) an index on `rel`'s `key_attrs`. Key values are
  /// normalized (int widened to double) so probes agree with SQL
  /// equality. The database contents are snapshotted: call again after
  /// mutating the relation.
  void CreateIndex(const Database& db, RelId rel,
                   std::vector<AttrId> key_attrs);

  /// An index on `rel` whose key set equals `key_attrs`
  /// (order-insensitive), or null.
  const HashIndex* Find(RelId rel,
                        const std::vector<AttrId>& key_attrs) const;

  size_t num_indexes() const { return entries_.size(); }

 private:
  struct Entry {
    RelId rel;
    std::vector<AttrId> sorted_keys;
    Relation normalized;  // owns the rows the index points into
    std::unique_ptr<HashIndex> index;
  };
  std::vector<Entry> entries_;
};

}  // namespace fro

#endif  // FRO_RELATIONAL_INDEX_MANAGER_H_
