// Persistent indexes over base relations.
//
// Example 1 of the paper "assume[s] that these keys have indexes"; the
// manager makes that literal: indexes are built once and reused across
// query executions instead of being rebuilt per hash join. The evaluator
// consults the manager whenever a join-like operator's inner input is a
// base relation whose equi-key columns are indexed.
//
// Every entry snapshots the relation's mutation generation
// (Database::generation) at build time; lookups take the database and
// refuse to serve an entry whose snapshot is stale, so a mutation can
// never silently answer queries with pre-mutation rows. Call Refresh (or
// CreateIndex again) after mutating to rebuild.
//
// Besides hash indexes the manager caches trie indexes (sorted
// multi-level indexes for the leapfrog multiway join). The trie type
// lives in src/wcoj/, a layer above this one, so entries hold it through
// the opaque TrieIndexBase interface.

#ifndef FRO_RELATIONAL_INDEX_MANAGER_H_
#define FRO_RELATIONAL_INDEX_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "relational/database.h"
#include "relational/index.h"

namespace fro {

/// Opaque base for trie indexes built by the wcoj layer and cached here.
/// The manager owns them but never looks inside; consumers downcast to
/// the concrete type they registered.
class TrieIndexBase {
 public:
  virtual ~TrieIndexBase() = default;
  /// Number of (non-null-key) rows indexed, for introspection.
  virtual size_t num_rows() const = 0;
};

/// One row of ListIndexes(), for the shell's \indexes command.
struct IndexInfo {
  RelId rel = 0;
  std::vector<AttrId> key_attrs;  // trie: level order; hash: as created
  bool is_trie = false;
  size_t rows = 0;
  uint64_t generation = 0;
  bool stale = false;  // vs. the database passed to ListIndexes
};

class IndexManager {
 public:
  IndexManager() = default;
  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Builds (or rebuilds) a hash index on `rel`'s `key_attrs`. Key values
  /// are normalized (int widened to double) so probes agree with SQL
  /// equality. The database contents are snapshotted at the relation's
  /// current generation.
  void CreateIndex(const Database& db, RelId rel,
                   std::vector<AttrId> key_attrs);

  /// A fresh hash index on `rel` whose key set equals `key_attrs`
  /// (order-insensitive), or null. Entries built before the relation's
  /// latest mutation are stale and never returned.
  const HashIndex* Find(const Database& db, RelId rel,
                        const std::vector<AttrId>& key_attrs) const;

  /// Adopts a trie index built by the wcoj layer, keyed by `rel` and the
  /// exact level order `key_attrs`. Replaces an existing trie entry on
  /// the same (rel, order).
  void AdoptTrie(const Database& db, RelId rel,
                 std::vector<AttrId> key_attrs,
                 std::unique_ptr<TrieIndexBase> trie);

  /// A fresh trie on `rel` with exactly this level order, or null (absent
  /// or stale — level order is significant for tries).
  const TrieIndexBase* FindTrie(const Database& db, RelId rel,
                                const std::vector<AttrId>& key_attrs) const;

  /// Rebuilds every stale hash entry against the current database
  /// contents and drops stale tries (the wcoj layer rebuilds its own).
  /// Returns the number of entries refreshed or dropped.
  size_t Refresh(const Database& db);

  /// Snapshot of every entry, staleness judged against `db`.
  std::vector<IndexInfo> ListIndexes(const Database& db) const;

  size_t num_indexes() const { return entries_.size(); }

 private:
  struct Entry {
    RelId rel;
    std::vector<AttrId> keys;         // creation/level order
    std::vector<AttrId> sorted_keys;  // hash entries match on this
    uint64_t generation = 0;
    Relation normalized;  // owns the rows the hash index points into
    std::unique_ptr<HashIndex> index;     // hash entries
    std::unique_ptr<TrieIndexBase> trie;  // trie entries
    bool is_trie() const { return trie != nullptr; }
  };
  std::vector<Entry> entries_;
};

}  // namespace fro

#endif  // FRO_RELATIONAL_INDEX_MANAGER_H_
