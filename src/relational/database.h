// A database: a catalog plus the ground relations' contents.

#ifndef FRO_RELATIONAL_DATABASE_H_
#define FRO_RELATIONAL_DATABASE_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"

namespace fro {

/// Owns the catalog and one Relation per registered ground relation.
/// RelIds index into both.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers a relation with the given column names and an empty body.
  /// Returns its RelId.
  Result<RelId> AddRelation(const std::string& name,
                            const std::vector<std::string>& column_names);

  /// Registers a copy of `source` under `new_name` with renamed (freshly
  /// qualified) attributes and the same rows — the paper's "several
  /// copies of the same relation with renamed attributes" device for
  /// self-joins.
  Result<RelId> CloneRelation(RelId source, const std::string& new_name);

  /// Replaces the body of a relation. The rows' arity must match.
  void SetRows(RelId rel, std::vector<Tuple> rows);
  void AddRow(RelId rel, std::vector<Value> values);

  const Relation& relation(RelId rel) const;
  Relation* mutable_relation(RelId rel);
  const Scheme& scheme(RelId rel) const { return relation(rel).scheme(); }

  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }
  size_t num_relations() const { return relations_.size(); }

  /// Looks up attribute `rel_name.attr_name`; CHECK-fails if absent (this
  /// is the test/example convenience accessor).
  AttrId Attr(const std::string& rel_name, const std::string& attr_name) const;
  /// Looks up a relation id by name; CHECK-fails if absent.
  RelId Rel(const std::string& name) const;

 private:
  Catalog catalog_;
  std::vector<Relation> relations_;
};

}  // namespace fro

#endif  // FRO_RELATIONAL_DATABASE_H_
