// A database: a catalog plus the ground relations' contents.

#ifndef FRO_RELATIONAL_DATABASE_H_
#define FRO_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace fro {

/// Owns the catalog and one Relation per registered ground relation.
/// RelIds index into both.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers a relation with the given column names and an empty body.
  /// Returns its RelId.
  Result<RelId> AddRelation(const std::string& name,
                            const std::vector<std::string>& column_names);

  /// Registers a copy of `source` under `new_name` with renamed (freshly
  /// qualified) attributes and the same rows — the paper's "several
  /// copies of the same relation with renamed attributes" device for
  /// self-joins.
  Result<RelId> CloneRelation(RelId source, const std::string& new_name);

  /// Replaces the body of a relation. The rows' arity must match.
  void SetRows(RelId rel, std::vector<Tuple> rows);
  void AddRow(RelId rel, std::vector<Value> values);

  const Relation& relation(RelId rel) const;
  Relation* mutable_relation(RelId rel);
  const Scheme& scheme(RelId rel) const { return relation(rel).scheme(); }

  /// Monotone per-relation mutation counter: bumped by SetRows, AddRow,
  /// and every mutable_relation() handout. Index structures snapshot the
  /// generation they were built at so stale snapshots are detectable
  /// (IndexManager refuses to serve them).
  uint64_t generation(RelId rel) const;

  /// Lazily-columnized mirror of `rel`'s rows, built on first request
  /// and shared by every scan over this database afterwards — the
  /// transpose is paid once per relation, not once per plan build.
  /// Thread-safe against concurrent CachedColumns calls (concurrent
  /// queries); mutating the relation through this Database's API drops
  /// the cached mirror, under the usual contract that mutation does not
  /// race query execution (scans already hold `rows()` by reference).
  std::shared_ptr<RelationColumns> CachedColumns(RelId rel) const;

  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }
  size_t num_relations() const { return relations_.size(); }

  /// Looks up attribute `rel_name.attr_name`; CHECK-fails if absent (this
  /// is the test/example convenience accessor).
  AttrId Attr(const std::string& rel_name, const std::string& attr_name) const;
  /// Looks up a relation id by name; CHECK-fails if absent.
  RelId Rel(const std::string& name) const;

 private:
  /// Forgets cached column mirrors: the affected slot on row mutation,
  /// every slot when relations_ may have reallocated (AddRelation).
  void InvalidateColumns(RelId rel);
  void InvalidateAllColumns();

  Catalog catalog_;
  std::vector<Relation> relations_;
  /// Parallel to relations_: mutation generation per relation.
  std::vector<uint64_t> generations_;
  /// Parallel to relations_. Mirrors hold `const Relation*` into
  /// relations_, which stays stable under Database moves (the vector's
  /// heap buffer moves wholesale) but not under AddRelation
  /// reallocation — hence InvalidateAllColumns there.
  mutable std::vector<std::shared_ptr<RelationColumns>> columns_cache_;
};

}  // namespace fro

#endif  // FRO_RELATIONAL_DATABASE_H_
