// Tuples: positional value vectors interpreted against a Scheme.

#ifndef FRO_RELATIONAL_TUPLE_H_
#define FRO_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace fro {

/// A tuple is a row of values positionally aligned with some Scheme. The
/// scheme is carried by the enclosing Relation (or passed alongside) rather
/// than stored per row.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  /// All-null tuple of the given arity (the paper's null_S).
  static Tuple Nulls(size_t arity) {
    return Tuple(std::vector<Value>(arity));
  }

  size_t arity() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Concatenation (t1, t2) from the paper.
  Tuple Concat(const Tuple& other) const;

  /// In-place assignment helpers for the batch executor: they overwrite
  /// this tuple's values while reusing its existing storage, so writing
  /// into a recycled batch slot performs no allocation once the slot has
  /// reached its steady-state arity.
  void AssignFrom(const Tuple& other) { values_ = other.values_; }
  /// this := (a, b). Neither operand may alias this tuple.
  void AssignConcat(const Tuple& a, const Tuple& b);
  /// this := (a, null, ..., null) with `null_count` trailing nulls.
  void AssignConcatNulls(const Tuple& a, size_t null_count);
  /// this := src mapped through `positions`; a negative position yields
  /// null (the padding convention). `src` must not alias this tuple.
  void AssignMapped(const Tuple& src, const std::vector<int>& positions);

  /// Element-wise write access for the batch engine's column-to-row
  /// materialization: resize to the target arity (reusing storage like
  /// the Assign helpers), then overwrite values in place.
  void ResizeForWrite(size_t arity) { values_.resize(arity); }
  Value* mutable_value(size_t i) { return &values_[i]; }

  /// Structural equality (null == null), for bag semantics.
  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  size_t Hash() const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace fro

#endif  // FRO_RELATIONAL_TUPLE_H_
