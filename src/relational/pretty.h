// Aligned tabular rendering of relations, for interactive tools.

#ifndef FRO_RELATIONAL_PRETTY_H_
#define FRO_RELATIONAL_PRETTY_H_

#include <string>

#include "relational/relation.h"

namespace fro {

class Catalog;

struct PrettyOptions {
  /// Render in canonical order (sorted columns and rows), matching
  /// CanonicalString's ordering.
  bool canonical = true;
  /// Cap on rendered rows; the remainder is summarized as "... (N more)".
  size_t max_rows = 50;
  /// String shown for null values.
  std::string null_text = "∅";
};

/// Renders `rel` as an aligned ASCII table:
///
///   dno | dname    | location
///   ----+----------+---------
///     1 | Research | Zurich
///     3 | Archive  | Zurich
std::string PrettyTable(const Relation& rel, const Catalog* catalog,
                        const PrettyOptions& options = PrettyOptions());

}  // namespace fro

#endif  // FRO_RELATIONAL_PRETTY_H_
