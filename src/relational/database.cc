#include "relational/database.h"

#include <mutex>

#include "common/check.h"

namespace fro {

namespace {
/// Guards every Database's columns_cache_. Global because Database must
/// stay movable and cache fills are rare (once per relation); reads
/// take it once per plan build, never per batch.
std::mutex& ColumnsCacheMutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

Result<RelId> Database::AddRelation(
    const std::string& name, const std::vector<std::string>& column_names) {
  FRO_ASSIGN_OR_RETURN(RelId rel, catalog_.RegisterRelation(name));
  std::vector<AttrId> cols;
  cols.reserve(column_names.size());
  for (const std::string& col : column_names) {
    FRO_ASSIGN_OR_RETURN(AttrId attr, catalog_.RegisterAttr(rel, col));
    cols.push_back(attr);
  }
  relations_.emplace_back(Scheme(std::move(cols)));
  generations_.push_back(0);
  FRO_CHECK_EQ(relations_.size(), static_cast<size_t>(rel) + 1);
  InvalidateAllColumns();  // relations_ may have reallocated
  return rel;
}

Result<RelId> Database::CloneRelation(RelId source,
                                      const std::string& new_name) {
  if (source >= relations_.size()) {
    return InvalidArgument("unknown source relation");
  }
  std::vector<std::string> columns;
  for (AttrId attr : scheme(source).cols()) {
    const std::string& qualified = catalog_.AttrName(attr);
    columns.push_back(qualified.substr(qualified.find('.') + 1));
  }
  FRO_ASSIGN_OR_RETURN(RelId copy, AddRelation(new_name, columns));
  SetRows(copy, relations_[source].rows());
  return copy;
}

void Database::SetRows(RelId rel, std::vector<Tuple> rows) {
  FRO_CHECK_LT(rel, relations_.size());
  relations_[rel] = Relation(relations_[rel].scheme(), std::move(rows));
  ++generations_[rel];
  InvalidateColumns(rel);
}

void Database::AddRow(RelId rel, std::vector<Value> values) {
  FRO_CHECK_LT(rel, relations_.size());
  relations_[rel].AddRow(std::move(values));
  ++generations_[rel];
  InvalidateColumns(rel);
}

uint64_t Database::generation(RelId rel) const {
  FRO_CHECK_LT(rel, relations_.size());
  return generations_[rel];
}

const Relation& Database::relation(RelId rel) const {
  FRO_CHECK_LT(rel, relations_.size());
  return relations_[rel];
}

Relation* Database::mutable_relation(RelId rel) {
  FRO_CHECK_LT(rel, relations_.size());
  ++generations_[rel];     // the handout itself is a (potential) mutation
  InvalidateColumns(rel);  // the caller may mutate rows through this
  return &relations_[rel];
}

std::shared_ptr<RelationColumns> Database::CachedColumns(RelId rel) const {
  FRO_CHECK_LT(rel, relations_.size());
  std::lock_guard<std::mutex> lock(ColumnsCacheMutex());
  if (columns_cache_.size() != relations_.size()) {
    columns_cache_.resize(relations_.size());
  }
  std::shared_ptr<RelationColumns>& slot = columns_cache_[rel];
  if (slot == nullptr) {
    slot = std::make_shared<RelationColumns>(&relations_[rel]);
  }
  return slot;
}

void Database::InvalidateColumns(RelId rel) {
  std::lock_guard<std::mutex> lock(ColumnsCacheMutex());
  if (rel < columns_cache_.size()) columns_cache_[rel].reset();
}

void Database::InvalidateAllColumns() {
  std::lock_guard<std::mutex> lock(ColumnsCacheMutex());
  columns_cache_.clear();
}

AttrId Database::Attr(const std::string& rel_name,
                      const std::string& attr_name) const {
  Result<AttrId> result = catalog_.FindAttr(rel_name, attr_name);
  FRO_CHECK(result.ok()) << result.status().ToString();
  return *result;
}

RelId Database::Rel(const std::string& name) const {
  Result<RelId> result = catalog_.FindRelation(name);
  FRO_CHECK(result.ok()) << result.status().ToString();
  return *result;
}

}  // namespace fro
