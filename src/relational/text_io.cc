#include "relational/text_io.h"

#include <cstdlib>

#include "common/str_util.h"

namespace fro {

std::string ValueToText(const Value& value) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      return "";
    case Value::Kind::kInt:
      return std::to_string(value.AsInt());
    case Value::Kind::kDouble: {
      std::string out = StrFormat("%g", value.AsDouble());
      // Keep doubles recognizable as doubles on reload.
      if (out.find('.') == std::string::npos &&
          out.find('e') == std::string::npos) {
        out += ".0";
      }
      return out;
    }
    case Value::Kind::kString:
      return "'" + value.AsString() + "'";
  }
  return "";
}

Result<Value> ValueFromText(const std::string& token) {
  if (token.empty()) return Value::Null();
  if (token.front() == '\'') {
    if (token.size() < 2 || token.back() != '\'') {
      return InvalidArgument("unterminated string token: " + token);
    }
    return Value::String(token.substr(1, token.size() - 2));
  }
  if (token.find('.') != std::string::npos ||
      token.find('e') != std::string::npos) {
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return InvalidArgument("bad double token: " + token);
    }
    return Value::Double(v);
  }
  char* end = nullptr;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || token.empty()) {
    return InvalidArgument("bad integer token: " + token);
  }
  return Value::Int(v);
}

std::string DatabaseToText(const Database& db) {
  std::string out;
  const Catalog& catalog = db.catalog();
  for (RelId rel = 0; rel < db.num_relations(); ++rel) {
    out += "relation " + catalog.RelationName(rel);
    for (AttrId attr : db.scheme(rel).cols()) {
      // Strip the "rel." prefix from the qualified name.
      const std::string& qualified = catalog.AttrName(attr);
      size_t dot = qualified.find('.');
      out += " " + qualified.substr(dot + 1);
    }
    out += "\n";
    for (const Tuple& row : db.relation(rel).rows()) {
      for (size_t c = 0; c < row.arity(); ++c) {
        if (c > 0) out += ",";
        out += ValueToText(row.value(c));
      }
      out += "\n";
    }
  }
  return out;
}

Result<std::unique_ptr<Database>> LoadDatabaseText(const std::string& text) {
  auto db = std::make_unique<Database>();
  int current = -1;
  size_t arity = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    // Trim trailing carriage returns / spaces.
    std::string line = raw_line;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line.front() == '#') continue;
    if (StartsWith(line, "relation ")) {
      std::vector<std::string> parts;
      for (std::string& part : StrSplit(line, ' ')) {
        if (!part.empty()) parts.push_back(std::move(part));
      }
      if (parts.size() < 3) {
        return InvalidArgument("relation line needs a name and columns: " +
                               line);
      }
      std::vector<std::string> columns(parts.begin() + 2, parts.end());
      FRO_ASSIGN_OR_RETURN(RelId rel, db->AddRelation(parts[1], columns));
      current = static_cast<int>(rel);
      arity = columns.size();
      continue;
    }
    if (current < 0) {
      return InvalidArgument("row before any 'relation' header: " + line);
    }
    std::vector<std::string> tokens = StrSplit(line, ',');
    if (tokens.size() != arity) {
      return InvalidArgument("row arity mismatch: " + line);
    }
    std::vector<Value> values;
    values.reserve(arity);
    for (const std::string& token : tokens) {
      FRO_ASSIGN_OR_RETURN(Value v, ValueFromText(token));
      values.push_back(std::move(v));
    }
    db->AddRow(static_cast<RelId>(current), std::move(values));
  }
  return db;
}

}  // namespace fro
