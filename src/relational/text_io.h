// Plain-text persistence for databases: a simple line-oriented format for
// saving and loading relations with nulls, integers, doubles, and
// strings.
//
// Format:
//   relation <name> <col1> <col2> ...
//   <value>,<value>,...            -- one line per row
//
// Values: empty = null, 'quoted' = string, containing '.' = double,
// otherwise integer. Blank lines and lines starting with '#' are
// ignored.

#ifndef FRO_RELATIONAL_TEXT_IO_H_
#define FRO_RELATIONAL_TEXT_IO_H_

#include <memory>
#include <string>

#include "relational/database.h"

namespace fro {

/// Serializes the whole database (round-trips through LoadDatabaseText).
std::string DatabaseToText(const Database& db);

/// Parses a database from the textual format.
Result<std::unique_ptr<Database>> LoadDatabaseText(const std::string& text);

/// Serializes a single value in the row format ('' quoting for strings,
/// empty for null).
std::string ValueToText(const Value& value);

/// Parses a single value token.
Result<Value> ValueFromText(const std::string& token);

}  // namespace fro

#endif  // FRO_RELATIONAL_TEXT_IO_H_
