#include "acyclic/gyo.h"

#include <map>

#include "common/check.h"
#include "graph/attr_classes.h"

namespace fro {

JoinHypergraph BuildJoinHypergraph(
    const std::vector<ExprPtr>& operands,
    const std::vector<PredicatePtr>& conjuncts) {
  JoinHypergraph hg;
  hg.edge_vars.assign(operands.size(), 0);

  PredicatePtr all;
  for (const PredicatePtr& c : conjuncts) all = AndOf(all, c);
  const std::map<AttrId, std::vector<AttrId>> classes = AttrEqClasses(all);

  for (const auto& [root, members] : classes) {
    uint64_t covering = 0;
    for (size_t i = 0; i < operands.size(); ++i) {
      for (AttrId member : members) {
        if (operands[i]->attrs().Contains(member)) {
          covering |= uint64_t{1} << i;
          break;
        }
      }
    }
    // A class confined to one operand is not a join variable: it only
    // feeds intra-operand filters, which carry no hypergraph structure.
    if (__builtin_popcountll(covering) < 2) continue;
    if (hg.var_reps.size() == 64) {
      hg.ok = false;
      return hg;
    }
    const size_t v = hg.var_reps.size();
    hg.var_reps.push_back(root);
    for (size_t i = 0; i < operands.size(); ++i) {
      if ((covering >> i) & 1) hg.edge_vars[i] |= uint64_t{1} << v;
    }
  }
  return hg;
}

JoinTree GyoReduce(const JoinHypergraph& hypergraph) {
  JoinTree tree;
  const size_t n = hypergraph.edge_vars.size();
  tree.parent.assign(n, -1);
  if (!hypergraph.ok) return tree;  // cyclic: too large to represent
  FRO_CHECK(n <= 64) << "join region exceeds 64 operands";

  std::vector<uint64_t> vars = hypergraph.edge_vars;
  std::vector<bool> active(n, true);
  size_t num_active = n;

  bool changed = true;
  while (changed) {
    changed = false;

    // Rule 1: drop vertices contained in at most one active edge.
    for (size_t v = 0; v < hypergraph.var_reps.size(); ++v) {
      const uint64_t bit = uint64_t{1} << v;
      size_t count = 0;
      for (size_t i = 0; i < n; ++i) {
        if (active[i] && (vars[i] & bit) != 0) ++count;
      }
      if (count == 1) {
        for (size_t i = 0; i < n; ++i) vars[i] &= ~bit;
        changed = true;
      }
    }

    // Rule 2: remove one ear — an active edge whose vertices are all
    // contained in another active edge. An edge stripped to zero
    // vertices is its component's last survivor (or a cross-join
    // island) and becomes a root rather than anyone's child.
    bool removed_ear = false;
    for (size_t i = 0; i < n && !removed_ear; ++i) {
      if (!active[i]) continue;
      if (vars[i] == 0) {
        active[i] = false;
        --num_active;
        changed = true;
        continue;
      }
      for (size_t j = 0; j < n; ++j) {
        if (j == i || !active[j]) continue;
        if ((vars[i] & ~vars[j]) == 0) {
          active[i] = false;
          --num_active;
          tree.parent[i] = static_cast<int>(j);
          tree.removal_order.push_back(static_cast<int>(i));
          changed = true;
          removed_ear = true;  // re-run rule 1 before the next ear
          break;
        }
      }
    }
  }

  tree.acyclic = num_active == 0;
  if (!tree.acyclic) {
    tree.parent.assign(n, -1);
    tree.removal_order.clear();
    return tree;
  }
  for (size_t i = 0; i < n; ++i) {
    if (tree.parent[i] < 0) tree.roots.push_back(static_cast<int>(i));
  }
  return tree;
}

}  // namespace fro
