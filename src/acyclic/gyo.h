// GYO ear reduction: alpha-acyclicity detection and join-tree
// construction for join-only regions. The complement of wcoj's cyclic
// cores: the paper's Section 4 simplifier turns outerjoins into joins,
// and every join-only region that is NOT cyclic admits a join tree and
// with it a Yannakakis semijoin program whose intermediates never blow
// up past input+output size (see yannakakis.h).
//
// The hypergraph's vertices are the join variables — attribute
// equivalence classes (graph/attr_classes.h) spanning at least two
// operands — and its hyperedges are the region's frontier operands.
// GYO reduction repeats two rules until neither applies: drop a vertex
// contained in at most one remaining edge, and remove an edge whose
// vertex set is contained in another remaining edge (an "ear",
// recording the container as its join-tree parent). The hypergraph is
// alpha-acyclic iff the reduction consumes every edge; the removal
// order is then bottom-up in the join tree (a child is always removed
// while its parent is still active).

#ifndef FRO_ACYCLIC_GYO_H_
#define FRO_ACYCLIC_GYO_H_

#include <cstdint>
#include <vector>

#include "algebra/expr.h"

namespace fro {

/// Join hypergraph of one join region: one hyperedge per frontier
/// operand, one vertex per inter-operand attribute equivalence class.
struct JoinHypergraph {
  /// Canonical representative (minimum AttrId) of each join variable,
  /// ascending. At most 64 variables.
  std::vector<AttrId> var_reps;
  /// Per operand, bitmask over var_reps indices: which join variables
  /// the operand covers.
  std::vector<uint64_t> edge_vars;
  /// False when the region exceeds the 64-variable representation;
  /// callers must then skip the rewrite (GyoReduce reports cyclic).
  bool ok = true;
};

/// Builds the hypergraph from a region's operands and the column-
/// equality conjuncts among them (non-equality conjuncts carry no
/// structure; they are applied as filters by the planner).
JoinHypergraph BuildJoinHypergraph(const std::vector<ExprPtr>& operands,
                                   const std::vector<PredicatePtr>& conjuncts);

/// Join tree (forest, when the region has cross-join islands) produced
/// by GYO reduction.
struct JoinTree {
  /// True iff the hypergraph is alpha-acyclic. The remaining fields are
  /// only meaningful when true.
  bool acyclic = false;
  /// Parent operand index of each operand; -1 for component roots.
  std::vector<int> parent;
  /// Non-root operands in GYO removal order — bottom-up: every operand
  /// appears before its parent.
  std::vector<int> removal_order;
  /// Component roots, ascending.
  std::vector<int> roots;
};

/// Runs GYO ear reduction. Deterministic: the lowest-index removable
/// ear goes first, witnessed by the lowest-index container. A
/// hypergraph flagged !ok reports cyclic (no rewrite).
JoinTree GyoReduce(const JoinHypergraph& hypergraph);

}  // namespace fro

#endif  // FRO_ACYCLIC_GYO_H_
