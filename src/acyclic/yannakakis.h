// Yannakakis semijoin programs over a GYO join tree. Given a join-only
// region whose hypergraph reduced to a join tree (gyo.h), plans:
//
//   1. A bottom-up semijoin pass (in GYO removal order, so children
//      before parents): parent := parent SEMIJOIN child on the tree
//      edge's linking conjuncts. After the pass the root is fully
//      reduced — every surviving root tuple extends to an output tuple.
//   2. Optionally a top-down pass (reverse order) fully reducing every
//      operand; off by default because the engines share no common
//      subexpressions, so each extra reduction re-executes the parent.
//   3. The joins along the tree, pre-order from each root, so every
//      intermediate only contains tuples extendable to output.
//
// Safe-subjoin gating: with a cardinality estimator, each candidate
// reduction is applied only when the estimated survivor fraction beats
// `min_reduction` — reductions that keep (nearly) everything cost a
// pass over the parent for nothing. With a null estimator every
// reduction is applied (the forced mode fuzzing uses).
//
// Soundness does not rest on acyclicity: every semijoin filters by a
// subset of the region's conjuncts, and the join phase re-applies all
// conjuncts (earliest covering join, top Restrict safety net), so the
// program computes the region's relation even if the tree were wrong.
// Acyclicity is what bounds the intermediates.

#ifndef FRO_ACYCLIC_YANNAKAKIS_H_
#define FRO_ACYCLIC_YANNAKAKIS_H_

#include <vector>

#include "acyclic/gyo.h"
#include "algebra/expr.h"
#include "optimizer/cardinality.h"

namespace fro {

struct YannakakisOptions {
  /// Apply a reduction only when the estimated survivor fraction of the
  /// reduced side is below this (ignored without an estimator).
  double min_reduction = 0.95;
  /// Also run the top-down pass (full reduction).
  bool top_down = false;
};

struct SemijoinProgram {
  ExprPtr expr;
  /// Semijoin reductions actually inserted.
  int semijoins = 0;
};

/// Plans the semijoin program for one region. `tree` must be acyclic
/// and sized to `operands`. A null `estimator` applies every reduction.
SemijoinProgram PlanYannakakis(const std::vector<ExprPtr>& operands,
                               const std::vector<PredicatePtr>& conjuncts,
                               const JoinTree& tree,
                               const CardinalityEstimator* estimator,
                               const YannakakisOptions& options = {});

}  // namespace fro

#endif  // FRO_ACYCLIC_YANNAKAKIS_H_
