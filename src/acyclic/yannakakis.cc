#include "acyclic/yannakakis.h"

#include "common/check.h"

namespace fro {

namespace {

/// Linking predicate of the tree edge (child, parent): the conjuncts
/// whose references live entirely within the two operands and touch
/// both. Operand attribute sets are disjoint, so a conjunct qualifies
/// for exactly one unordered operand pair.
PredicatePtr LinkingPred(const ExprPtr& child, const ExprPtr& parent,
                         const std::vector<PredicatePtr>& conjuncts) {
  const AttrSet both = child->attrs().Union(parent->attrs());
  PredicatePtr pred;
  for (const PredicatePtr& c : conjuncts) {
    const AttrSet& refs = c->References();
    if (both.ContainsAll(refs) && refs.Overlaps(child->attrs()) &&
        refs.Overlaps(parent->attrs())) {
      pred = AndOf(std::move(pred), c);
    }
  }
  return pred;
}

}  // namespace

SemijoinProgram PlanYannakakis(const std::vector<ExprPtr>& operands,
                               const std::vector<PredicatePtr>& conjuncts,
                               const JoinTree& tree,
                               const CardinalityEstimator* estimator,
                               const YannakakisOptions& options) {
  FRO_CHECK(tree.acyclic);
  FRO_CHECK(tree.parent.size() == operands.size());
  SemijoinProgram program;

  // `current[i]` is operand i with its reductions applied so far.
  std::vector<ExprPtr> current = operands;
  auto reduce = [&](int kept, int other) {
    const PredicatePtr pred =
        LinkingPred(current[other], current[kept], conjuncts);
    if (pred == nullptr) return;  // cross-join tree edge: nothing to key on
    ExprPtr candidate = Expr::Semijoin(current[kept], current[other], pred,
                                       /*keeps_left=*/true);
    if (estimator != nullptr) {
      const double before = estimator->Estimate(current[kept]);
      const double after = estimator->Estimate(candidate);
      if (before <= 0 || after >= options.min_reduction * before) return;
    }
    current[kept] = std::move(candidate);
    ++program.semijoins;
  };

  // Bottom-up: removal order guarantees children are fully processed
  // (their own subtrees already folded in) before their parent reduces.
  for (const int child : tree.removal_order) {
    reduce(tree.parent[child], child);
  }
  if (options.top_down) {
    for (auto it = tree.removal_order.rbegin();
         it != tree.removal_order.rend(); ++it) {
      reduce(*it, tree.parent[*it]);
    }
  }

  // Join phase: pre-order from each root keeps every joined operand
  // adjacent (in the tree) to the prefix. Conjunct usage restarts here —
  // semijoins only filtered; the joins must still apply every conjunct.
  std::vector<std::vector<int>> children(operands.size());
  for (size_t i = 0; i < operands.size(); ++i) {
    if (tree.parent[i] >= 0) children[tree.parent[i]].push_back(i);
  }
  std::vector<bool> used(conjuncts.size(), false);
  auto join_step = [&](ExprPtr acc, const ExprPtr& next) {
    const AttrSet joined = acc->attrs().Union(next->attrs());
    PredicatePtr pred;
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      if (used[k]) continue;
      if (joined.ContainsAll(conjuncts[k]->References())) {
        pred = AndOf(std::move(pred), conjuncts[k]);
        used[k] = true;
      }
    }
    return Expr::Join(std::move(acc), next, std::move(pred));
  };

  ExprPtr result;
  for (const int root : tree.roots) {
    std::vector<int> stack = {root};
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      result = result == nullptr ? current[node]
                                 : join_step(std::move(result), current[node]);
      for (auto it = children[node].rbegin(); it != children[node].rend();
           ++it) {
        stack.push_back(*it);
      }
    }
  }
  FRO_CHECK(result != nullptr);

  // Safety net: anything the joins never covered (cannot happen for
  // region-local conjuncts) still applies at the top.
  PredicatePtr leftover;
  for (size_t k = 0; k < conjuncts.size(); ++k) {
    if (!used[k]) leftover = AndOf(std::move(leftover), conjuncts[k]);
  }
  if (leftover != nullptr) {
    result = Expr::Restrict(std::move(result), std::move(leftover));
  }
  program.expr = std::move(result);
  return program;
}

}  // namespace fro
