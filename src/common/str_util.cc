#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace fro {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace fro
