// Error handling for the fro library.
//
// The library does not use exceptions. Fallible operations return `Status`
// (when there is no payload) or `Result<T>` (a value or an error), modeled
// after absl::Status / absl::StatusOr.

#ifndef FRO_COMMON_STATUS_H_
#define FRO_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace fro {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // Serving-path outcomes (src/server): a query ran past its deadline,
  // was cancelled by a client, was refused by admission control, or the
  // peer/socket went away.
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
};

/// Parses a name produced by StatusCodeName back into its code; returns
/// kInternal for unrecognized names (wire-protocol round-tripping).
StatusCode StatusCodeFromName(const std::string& name);

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome with a message. Cheap to copy on success.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    FRO_CHECK(code != StatusCode::kOk) << "error status requires a code";
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status FailedPrecondition(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status DeadlineExceeded(std::string message);
Status Cancelled(std::string message);
Status ResourceExhausted(std::string message);
Status Unavailable(std::string message);

/// A value of type T or an error Status. Use `ok()` before dereferencing.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in factories.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FRO_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    FRO_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FRO_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FRO_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace fro

/// Propagates an error Status from a fallible expression.
#define FRO_RETURN_IF_ERROR(expr)           \
  do {                                      \
    ::fro::Status fro_status_ = (expr);     \
    if (!fro_status_.ok()) return fro_status_; \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define FRO_ASSIGN_OR_RETURN(lhs, expr)                 \
  FRO_ASSIGN_OR_RETURN_IMPL_(                           \
      FRO_STATUS_CONCAT_(fro_result_, __LINE__), lhs, expr)

#define FRO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define FRO_STATUS_CONCAT_(a, b) FRO_STATUS_CONCAT_IMPL_(a, b)
#define FRO_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // FRO_COMMON_STATUS_H_
