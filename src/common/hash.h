// 64-bit hash mixing, shared by the structural hashes of predicates and
// expression trees and by hash-table keying throughout the library.

#ifndef FRO_COMMON_HASH_H_
#define FRO_COMMON_HASH_H_

#include <cstdint>

namespace fro {

/// Mixes `v` into the running hash `h` (boost-style combiner over 64-bit
/// lanes). Not commutative: callers that need order-insensitivity must
/// normalize (e.g. sort) before mixing.
inline uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace fro

#endif  // FRO_COMMON_HASH_H_
