// Lightweight assertion macros, in the spirit of glog's CHECK family.
//
// FRO_CHECK* macros are always on (including in release builds); they guard
// invariants whose violation means the library itself is broken, so the
// process is terminated with a diagnostic rather than continuing with
// corrupt state.

#ifndef FRO_COMMON_CHECK_H_
#define FRO_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fro {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "FRO_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream sink used by the macros to build an optional trailing message.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, condition_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fro

// The while-loop form makes `FRO_CHECK(x) << "context";` legal: when the
// condition fails, the temporary builder collects the streamed message and
// its destructor aborts at the end of the statement.
#define FRO_CHECK(condition) \
  while (!(condition))       \
  ::fro::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define FRO_CHECK_EQ(a, b) FRO_CHECK((a) == (b))
#define FRO_CHECK_NE(a, b) FRO_CHECK((a) != (b))
#define FRO_CHECK_LT(a, b) FRO_CHECK((a) < (b))
#define FRO_CHECK_LE(a, b) FRO_CHECK((a) <= (b))
#define FRO_CHECK_GT(a, b) FRO_CHECK((a) > (b))
#define FRO_CHECK_GE(a, b) FRO_CHECK((a) >= (b))

// Debug-only checks. The library's workloads are small enough that keeping
// them on in all build types costs little and catches real bugs, so this is
// an alias rather than a no-op.
#define FRO_DCHECK(condition) FRO_CHECK(condition)

#endif  // FRO_COMMON_CHECK_H_
