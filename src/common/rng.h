// Deterministic pseudo-random number generation.
//
// Tests and benchmarks must be reproducible, so all randomized machinery in
// the library takes an explicit `Rng` seeded by the caller. The generator is
// xoshiro256**, seeded via splitmix64.
//
// Seed contract (what "reproducible from the printed seed" means — the
// fuzzing harness in src/fuzz/ depends on every clause):
//
//   1. The value stream of `Rng(seed)` is a pure function of `seed`:
//      no global state, no time, no std::random_device, identical across
//      processes, platforms, and thread interleavings.
//   2. Everything downstream of an Rng must consume values in a
//      deterministic order. Generators (testing/datagen.h,
//      testing/graphgen.h, testing/nested_gen.h, enumerate/it_enum.h's
//      RandomIt) draw in fixed source-code order and never iterate
//      unordered containers while drawing; audit any new consumer for
//      both properties before trusting its seeds.
//   3. Independent substreams are derived with `DeriveSeed(seed, i)`,
//      never by reusing one Rng across logically separate cases — that
//      way case i can be replayed without generating cases 0..i-1.
//   4. There are no unseeded defaults: every randomized API takes the
//      caller's Rng or an explicit seed.

#ifndef FRO_COMMON_RNG_H_
#define FRO_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace fro {

/// A small, fast, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the full state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform over all 64-bit values.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    FRO_CHECK(bound > 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    FRO_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Derives the seed of an independent substream from a master seed and a
/// stream index (one splitmix64 step over a golden-ratio-spaced input).
/// Substream i is replayable without touching substreams 0..i-1; distinct
/// (seed, index) pairs give decorrelated streams.
inline uint64_t DeriveSeed(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace fro

#endif  // FRO_COMMON_RNG_H_
