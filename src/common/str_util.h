// Small string helpers shared across the library.

#ifndef FRO_COMMON_STR_UTIL_H_
#define FRO_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fro {

/// Joins `parts` with `sep` ("a", "b" -> "a,b" for sep ",").
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `input` at every occurrence of `sep`; keeps empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace fro

#endif  // FRO_COMMON_STR_UTIL_H_
