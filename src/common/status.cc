#include "common/status.h"

namespace fro {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace fro
