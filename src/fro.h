// Umbrella header for the fro library — a C++20 reproduction of
// Rosenthal & Galindo-Legaria, "Query Graphs, Implementing Trees, and
// Freely-Reorderable Outerjoins" (SIGMOD 1990).
//
// Typical flow:
//
//   #include "fro.h"
//   using namespace fro;
//
//   Database db;                              // 1. data
//   RelId dept = *db.AddRelation("DEPT", {"dno"});
//   ...
//   ExprPtr q = Expr::OuterJoin(...);         // 2. a join/outerjoin query
//   QueryGraph g = *GraphOf(q, db);           // 3. its order-free graph
//   if (CheckFreelyReorderable(g)             // 4. Theorem 1
//           .freely_reorderable()) {
//     OptimizeOutcome plan = *Optimize(q, db);  // 5. pick any IT: cheapest
//     Relation out = ExecutePipelined(plan.plan, db);  // 6. run it
//   }
//
// Individual headers remain the canonical documentation; this header just
// aggregates the public API.

#ifndef FRO_FRO_H_
#define FRO_FRO_H_

// Substrate: values, relations, predicates, kernels, persistence.
#include "relational/database.h"
#include "relational/ops.h"
#include "relational/sort_merge.h"
#include "relational/text_io.h"

// Algebra: expression trees, evaluation, parsing, transforms, rewrites.
#include "algebra/eval.h"
#include "algebra/expr.h"
#include "algebra/parse.h"
#include "algebra/pushdown.h"
#include "algebra/simplify.h"
#include "algebra/transform.h"

// Pipelined execution.
#include "exec/build.h"
#include "exec/operators.h"

// Query graphs and the paper's characterizations.
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "graph/query_graph.h"
#include "graph/tree_conditions.h"

// Implementing trees: enumeration, closures, constructive BT paths.
#include "enumerate/bt_path.h"
#include "enumerate/closure.h"
#include "enumerate/it_enum.h"

// Optimization.
#include "optimizer/constraints.h"
#include "optimizer/explain.h"
#include "optimizer/goj_rewrite.h"
#include "optimizer/greedy.h"
#include "optimizer/optimizer.h"

// The Section 5 language.
#include "lang/lang.h"
#include "lang/model.h"
#include "lang/parser.h"
#include "lang/translate.h"

namespace fro {

/// Library version (semantic).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace fro

#endif  // FRO_FRO_H_
