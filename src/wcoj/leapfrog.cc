#include "wcoj/leapfrog.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "graph/attr_classes.h"

namespace fro {

MultiwaySpec AnalyzeMultiwayJoin(const ExprPtr& expr) {
  FRO_CHECK(expr != nullptr && expr->is_multiway());
  MultiwaySpec spec;
  spec.var_reps = expr->mj_var_order();
  spec.residual = expr->pred();

  // Shared grouping (graph/attr_classes.h) keeps the executor's
  // variable classes identical to the planner's.
  AttrUnionFind uf;
  std::vector<AttrId> eq_attrs;
  if (expr->pred() != nullptr) {
    for (const PredicatePtr& c : expr->pred()->Conjuncts(expr->pred())) {
      if (!IsColEqCol(c)) continue;
      uf.Union(c->lhs().attr(), c->rhs().attr());
      eq_attrs.push_back(c->lhs().attr());
      eq_attrs.push_back(c->rhs().attr());
    }
  }
  std::sort(eq_attrs.begin(), eq_attrs.end());
  eq_attrs.erase(std::unique(eq_attrs.begin(), eq_attrs.end()),
                 eq_attrs.end());

  // Attribute class of each variable, members sorted ascending.
  std::vector<std::vector<AttrId>> classes(spec.var_reps.size());
  for (size_t v = 0; v < spec.var_reps.size(); ++v) {
    const AttrId root = uf.Find(spec.var_reps[v]);
    for (AttrId a : eq_attrs) {
      if (uf.Find(a) == root) classes[v].push_back(a);
    }
    if (classes[v].empty()) classes[v].push_back(spec.var_reps[v]);
  }

  const auto& children = expr->mj_children();
  spec.child_levels.resize(children.size());
  spec.child_level_vars.resize(children.size());
  for (size_t c = 0; c < children.size(); ++c) {
    const AttrSet& attrs = children[c]->attrs();
    for (size_t v = 0; v < classes.size(); ++v) {
      for (AttrId member : classes[v]) {
        if (attrs.Contains(member)) {
          spec.child_levels[c].push_back(member);
          spec.child_level_vars[c].push_back(static_cast<int>(v));
          break;
        }
      }
    }
  }
  return spec;
}

void LeapfrogCore::Start(const MultiwaySpec& spec,
                         std::vector<const TrieIndex*> tries,
                         const Scheme& out_scheme) {
  tries_ = std::move(tries);
  const size_t n = tries_.size();
  FRO_CHECK_EQ(n, spec.child_levels.size());

  num_vars_ = spec.var_reps.size();
  cursors_.clear();
  cursors_.reserve(n);
  for (const TrieIndex* trie : tries_) cursors_.emplace_back(trie);

  var_children_.assign(num_vars_, {});
  child_num_levels_.resize(n);
  for (size_t c = 0; c < n; ++c) {
    FRO_CHECK_EQ(tries_[c]->num_levels(), spec.child_level_vars[c].size());
    child_num_levels_[c] = spec.child_level_vars[c].size();
    for (int v : spec.child_level_vars[c]) {
      var_children_[static_cast<size_t>(v)].push_back(c);
    }
  }
  for (size_t v = 0; v < num_vars_; ++v) {
    FRO_CHECK(!var_children_[v].empty())
        << "multiway variable covered by no operand";
  }

  offset_.resize(n);
  arity_.resize(n);
  size_t off = 0;
  for (size_t c = 0; c < n; ++c) {
    offset_[c] = off;
    arity_[c] = tries_[c]->scheme().size();
    off += arity_[c];
  }
  total_arity_ = off;
  FRO_CHECK_EQ(total_arity_, out_scheme.size());

  has_residual_ = spec.residual != nullptr;
  if (has_residual_) residual_.Bind(spec.residual, out_scheme);

  range_lo_.assign(n, 0);
  range_hi_.assign(n, 0);
  idx_.assign(n, 0);
  started_ = false;
  done_ = false;
  emitting_ = false;
  odo_overflow_ = false;
  evals_ = 0;
}

uint64_t LeapfrogCore::probes() const {
  uint64_t total = 0;
  for (const TrieCursor& cursor : cursors_) total += cursor.seeks();
  return total;
}

bool LeapfrogCore::Next(Tuple* out) {
  while (!done_) {
    if (emitting_) {
      while (!odo_overflow_) {
        Materialize(out);
        AdvanceOdometer();
        if (has_residual_) {
          ++evals_;
          if (residual_.Eval(*out) != TriBool::kTrue) continue;
        }
        return true;
      }
      emitting_ = false;
      continue;
    }
    if (!FindNextAssignment()) {
      done_ = true;
      break;
    }
    SetupEmission();
  }
  return false;
}

// Moves the cursors to the next full variable assignment (the first on
// the initial call) with an iterative descend/advance walk. Invariants:
// OpenVar leaves its cursors closed on failure; AdvanceVar leaves them
// open (exhausted), so the backtrack closes them.
bool LeapfrogCore::FindNextAssignment() {
  if (num_vars_ == 0) {
    if (started_) return false;
    started_ = true;
    for (const TrieIndex* trie : tries_) {
      if (trie->num_rows() == 0) return false;
    }
    return true;
  }

  int v;
  bool descending;
  if (!started_) {
    started_ = true;
    v = 0;
    descending = true;
  } else {
    v = static_cast<int>(num_vars_) - 1;
    descending = false;
  }
  while (true) {
    const bool ok = descending ? OpenVar(static_cast<size_t>(v))
                               : AdvanceVar(static_cast<size_t>(v));
    if (ok) {
      if (v == static_cast<int>(num_vars_) - 1) return true;
      ++v;
      descending = true;
    } else {
      if (!descending) {
        for (size_t c : var_children_[static_cast<size_t>(v)]) {
          cursors_[c].Up();
        }
      }
      --v;
      if (v < 0) return false;
      descending = false;
    }
  }
}

bool LeapfrogCore::OpenVar(size_t v) {
  const std::vector<size_t>& members = var_children_[v];
  for (size_t i = 0; i < members.size(); ++i) {
    if (!cursors_[members[i]].Open()) {
      for (size_t j = 0; j < i; ++j) cursors_[members[j]].Up();
      return false;
    }
  }
  if (Align(v)) return true;
  for (size_t c : members) cursors_[c].Up();
  return false;
}

bool LeapfrogCore::AdvanceVar(size_t v) {
  TrieCursor& lead = cursors_[var_children_[v][0]];
  if (lead.AtEnd()) return false;
  lead.Next();
  if (lead.AtEnd()) return false;
  return Align(v);
}

// The leapfrog step: repeatedly seek every lagging cursor to the
// current maximum key until all participants agree (intersection found)
// or one runs off the end.
bool LeapfrogCore::Align(size_t v) {
  const std::vector<size_t>& members = var_children_[v];
  if (members.size() == 1) return !cursors_[members[0]].AtEnd();
  while (true) {
    const Value* max = nullptr;
    bool all_equal = true;
    for (size_t c : members) {
      TrieCursor& cursor = cursors_[c];
      if (cursor.AtEnd()) return false;
      const Value& key = cursor.Key();
      if (max == nullptr) {
        max = &key;
      } else if (key < *max) {
        all_equal = false;
      } else if (*max < key) {
        max = &key;
        all_equal = false;
      }
    }
    if (all_equal) return true;
    const Value target = *max;
    for (size_t c : members) {
      TrieCursor& cursor = cursors_[c];
      if (cursor.Key() < target) {
        cursor.SeekGeq(target);
        if (cursor.AtEnd()) return false;
      }
    }
  }
}

void LeapfrogCore::SetupEmission() {
  bool any_empty = false;
  for (size_t c = 0; c < cursors_.size(); ++c) {
    if (child_num_levels_[c] == 0) {
      range_lo_[c] = 0;
      range_hi_[c] = tries_[c]->num_rows();
    } else {
      const auto range = cursors_[c].CurrentRange();
      range_lo_[c] = range.first;
      range_hi_[c] = range.second;
    }
    idx_[c] = range_lo_[c];
    if (range_lo_[c] >= range_hi_[c]) any_empty = true;
  }
  emitting_ = true;
  odo_overflow_ = any_empty;
}

void LeapfrogCore::Materialize(Tuple* out) {
  out->ResizeForWrite(total_arity_);
  for (size_t c = 0; c < tries_.size(); ++c) {
    const Tuple& row = tries_[c]->row(idx_[c]);
    for (size_t j = 0; j < arity_[c]; ++j) {
      *out->mutable_value(offset_[c] + j) = row.value(j);
    }
  }
}

void LeapfrogCore::AdvanceOdometer() {
  for (size_t c = idx_.size(); c-- > 0;) {
    if (++idx_[c] < range_hi_[c]) return;
    idx_[c] = range_lo_[c];
  }
  odo_overflow_ = true;
}

LeapfrogTriejoinIterator::LeapfrogTriejoinIterator(
    MultiwaySpec spec, std::vector<IteratorPtr> children)
    : spec_(std::move(spec)), children_(std::move(children)) {
  FRO_CHECK_GE(children_.size(), 2u);
  FRO_CHECK_EQ(children_.size(), spec_.child_levels.size());
  out_scheme_ = children_[0]->scheme();
  for (size_t c = 1; c < children_.size(); ++c) {
    out_scheme_ = out_scheme_.Concat(children_[c]->scheme());
  }
}

std::vector<TupleIterator*> LeapfrogTriejoinIterator::children() const {
  std::vector<TupleIterator*> out;
  out.reserve(children_.size());
  for (const IteratorPtr& child : children_) out.push_back(child.get());
  return out;
}

void LeapfrogTriejoinIterator::OpenImpl() {
  build_reads_ = 0;
  tries_.clear();
  std::vector<const TrieIndex*> raw;
  raw.reserve(children_.size());
  Tuple scratch;
  for (size_t c = 0; c < children_.size(); ++c) {
    TupleIterator* child = children_[c].get();
    child->Open();
    Relation materialized(child->scheme());
    while (child->Next(&scratch)) materialized.AddRow(scratch);
    child->Close();
    build_reads_ += materialized.NumRows();
    tries_.push_back(
        std::make_unique<TrieIndex>(materialized, spec_.child_levels[c]));
    raw.push_back(tries_.back().get());
  }
  core_.Start(spec_, std::move(raw), out_scheme_);
  SyncStats();
}

bool LeapfrogTriejoinIterator::NextImpl(Tuple* out) {
  const bool produced = core_.Next(out);
  SyncStats();
  return produced;
}

void LeapfrogTriejoinIterator::CloseImpl() {}

void LeapfrogTriejoinIterator::SyncStats() {
  ExecStats& stats = mutable_stats();
  stats.left_reads = build_reads_;
  stats.probes = core_.probes();
  stats.predicate_evals = core_.residual_evals();
}

BatchLeapfrogTriejoinIterator::BatchLeapfrogTriejoinIterator(
    MultiwaySpec spec, std::vector<BatchIteratorPtr> children,
    size_t batch_capacity)
    : spec_(std::move(spec)),
      children_(std::move(children)),
      batch_capacity_(batch_capacity) {
  FRO_CHECK_GE(children_.size(), 2u);
  FRO_CHECK_EQ(children_.size(), spec_.child_levels.size());
  out_scheme_ = children_[0]->scheme();
  for (size_t c = 1; c < children_.size(); ++c) {
    out_scheme_ = out_scheme_.Concat(children_[c]->scheme());
  }
}

std::vector<BatchIterator*> BatchLeapfrogTriejoinIterator::children() const {
  std::vector<BatchIterator*> out;
  out.reserve(children_.size());
  for (const BatchIteratorPtr& child : children_) out.push_back(child.get());
  return out;
}

void BatchLeapfrogTriejoinIterator::OpenImpl() {
  build_reads_ = 0;
  tries_.clear();
  std::vector<const TrieIndex*> raw;
  raw.reserve(children_.size());
  TupleBatch scratch(batch_capacity_);
  for (size_t c = 0; c < children_.size(); ++c) {
    BatchIterator* child = children_[c].get();
    child->Open();
    Relation materialized(child->scheme());
    while (child->NextBatch(&scratch)) {
      for (size_t i = 0; i < scratch.size(); ++i) {
        materialized.AddRow(scratch.selected(i));
      }
    }
    child->Close();
    build_reads_ += materialized.NumRows();
    tries_.push_back(
        std::make_unique<TrieIndex>(materialized, spec_.child_levels[c]));
    raw.push_back(tries_.back().get());
  }
  core_.Start(spec_, std::move(raw), out_scheme_);
  SyncStats();
}

bool BatchLeapfrogTriejoinIterator::NextBatchImpl(TupleBatch* out) {
  while (!out->full()) {
    Tuple* slot = out->PeekSlot();
    if (!core_.Next(slot)) break;
    out->CommitSlot();
  }
  SyncStats();
  return out->size() > 0;
}

void BatchLeapfrogTriejoinIterator::CloseImpl() {}

void BatchLeapfrogTriejoinIterator::SyncStats() {
  ExecStats& stats = mutable_stats();
  stats.left_reads = build_reads_;
  stats.probes = core_.probes();
  stats.predicate_evals = core_.residual_evals();
}

IteratorPtr MakeLeapfrogIterator(const ExprPtr& expr,
                                 std::vector<IteratorPtr> children) {
  auto iterator = std::make_unique<LeapfrogTriejoinIterator>(
      AnalyzeMultiwayJoin(expr), std::move(children));
  iterator->set_source_expr(expr);
  return iterator;
}

BatchIteratorPtr MakeBatchLeapfrogIterator(
    const ExprPtr& expr, std::vector<BatchIteratorPtr> children,
    size_t batch_capacity) {
  auto iterator = std::make_unique<BatchLeapfrogTriejoinIterator>(
      AnalyzeMultiwayJoin(expr), std::move(children), batch_capacity);
  iterator->set_source_expr(expr);
  return iterator;
}

}  // namespace fro
