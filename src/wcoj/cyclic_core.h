// Cyclic-core detection over query graphs. The paper's Theorem 1 keeps
// the outerjoin shell freely reorderable; the *join-only* part of the
// graph may still be cyclic (triangles, 4-cycles, cliques), and cyclic
// join cores are exactly where binary join plans lose to worst-case-
// optimal multiway evaluation. A cyclic core is a 2-edge-connected
// component of the join-edge subgraph (every edge on some cycle) with
// at least three nodes; bridges and outerjoin edges never belong to
// one. The optimizer collapses each detected core into a single
// kMultiwayJoin node when the cost model agrees.

#ifndef FRO_WCOJ_CYCLIC_CORE_H_
#define FRO_WCOJ_CYCLIC_CORE_H_

#include <cstdint>
#include <vector>

#include "graph/query_graph.h"

namespace fro {

/// One cyclic core of the join-edge subgraph.
struct CyclicCore {
  /// Nodes of the core (graph node indices, as a bitmask).
  uint64_t node_mask = 0;
  /// Indices (into graph.edges()) of the core's join edges — every
  /// non-bridge join edge among the core's nodes.
  std::vector<int> edge_indices;
};

/// Finds every cyclic core: bridges of the join-edge subgraph are
/// removed (outerjoin edges are ignored entirely), and each remaining
/// connected edge component spanning >= 3 nodes is a core. Cores are
/// returned in ascending order of their lowest node index. A forest or
/// a pure chain/star query yields none; parallel join conjuncts cannot
/// fake a cycle because QueryGraph collapses them into one edge.
std::vector<CyclicCore> FindCyclicCores(const QueryGraph& graph);

}  // namespace fro

#endif  // FRO_WCOJ_CYCLIC_CORE_H_
