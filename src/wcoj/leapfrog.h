// Leapfrog triejoin (Veldhuizen, ICDT 2014): a worst-case-optimal
// multiway join over trie indexes. The optimizer plans the join-only
// cyclic core of a query graph as one kMultiwayJoin node (the
// freely-reorderable outerjoin shell stays binary, per the paper's
// core/shell split); this file executes that node.
//
// Execution model: join attributes are grouped into *variables*
// (equivalence classes of the predicate's column=column conjuncts), and
// the operator binds them one at a time in a fixed global order. Every
// operand holds a TrieIndex whose level order lists its variables in
// that global order; binding a variable leapfrogs the participating
// cursors to their next common key. Once every variable is bound, the
// matching row ranges are crossed (bag semantics) and the full join
// predicate is re-evaluated as a residual on each candidate — tries
// compare normalized keys, so the residual restores exact 3VL SQL
// semantics and covers non-equality conjuncts.
//
// Both engines (tuple and batch) drive the same LeapfrogCore, so their
// results and counters agree tuple for tuple. Counter mapping: `probes`
// counts every cursor binary search (leapfrog seeks and steps alike),
// `predicate_evals` the residual evaluations, `left_reads` the rows
// drained from the operands while building tries.

#ifndef FRO_WCOJ_LEAPFROG_H_
#define FRO_WCOJ_LEAPFROG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "algebra/expr.h"
#include "exec/batch_iterator.h"
#include "exec/iterator.h"
#include "relational/predicate.h"
#include "wcoj/trie_index.h"

namespace fro {

/// Execution recipe for one kMultiwayJoin node: the per-operand trie
/// level orders implied by the node's variable order, plus the residual
/// predicate.
struct MultiwaySpec {
  /// Global variable order; entry i is the representative attribute of
  /// variable i (from Expr::mj_var_order()).
  std::vector<AttrId> var_reps;
  /// Per operand: trie level attributes — for each variable the operand
  /// covers (in global order), the operand's member of that variable's
  /// attribute class.
  std::vector<std::vector<AttrId>> child_levels;
  /// Per operand: the global variable index of each trie level
  /// (strictly increasing).
  std::vector<std::vector<int>> child_level_vars;
  /// The node's full predicate, re-evaluated on every candidate.
  PredicatePtr residual;
};

/// Derives the execution spec from a kMultiwayJoin expression: unions
/// the top-level column=column equality conjuncts into attribute
/// classes, maps each variable of expr->mj_var_order() to its class,
/// and picks each operand's member attribute per variable. Conjuncts
/// not captured by the variable order (non-equalities, intra-operand
/// equalities, classes left out of the order) are enforced by the
/// residual, which is always the full predicate.
MultiwaySpec AnalyzeMultiwayJoin(const ExprPtr& expr);

/// The engine-agnostic leapfrog search. Start() binds it to a set of
/// tries (one per operand, level orders matching the spec); Next()
/// produces emitted tuples one at a time — original values, operand
/// scheme order — exactly the bag the reference evaluator's filtered
/// cross product yields.
class LeapfrogCore {
 public:
  /// `tries[c]` must have level order spec.child_levels[c]. Binds the
  /// residual against `out_scheme` (the concatenated operand schemes).
  void Start(const MultiwaySpec& spec, std::vector<const TrieIndex*> tries,
             const Scheme& out_scheme);

  /// Writes the next result into *out; false when exhausted.
  bool Next(Tuple* out);

  /// Binary searches performed by all cursors since Start().
  uint64_t probes() const;
  /// Residual predicate evaluations since Start().
  uint64_t residual_evals() const { return evals_; }

 private:
  bool FindNextAssignment();
  bool OpenVar(size_t v);
  bool AdvanceVar(size_t v);
  bool Align(size_t v);
  void SetupEmission();
  void Materialize(Tuple* out);
  void AdvanceOdometer();

  std::vector<const TrieIndex*> tries_;
  std::vector<TrieCursor> cursors_;
  size_t num_vars_ = 0;
  std::vector<std::vector<size_t>> var_children_;  // operands per variable
  std::vector<size_t> child_num_levels_;
  std::vector<size_t> offset_;  // operand start in the output tuple
  std::vector<size_t> arity_;
  size_t total_arity_ = 0;

  bool has_residual_ = false;
  BoundPredicate residual_;

  // Search / emission state.
  bool started_ = false;
  bool done_ = false;
  bool emitting_ = false;
  bool odo_overflow_ = false;
  std::vector<size_t> range_lo_, range_hi_, idx_;

  uint64_t evals_ = 0;
};

/// Tuple-engine leapfrog triejoin. Open() drains every child pipeline
/// into a materialized relation, builds one trie per operand, and runs
/// the core; the children may be arbitrary subplans (scans, filters,
/// even outerjoin shells under the fuzzer's forced-multiway mode).
class LeapfrogTriejoinIterator : public TupleIterator {
 public:
  LeapfrogTriejoinIterator(MultiwaySpec spec,
                           std::vector<IteratorPtr> children);

  const Scheme& scheme() const override { return out_scheme_; }
  const char* physical_name() const override { return "LeapfrogTriejoin"; }
  std::vector<TupleIterator*> children() const override;

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  void SyncStats();

  MultiwaySpec spec_;
  std::vector<IteratorPtr> children_;
  Scheme out_scheme_;
  std::vector<std::unique_ptr<TrieIndex>> tries_;
  LeapfrogCore core_;
  uint64_t build_reads_ = 0;
};

/// Batch-engine twin; drives the same core, so results and counters
/// match the tuple engine exactly.
class BatchLeapfrogTriejoinIterator : public BatchIterator {
 public:
  BatchLeapfrogTriejoinIterator(MultiwaySpec spec,
                                std::vector<BatchIteratorPtr> children,
                                size_t batch_capacity);

  const Scheme& scheme() const override { return out_scheme_; }
  const char* physical_name() const override { return "LeapfrogTriejoin"; }
  std::vector<BatchIterator*> children() const override;

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  void SyncStats();

  MultiwaySpec spec_;
  std::vector<BatchIteratorPtr> children_;
  Scheme out_scheme_;
  size_t batch_capacity_;
  std::vector<std::unique_ptr<TrieIndex>> tries_;
  LeapfrogCore core_;
  uint64_t build_reads_ = 0;
};

/// Builds the tuple-engine operator for a kMultiwayJoin node whose
/// child subplans have already been built (in mj_children() order).
IteratorPtr MakeLeapfrogIterator(const ExprPtr& expr,
                                 std::vector<IteratorPtr> children);

/// Batch-engine counterpart.
BatchIteratorPtr MakeBatchLeapfrogIterator(
    const ExprPtr& expr, std::vector<BatchIteratorPtr> children,
    size_t batch_capacity);

}  // namespace fro

#endif  // FRO_WCOJ_LEAPFROG_H_
