#include "wcoj/cyclic_core.h"

#include <algorithm>

#include "common/check.h"

namespace fro {

namespace {

/// Bridge finder over the join-edge subgraph (classic low-link DFS).
struct BridgeFinder {
  struct Arc {
    int to;
    int edge;  // index into graph.edges()
  };

  std::vector<std::vector<Arc>> adj;
  std::vector<int> tin, low;
  std::vector<bool> is_bridge;  // indexed by graph edge index
  int timer = 0;

  void Dfs(int node, int via_edge) {
    tin[node] = low[node] = timer++;
    for (const Arc& arc : adj[node]) {
      if (arc.edge == via_edge) continue;
      if (tin[arc.to] >= 0) {
        low[node] = std::min(low[node], tin[arc.to]);
        continue;
      }
      Dfs(arc.to, arc.edge);
      low[node] = std::min(low[node], low[arc.to]);
      if (low[arc.to] > tin[node]) is_bridge[arc.edge] = true;
    }
  }
};

/// Node union-find over the (small) graph.
struct NodeUnionFind {
  std::vector<int> parent;
  explicit NodeUnionFind(int n) : parent(n) {
    for (int i = 0; i < n; ++i) parent[i] = i;
  }
  int Find(int a) {
    while (parent[a] != a) a = parent[a] = parent[parent[a]];
    return a;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

}  // namespace

std::vector<CyclicCore> FindCyclicCores(const QueryGraph& graph) {
  const int n = graph.num_nodes();
  FRO_CHECK_LE(n, 64);

  BridgeFinder finder;
  finder.adj.resize(static_cast<size_t>(n));
  finder.tin.assign(static_cast<size_t>(n), -1);
  finder.low.assign(static_cast<size_t>(n), -1);
  finder.is_bridge.assign(static_cast<size_t>(graph.num_edges()), false);
  for (int e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.directed) continue;  // outerjoin edges never join a core
    finder.adj[static_cast<size_t>(edge.u)].push_back({edge.v, e});
    finder.adj[static_cast<size_t>(edge.v)].push_back({edge.u, e});
  }
  for (int node = 0; node < n; ++node) {
    if (finder.tin[static_cast<size_t>(node)] < 0) finder.Dfs(node, -1);
  }

  // Components of the non-bridge join edges are the 2-edge-connected
  // pieces; those spanning >= 3 nodes are the cyclic cores.
  NodeUnionFind components(n);
  for (int e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.directed || finder.is_bridge[static_cast<size_t>(e)]) continue;
    components.Union(edge.u, edge.v);
  }

  std::vector<CyclicCore> cores;
  std::vector<int> core_of_root(static_cast<size_t>(n), -1);
  for (int e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.directed || finder.is_bridge[static_cast<size_t>(e)]) continue;
    const int root = components.Find(edge.u);
    int& slot = core_of_root[static_cast<size_t>(root)];
    if (slot < 0) {
      slot = static_cast<int>(cores.size());
      cores.emplace_back();
    }
    CyclicCore& core = cores[static_cast<size_t>(slot)];
    core.node_mask |= (uint64_t{1} << edge.u) | (uint64_t{1} << edge.v);
    core.edge_indices.push_back(e);
  }

  cores.erase(std::remove_if(cores.begin(), cores.end(),
                             [](const CyclicCore& core) {
                               return __builtin_popcountll(core.node_mask) < 3;
                             }),
              cores.end());
  std::sort(cores.begin(), cores.end(),
            [](const CyclicCore& a, const CyclicCore& b) {
              return (a.node_mask & -a.node_mask) <
                     (b.node_mask & -b.node_mask);
            });
  return cores;
}

}  // namespace fro
