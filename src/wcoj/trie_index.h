// Sorted multi-level column indexes ("tries") and cursors for the
// leapfrog triejoin (Veldhuizen). A TrieIndex over key attributes
// (a1, ..., ak) stores the relation's rows sorted lexicographically by
// the *normalized* key values (int widened to double, exactly like the
// hash-join key normalization in relational/ops.h), so structural value
// order and equality agree with SQL equality on keys. Rows with a null
// in any key column are excluded: a null never satisfies an equality
// predicate, so they cannot contribute to an equi-join result.
//
// Conceptually the sorted rows form a trie: level d groups rows by their
// first d key values, and every node is a contiguous row range. The
// cursor walks that trie with the classic open/up/next/seek interface,
// each movement a binary search within the current range.

#ifndef FRO_WCOJ_TRIE_INDEX_H_
#define FRO_WCOJ_TRIE_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "relational/database.h"
#include "relational/index_manager.h"
#include "relational/relation.h"

namespace fro {

/// Immutable sorted index over one relation's rows. Emitted tuples keep
/// their ORIGINAL values (normalization is confined to key comparison),
/// so 1 and 1.0 join but are output unchanged.
class TrieIndex : public TrieIndexBase {
 public:
  /// Builds from any relation (base or materialized intermediate).
  /// `level_attrs` must be distinct attributes of the relation's scheme;
  /// it may be empty, in which case the index is a single flat range.
  TrieIndex(const Relation& source, std::vector<AttrId> level_attrs);

  size_t num_rows() const override { return rows_.NumRows(); }
  size_t num_levels() const { return level_attrs_.size(); }
  const std::vector<AttrId>& level_attrs() const { return level_attrs_; }
  const Scheme& scheme() const { return rows_.scheme(); }

  /// Sorted row `i` with original values.
  const Tuple& row(size_t i) const { return rows_.row(i); }

  /// Normalized key of sorted row `i` at `level`.
  const Value& key(size_t level, size_t i) const { return keys_[level][i]; }

  /// Rows scanned from the source while building (the trie-build read
  /// cost charged to ExecStats).
  size_t source_rows() const { return source_rows_; }

 private:
  Relation rows_;                    // sorted; original values
  std::vector<AttrId> level_attrs_;  // level order
  std::vector<std::vector<Value>> keys_;  // [level][sorted row] normalized
  size_t source_rows_ = 0;
};

/// Builds a trie for `(rel, level_attrs)` through `cache` (may be null):
/// a fresh cached trie is returned directly; otherwise a new one is
/// built, adopted into the cache (stamped with the relation's current
/// generation), and returned. The returned pointer is owned by the cache
/// when one was supplied, by `*owned` otherwise.
const TrieIndex* BuildTrieIndex(const Database& db, RelId rel,
                                const std::vector<AttrId>& level_attrs,
                                IndexManager* cache,
                                std::unique_ptr<TrieIndex>* owned);

/// Cursor over a TrieIndex: a stack of nested row ranges, one per open
/// level. Depth -1 (after Reset) is the root covering every row.
///
///   Open()     descend into the current key's rows, positioned at the
///              first distinct key of the next level
///   Up()       ascend one level
///   Next()     advance to the next distinct key at this level
///   SeekGeq(v) least key >= v at this level (leapfrog's seek)
///   AtEnd()    no more keys at this level
///
/// Every movement performs O(log n) comparisons; `seeks()` counts the
/// binary-search operations (leapfrog seeks and steps alike) for the
/// operator's `probes` accounting.
class TrieCursor {
 public:
  explicit TrieCursor(const TrieIndex* index) : index_(index) { Reset(); }

  void Reset();

  int depth() const { return static_cast<int>(levels_.size()) - 1; }

  /// Descends one level; returns false (and stays) if the range under
  /// the current position is empty (only possible on an empty index).
  bool Open();
  void Up();

  bool AtEnd() const;
  /// Current distinct key; requires !AtEnd().
  const Value& Key() const;
  void Next();
  void SeekGeq(const Value& v);

  /// The contiguous row range matching the current key at the current
  /// depth; requires !AtEnd().
  std::pair<size_t, size_t> CurrentRange() const;

  uint64_t seeks() const { return seeks_; }
  void ResetSeeks() { seeks_ = 0; }

 private:
  struct Level {
    size_t lo, hi;    // rows matching the parent prefix
    size_t pos;       // start of the current key's run
    size_t run_end;   // end of the current key's run
  };

  size_t UpperBound(size_t level, size_t lo, size_t hi, const Value& v);
  size_t LowerBound(size_t level, size_t lo, size_t hi, const Value& v);

  const TrieIndex* index_;
  std::vector<Level> levels_;
  uint64_t seeks_ = 0;
};

}  // namespace fro

#endif  // FRO_WCOJ_TRIE_INDEX_H_
