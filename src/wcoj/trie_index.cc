#include "wcoj/trie_index.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "relational/ops.h"

namespace fro {

TrieIndex::TrieIndex(const Relation& source,
                     std::vector<AttrId> level_attrs)
    : level_attrs_(std::move(level_attrs)) {
  source_rows_ = source.NumRows();
  std::vector<int> key_pos;
  key_pos.reserve(level_attrs_.size());
  for (AttrId attr : level_attrs_) {
    const int pos = source.scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0) << "trie level attr missing from scheme";
    key_pos.push_back(pos);
  }

  // Surviving rows: no null in any key column (nulls never equi-join).
  std::vector<uint32_t> order;
  order.reserve(source.NumRows());
  for (size_t i = 0; i < source.NumRows(); ++i) {
    bool has_null_key = false;
    for (int pos : key_pos) {
      if (source.row(i).value(static_cast<size_t>(pos)).is_null()) {
        has_null_key = true;
        break;
      }
    }
    if (!has_null_key) order.push_back(static_cast<uint32_t>(i));
  }

  // Normalized keys per level, gathered before sorting so the comparator
  // is a flat lookup.
  std::vector<std::vector<Value>> raw(level_attrs_.size());
  for (size_t l = 0; l < level_attrs_.size(); ++l) {
    raw[l].reserve(order.size());
    for (uint32_t r : order) {
      raw[l].push_back(NormalizeHashKeyValue(
          source.row(r).value(static_cast<size_t>(key_pos[l]))));
    }
  }
  std::vector<uint32_t> perm(order.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t l = 0; l < raw.size(); ++l) {
                       if (raw[l][a] < raw[l][b]) return true;
                       if (raw[l][b] < raw[l][a]) return false;
                     }
                     return false;
                   });

  rows_ = Relation(source.scheme());
  rows_.Reserve(perm.size());
  keys_.assign(level_attrs_.size(), {});
  for (auto& level : keys_) level.reserve(perm.size());
  for (uint32_t p : perm) {
    rows_.AddRow(source.row(order[p]));
    for (size_t l = 0; l < keys_.size(); ++l) {
      keys_[l].push_back(std::move(raw[l][p]));
    }
  }
}

const TrieIndex* BuildTrieIndex(const Database& db, RelId rel,
                                const std::vector<AttrId>& level_attrs,
                                IndexManager* cache,
                                std::unique_ptr<TrieIndex>* owned) {
  if (cache != nullptr) {
    if (const TrieIndexBase* hit = cache->FindTrie(db, rel, level_attrs)) {
      return static_cast<const TrieIndex*>(hit);
    }
    auto built = std::make_unique<TrieIndex>(db.relation(rel), level_attrs);
    const TrieIndex* out = built.get();
    cache->AdoptTrie(db, rel, level_attrs, std::move(built));
    return out;
  }
  FRO_CHECK(owned != nullptr);
  *owned = std::make_unique<TrieIndex>(db.relation(rel), level_attrs);
  return owned->get();
}

void TrieCursor::Reset() {
  levels_.clear();
  seeks_ = 0;
}

size_t TrieCursor::UpperBound(size_t level, size_t lo, size_t hi,
                              const Value& v) {
  ++seeks_;
  size_t n = hi - lo;
  while (n > 0) {
    const size_t half = n / 2;
    const size_t mid = lo + half;
    if (v < index_->key(level, mid)) {
      n = half;
    } else {
      lo = mid + 1;
      n -= half + 1;
    }
  }
  return lo;
}

size_t TrieCursor::LowerBound(size_t level, size_t lo, size_t hi,
                              const Value& v) {
  ++seeks_;
  size_t n = hi - lo;
  while (n > 0) {
    const size_t half = n / 2;
    const size_t mid = lo + half;
    if (index_->key(level, mid) < v) {
      lo = mid + 1;
      n -= half + 1;
    } else {
      n = half;
    }
  }
  return lo;
}

bool TrieCursor::Open() {
  size_t lo, hi;
  if (levels_.empty()) {
    lo = 0;
    hi = index_->num_rows();
  } else {
    const Level& top = levels_.back();
    FRO_CHECK_LT(top.pos, top.hi) << "Open() past the end of a level";
    lo = top.pos;
    hi = top.run_end;
  }
  if (lo >= hi) return false;
  FRO_CHECK_LT(levels_.size(), index_->num_levels());
  Level level;
  level.lo = lo;
  level.hi = hi;
  level.pos = lo;
  level.run_end =
      UpperBound(levels_.size(), lo, hi, index_->key(levels_.size(), lo));
  levels_.push_back(level);
  return true;
}

void TrieCursor::Up() {
  FRO_CHECK(!levels_.empty());
  levels_.pop_back();
}

bool TrieCursor::AtEnd() const {
  FRO_CHECK(!levels_.empty());
  return levels_.back().pos >= levels_.back().hi;
}

const Value& TrieCursor::Key() const {
  const Level& top = levels_.back();
  FRO_CHECK_LT(top.pos, top.hi);
  return index_->key(levels_.size() - 1, top.pos);
}

void TrieCursor::Next() {
  Level& top = levels_.back();
  FRO_CHECK_LT(top.pos, top.hi);
  top.pos = top.run_end;
  if (top.pos < top.hi) {
    top.run_end = UpperBound(levels_.size() - 1, top.pos, top.hi,
                             index_->key(levels_.size() - 1, top.pos));
  }
}

void TrieCursor::SeekGeq(const Value& v) {
  Level& top = levels_.back();
  top.pos = LowerBound(levels_.size() - 1, top.pos, top.hi, v);
  if (top.pos < top.hi) {
    top.run_end = UpperBound(levels_.size() - 1, top.pos, top.hi,
                             index_->key(levels_.size() - 1, top.pos));
  }
}

std::pair<size_t, size_t> TrieCursor::CurrentRange() const {
  const Level& top = levels_.back();
  FRO_CHECK_LT(top.pos, top.hi);
  return {top.pos, top.run_end};
}

}  // namespace fro
