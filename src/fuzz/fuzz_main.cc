// fro_fuzz: differential + metamorphic fuzzing driver.
//
// Modes:
//   fro_fuzz --seed S --cases N        fuzz N flat-algebra cases derived
//                                      from master seed S (the default)
//   fro_fuzz --case-seed X             run exactly one case seed
//   fro_fuzz --replay FILE             replay a tests/corpus/*.case file
//   fro_fuzz --nested N [--server]     N full-stack Section 5 cases
//                                      (parser -> session), optionally
//                                      round-tripped through a live TCP
//                                      server
//
// Every failing case prints its case seed (replayable with --case-seed),
// is shrunk to a minimal repro (disable with --no-shrink), and — when
// --corpus-out DIR is given — written as a .case file for check-in.
// Exit status: 0 when every case is divergence-free, 1 otherwise.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "exec/batch.h"
#include "fuzz/case_gen.h"
#include "fuzz/corpus.h"
#include "fuzz/differential.h"
#include "fuzz/shrink.h"
#include "server/client.h"
#include "server/server.h"
#include "server/session.h"
#include "testing/nested_gen.h"

namespace fro {
namespace {

struct FuzzArgs {
  uint64_t seed = 1;
  int cases = 100;
  bool have_case_seed = false;
  uint64_t case_seed = 0;
  double time_budget_s = 0;  // 0 = unlimited
  FuzzProfile profile = FuzzProfile::kNumProfiles;
  bool shrink = true;
  std::string corpus_out;
  std::string replay;
  int nested = 0;
  bool server = false;
  int max_failures = 5;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: fro_fuzz [--seed S] [--cases N] [--case-seed X]\n"
      "                [--time-budget-s T] [--profile NAME] [--no-shrink]\n"
      "                [--corpus-out DIR] [--replay FILE]\n"
      "                [--nested N] [--server] [--max-failures K]\n");
}

bool ParseArgs(int argc, char** argv, FuzzArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--cases") {
      const char* v = next();
      if (v == nullptr) return false;
      args->cases = std::atoi(v);
    } else if (arg == "--case-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->have_case_seed = true;
      args->case_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--time-budget-s") {
      const char* v = next();
      if (v == nullptr) return false;
      args->time_budget_s = std::atof(v);
    } else if (arg == "--profile") {
      const char* v = next();
      if (v == nullptr) return false;
      args->profile = FuzzProfileFromName(v);
      if (args->profile == FuzzProfile::kNumProfiles) {
        std::fprintf(stderr, "unknown profile '%s'\n", v);
        return false;
      }
    } else if (arg == "--no-shrink") {
      args->shrink = false;
    } else if (arg == "--corpus-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->corpus_out = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      args->replay = v;
    } else if (arg == "--nested") {
      const char* v = next();
      if (v == nullptr) return false;
      args->nested = std::atoi(v);
    } else if (arg == "--server") {
      args->server = true;
    } else if (arg == "--max-failures") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_failures = std::atoi(v);
    } else {
      Usage();
      return false;
    }
  }
  return true;
}

// Prints a failing case: the report, the shrunken repro, and (when
// requested) the corpus file written.
void ReportFailure(const FuzzCase& fuzz_case, const DiffReport& report,
                   const FuzzArgs& args) {
  std::printf("FAIL case-seed 0x%llx profile %s\n%s\n",
              static_cast<unsigned long long>(fuzz_case.seed),
              FuzzProfileName(fuzz_case.profile),
              report.ToString().c_str());
  const std::string& check = report.divergences.front().check;
  const FuzzCase* repro = &fuzz_case;
  FuzzCase shrunk;
  if (args.shrink) {
    ShrinkStats stats;
    shrunk = ShrinkCase(fuzz_case, check, DiffOptions(), &stats);
    repro = &shrunk;
    std::printf(
        "shrunk for [%s] to %zu tuple(s) (%d reductions, %d evals):\n%s\n",
        check.c_str(), CaseTupleCount(shrunk), stats.accepted_reductions,
        stats.property_evaluations, CorpusCaseToText(shrunk, check).c_str());
  }
  if (!args.corpus_out.empty()) {
    Result<std::string> path = SaveCorpusCase(*repro, check, args.corpus_out);
    if (path.ok()) {
      std::printf("repro written to %s\n", path->c_str());
    } else {
      std::printf("corpus write failed: %s\n",
                  path.status().ToString().c_str());
    }
  }
}

int RunReplay(const FuzzArgs& args) {
  Result<CorpusCase> loaded = LoadCorpusCase(args.replay);
  if (!loaded.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 loaded.status().ToString().c_str());
    return 2;
  }
  DiffReport report = RunDifferential(loaded->fuzz_case);
  std::printf("%s: %s\n", args.replay.c_str(), report.ToString().c_str());
  return report.ok() ? 0 : 1;
}

// Full-stack Section 5 cases: the same query text served by the tuple-
// and batch-engine sessions must agree; with --server it must also
// round-trip unchanged through a live TCP server.
int RunNestedCases(const FuzzArgs& args) {
  int failures = 0;
  for (int i = 0; i < args.nested; ++i) {
    const uint64_t case_seed = DeriveSeed(args.seed ^ 0x6e657374, i);
    Rng rng(case_seed);
    RandomNestedOptions gen_options;
    GeneratedNestedQuery generated =
        GenerateRandomNestedQuery(gen_options, &rng);

    SessionOptions tuple_options;
    tuple_options.engine = ExecEngine::kTuple;
    QuerySession tuple_session(&generated.db, nullptr, nullptr,
                               tuple_options);
    QuerySession batch_session(&generated.db, nullptr, nullptr);
    Request request;
    request.verb = Verb::kQuery;
    request.argument = generated.query_text;
    Response tuple_response = tuple_session.Execute(request, nullptr);
    Response batch_response = batch_session.Execute(request, nullptr);
    bool diverged = false;
    if (tuple_response.status.ok() != batch_response.status.ok() ||
        tuple_response.body != batch_response.body) {
      std::printf(
          "FAIL nested-seed 0x%llx engines disagree\nquery: %s\n"
          "tuple: %s\nbatch: %s\n",
          static_cast<unsigned long long>(case_seed),
          generated.query_text.c_str(), tuple_response.body.c_str(),
          batch_response.body.c_str());
      diverged = true;
    }
    if (args.server && !diverged) {
      FroServer server(&generated.db, ServerOptions());
      Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     started.ToString().c_str());
        return 2;
      }
      FroClient client;
      Status connected = client.Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     connected.ToString().c_str());
        server.Stop();
        return 2;
      }
      Result<Response> remote = client.Query(generated.query_text);
      if (!remote.ok() ||
          remote->status.ok() != batch_response.status.ok() ||
          remote->body != batch_response.body) {
        std::printf(
            "FAIL nested-seed 0x%llx server round-trip disagrees\n"
            "query: %s\nlocal: %s\nserver: %s\n",
            static_cast<unsigned long long>(case_seed),
            generated.query_text.c_str(), batch_response.body.c_str(),
            remote.ok() ? remote->body.c_str() : "<transport error>");
        diverged = true;
      }
      server.Stop();
    }
    if (diverged && ++failures >= args.max_failures) break;
  }
  std::printf("nested: %d case(s), %d failure(s)\n", args.nested, failures);
  return failures == 0 ? 0 : 1;
}

int RunFlatCases(const FuzzArgs& args) {
  const auto start = std::chrono::steady_clock::now();
  auto out_of_budget = [&]() {
    if (args.time_budget_s <= 0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= args.time_budget_s;
  };

  int failures = 0;
  int ran = 0;
  uint64_t checks = 0;
  const int total = args.have_case_seed ? 1 : args.cases;
  for (int i = 0; i < total; ++i) {
    if (out_of_budget()) break;
    const uint64_t case_seed =
        args.have_case_seed ? args.case_seed : DeriveSeed(args.seed, i);
    FuzzCase fuzz_case = GenerateFuzzCase(case_seed, args.profile);
    DiffReport report = RunDifferential(fuzz_case);
    ++ran;
    checks += report.checks_run;
    if (!report.ok()) {
      ReportFailure(fuzz_case, report, args);
      if (++failures >= args.max_failures) {
        std::printf("stopping after %d failure(s)\n", failures);
        break;
      }
    }
    if (ran % 100 == 0) {
      std::printf("... %d/%d cases, %llu checks, %d failure(s)\n", ran,
                  total, static_cast<unsigned long long>(checks), failures);
      std::fflush(stdout);
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::printf(
      "flat: %d case(s), %llu checks, %d failure(s) in %.1fs (seed 0x%llx)\n",
      ran, static_cast<unsigned long long>(checks), failures,
      elapsed.count(), static_cast<unsigned long long>(args.seed));
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  FuzzArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (!args.replay.empty()) return RunReplay(args);
  int status = 0;
  if (args.cases > 0 || args.have_case_seed) {
    status = RunFlatCases(args);
  }
  if (args.nested > 0) {
    const int nested_status = RunNestedCases(args);
    if (status == 0) status = nested_status;
  }
  return status;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
