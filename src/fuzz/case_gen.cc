#include "fuzz/case_gen.h"

#include <vector>

#include "common/check.h"
#include "enumerate/it_enum.h"
#include "testing/graphgen.h"

namespace fro {

namespace {

const char* kProfileNames[] = {
    "nice-strong",    "null-heavy",  "weak-preds",
    "join-at-null",   "two-in-edges", "oj-cycle",
    "cyclic-core",    "dupfree-goj", "empty-relations",
    "wide-scheme",    "graph-pattern", "acyclic-chain",
};
static_assert(sizeof(kProfileNames) / sizeof(kProfileNames[0]) ==
              static_cast<size_t>(FuzzProfile::kNumProfiles));

RandomQueryOptions OptionsFor(FuzzProfile profile, Rng* rng) {
  RandomQueryOptions options;
  options.num_relations = 2 + static_cast<int>(rng->Uniform(5));  // 2..6
  options.attrs_per_rel = 1 + static_cast<int>(rng->Uniform(3));  // 1..3
  options.rows.rows_min = 0;
  options.rows.rows_max = 6;
  options.rows.domain = 2 + static_cast<int>(rng->Uniform(4));
  options.rows.null_prob = 0.15;

  switch (profile) {
    case FuzzProfile::kNiceStrong:
      break;
    case FuzzProfile::kNullHeavy:
      options.rows.null_prob = 0.45;
      options.rows.domain = 2;
      break;
    case FuzzProfile::kWeakPreds:
      options.oj_fraction = 0.8;
      options.weak_pred_prob = 0.6;
      options.rows.null_prob = 0.3;
      break;
    case FuzzProfile::kJoinAtNullSupplied:
      options.num_relations = 3 + static_cast<int>(rng->Uniform(3));
      options.violation = RandomQueryOptions::Violation::kJoinAtNullSupplied;
      break;
    case FuzzProfile::kTwoInEdges:
      options.num_relations = 3 + static_cast<int>(rng->Uniform(3));
      options.violation = RandomQueryOptions::Violation::kTwoInEdges;
      break;
    case FuzzProfile::kOjCycle:
      options.num_relations = 3 + static_cast<int>(rng->Uniform(3));
      options.oj_fraction = 0.9;
      options.violation = RandomQueryOptions::Violation::kOjCycle;
      break;
    case FuzzProfile::kCyclicCore:
      options.extra_join_edge_prob = 0.6;
      options.oj_fraction = 0.25;
      break;
    case FuzzProfile::kDupFreeGoj:
      options.num_relations = 3 + static_cast<int>(rng->Uniform(3));
      options.violation = RandomQueryOptions::Violation::kJoinAtNullSupplied;
      options.rows.unique_rows = true;
      options.rows.rows_min = 1;
      break;
    case FuzzProfile::kEmptyRelations:
      options.rows.rows_max = 2;
      break;
    case FuzzProfile::kWideScheme:
      // Wide rows exercise the batch engine's columnar side: per-column
      // transposition, null-mask propagation across many attributes, and
      // column demotion when types mix. Null density is itself drawn per
      // case so the corpus spans near-dense to near-half-null columns.
      options.num_relations = 2 + static_cast<int>(rng->Uniform(2));
      options.attrs_per_rel = 10 + static_cast<int>(rng->Uniform(11));
      options.rows.null_prob = 0.05 + 0.1 * static_cast<double>(
                                                rng->Uniform(5));
      break;
    case FuzzProfile::kGraphPattern: {
      // A fixed chordless cycle core (the wcoj rewrite collapses it to a
      // leapfrog multiway join) with 0-2 outerjoin shell nodes hanging
      // off. Skewed, null-heavy keys on a tiny domain make heavy hitters
      // likely, which is where binary plans over cyclic cores blow up and
      // where null-key trie exclusion must stay semantics-preserving.
      options.core_shape =
          rng->Bernoulli(0.5) ? RandomQueryOptions::CoreShape::kTriangle
                              : RandomQueryOptions::CoreShape::kFourCycle;
      const int cycle_len =
          options.core_shape == RandomQueryOptions::CoreShape::kTriangle
              ? 3
              : 4;
      options.num_relations = cycle_len + static_cast<int>(rng->Uniform(3));
      options.rows.rows_min = 1;
      options.rows.rows_max = 8;
      options.rows.domain = 3;
      options.rows.null_prob = 0.3;
      options.rows.skew = 2;
      break;
    }
    case FuzzProfile::kAcyclicChain: {
      // A chordless join chain (the canonical GYO-reducible core) with
      // 0-2 outerjoin shell nodes. Skewed many-to-many keys on a tiny
      // domain make dangling tuples plentiful, which is exactly where
      // Yannakakis semijoin reduction diverges from binary plans if it
      // drops or double-counts anything; nulls keep the 3VL path hot.
      options.core_shape = RandomQueryOptions::CoreShape::kChain;
      options.chain_length = 3 + static_cast<int>(rng->Uniform(2));  // 3..4
      options.num_relations =
          options.chain_length + static_cast<int>(rng->Uniform(3));
      options.rows.rows_min = 1;
      options.rows.rows_max = 8;
      options.rows.domain = 3;
      options.rows.null_prob = 0.25;
      options.rows.skew = 2;
      break;
    }
    case FuzzProfile::kNumProfiles:
      FRO_CHECK(false);
  }
  return options;
}

// A random restriction over the attributes visible in `query`: a
// comparison against a small literal, an IS NULL, or its negation.
// Strong comparisons above an outerjoin are what trigger the Section 4
// simplification inside the optimizer.
PredicatePtr RandomRestriction(const ExprPtr& query, Rng* rng) {
  const std::vector<AttrId>& attrs = query->attrs().ids();
  FRO_CHECK(!attrs.empty());
  AttrId attr = attrs[rng->Uniform(attrs.size())];
  switch (rng->Uniform(4)) {
    case 0:
      return Predicate::IsNull(Operand::Column(attr));
    case 1:
      return Predicate::Not(Predicate::IsNull(Operand::Column(attr)));
    case 2:
      return CmpLit(CmpOp::kNe, attr,
                    Value::Int(rng->UniformInt(0, 3)));
    default:
      return CmpLit(CmpOp::kEq, attr,
                    Value::Int(rng->UniformInt(0, 3)));
  }
}

}  // namespace

const char* FuzzProfileName(FuzzProfile profile) {
  const size_t index = static_cast<size_t>(profile);
  FRO_CHECK_LT(index, static_cast<size_t>(FuzzProfile::kNumProfiles));
  return kProfileNames[index];
}

FuzzProfile FuzzProfileFromName(const std::string& name) {
  for (size_t i = 0; i < static_cast<size_t>(FuzzProfile::kNumProfiles);
       ++i) {
    if (name == kProfileNames[i]) return static_cast<FuzzProfile>(i);
  }
  return FuzzProfile::kNumProfiles;
}

FuzzCase GenerateFuzzCase(uint64_t seed, FuzzProfile pinned) {
  // Bounded retry: a violation profile occasionally yields a graph with
  // no implementing tree (RandomIt returns null). Each attempt draws
  // from an independent derived stream so retries stay reproducible.
  for (uint64_t attempt = 0;; ++attempt) {
    Rng rng(DeriveSeed(seed, attempt));
    FuzzProfile profile =
        pinned != FuzzProfile::kNumProfiles
            ? pinned
            : static_cast<FuzzProfile>(rng.Uniform(
                  static_cast<uint64_t>(FuzzProfile::kNumProfiles)));
    // After repeated failures fall back to the always-realizable profile.
    if (attempt >= 8) profile = FuzzProfile::kNiceStrong;

    RandomQueryOptions options = OptionsFor(profile, &rng);
    GeneratedQuery generated = GenerateRandomQuery(options, &rng);
    ExprPtr query = RandomIt(generated.graph, *generated.db, &rng);
    if (query == nullptr) continue;

    if (rng.Bernoulli(0.3)) {
      query = Expr::Restrict(query, RandomRestriction(query, &rng));
    }

    FuzzCase out;
    out.seed = seed;
    out.profile = profile;
    out.db = std::move(generated.db);
    out.query = std::move(query);
    return out;
  }
}

}  // namespace fro
