#include "fuzz/oracle.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace fro {

namespace {

// True iff `pred` evaluates to True (not Unknown) on the concatenation
// (l, r) under the concatenated scheme. A null predicate is a cartesian
// operator: everything matches.
bool Matches(const PredicatePtr& pred, const Tuple& l, const Tuple& r,
             const Scheme& joint) {
  if (pred == nullptr) return true;
  return IsTrue(pred->Eval(l.Concat(r), joint));
}

// The filtered cross product over the concatenated scheme.
Relation BruteJoin(const Relation& left, const Relation& right,
                   const PredicatePtr& pred) {
  Relation out(left.scheme().Concat(right.scheme()));
  for (const Tuple& l : left.rows()) {
    for (const Tuple& r : right.rows()) {
      if (Matches(pred, l, r, out.scheme())) out.AddRow(l.Concat(r));
    }
  }
  return out;
}

// Whether tuple `probe` of `probe_side` has any partner in `other`.
// `probe_on_left` fixes the concatenation order the predicate sees.
bool HasPartner(const Tuple& probe, const Relation& probe_side,
                const Relation& other, const PredicatePtr& pred,
                bool probe_on_left) {
  const Scheme joint = probe_on_left
                           ? probe_side.scheme().Concat(other.scheme())
                           : other.scheme().Concat(probe_side.scheme());
  for (const Tuple& o : other.rows()) {
    const Tuple joined = probe_on_left ? probe.Concat(o) : o.Concat(probe);
    if (pred == nullptr || IsTrue(pred->Eval(joined, joint))) return true;
  }
  return false;
}

Relation BruteOuterJoin(const Relation& left, const Relation& right,
                        const PredicatePtr& pred, bool preserves_left) {
  Relation out = BruteJoin(left, right, pred);
  const size_t left_arity = left.scheme().size();
  const size_t right_arity = right.scheme().size();
  if (preserves_left) {
    for (const Tuple& l : left.rows()) {
      if (!HasPartner(l, left, right, pred, /*probe_on_left=*/true)) {
        out.AddRow(l.Concat(Tuple::Nulls(right_arity)));
      }
    }
  } else {
    for (const Tuple& r : right.rows()) {
      if (!HasPartner(r, right, left, pred, /*probe_on_left=*/false)) {
        out.AddRow(Tuple::Nulls(left_arity).Concat(r));
      }
    }
  }
  return out;
}

Relation BruteSemiAnti(const Relation& left, const Relation& right,
                       const PredicatePtr& pred, bool keeps_left,
                       bool want_partner) {
  const Relation& kept = keeps_left ? left : right;
  const Relation& other = keeps_left ? right : left;
  Relation out(kept.scheme());
  for (const Tuple& k : kept.rows()) {
    if (HasPartner(k, kept, other, pred, /*probe_on_left=*/keeps_left) ==
        want_partner) {
      out.AddRow(k);
    }
  }
  return out;
}

// Eq. 14: JN[p](L, R)  ∪  { (s padded with nulls) : s a distinct
// S-projection of L not appearing among the join's S-projections }.
Relation BruteGoj(const Relation& left, const Relation& right,
                  const PredicatePtr& pred, const AttrSet& subset) {
  Relation out = BruteJoin(left, right, pred);
  const Scheme& joint = out.scheme();

  auto project_s = [&subset](const Tuple& row, const Scheme& scheme) {
    std::vector<Value> values;
    values.reserve(subset.size());
    for (AttrId attr : subset) {
      int pos = scheme.IndexOf(attr);
      FRO_CHECK_GE(pos, 0);
      values.push_back(row.value(static_cast<size_t>(pos)));
    }
    return Tuple(std::move(values));
  };

  std::vector<Tuple> joined_projections;
  joined_projections.reserve(out.NumRows());
  for (const Tuple& j : out.rows()) {
    joined_projections.push_back(project_s(j, joint));
  }
  std::sort(joined_projections.begin(), joined_projections.end());

  // Distinct S-projections of L, in first-appearance order.
  std::vector<Tuple> left_projections;
  for (const Tuple& l : left.rows()) {
    Tuple p = project_s(l, left.scheme());
    if (std::find(left_projections.begin(), left_projections.end(), p) ==
        left_projections.end()) {
      left_projections.push_back(std::move(p));
    }
  }

  for (const Tuple& p : left_projections) {
    if (std::binary_search(joined_projections.begin(),
                           joined_projections.end(), p)) {
      continue;
    }
    std::vector<Value> values(joint.size());
    size_t s_index = 0;
    for (AttrId attr : subset) {
      values[static_cast<size_t>(joint.IndexOf(attr))] = p.value(s_index++);
    }
    out.AddRow(std::move(values));
  }
  return out;
}

// Padding and union written out longhand (not via BagUnionPadded): the
// union scheme is the sorted set of both schemes' attributes; each row
// maps its values across and leaves the rest null.
Relation BruteUnion(const Relation& left, const Relation& right) {
  std::vector<AttrId> cols = left.scheme().cols();
  for (AttrId attr : right.scheme().cols()) {
    if (std::find(cols.begin(), cols.end(), attr) == cols.end()) {
      cols.push_back(attr);
    }
  }
  std::sort(cols.begin(), cols.end());
  Relation out((Scheme(cols)));
  auto add_padded = [&out](const Relation& source) {
    for (const Tuple& row : source.rows()) {
      std::vector<Value> values(out.scheme().size());
      for (size_t c = 0; c < source.scheme().size(); ++c) {
        values[static_cast<size_t>(
            out.scheme().IndexOf(source.scheme().col(c)))] = row.value(c);
      }
      out.AddRow(std::move(values));
    }
  };
  add_padded(left);
  add_padded(right);
  return out;
}

Relation BruteRestrict(const Relation& input, const PredicatePtr& pred) {
  Relation out(input.scheme());
  for (const Tuple& row : input.rows()) {
    if (IsTrue(pred->Eval(row, input.scheme()))) out.AddRow(row);
  }
  return out;
}

Relation BruteProject(const Relation& input, const std::vector<AttrId>& cols,
                      bool dedup) {
  Relation out((Scheme(cols)));
  for (const Tuple& row : input.rows()) {
    std::vector<Value> values;
    values.reserve(cols.size());
    for (AttrId attr : cols) {
      values.push_back(row.value(static_cast<size_t>(
          input.scheme().IndexOf(attr))));
    }
    Tuple projected(std::move(values));
    if (dedup &&
        std::find(out.rows().begin(), out.rows().end(), projected) !=
            out.rows().end()) {
      continue;
    }
    out.AddRow(std::move(projected));
  }
  return out;
}

}  // namespace

Relation OracleEval(const ExprPtr& expr, const Database& db) {
  FRO_CHECK(expr != nullptr);
  switch (expr->kind()) {
    case OpKind::kLeaf:
      return db.relation(expr->rel());
    case OpKind::kJoin:
      return BruteJoin(OracleEval(expr->left(), db),
                       OracleEval(expr->right(), db), expr->pred());
    case OpKind::kOuterJoin:
      return BruteOuterJoin(OracleEval(expr->left(), db),
                            OracleEval(expr->right(), db), expr->pred(),
                            expr->preserves_left());
    case OpKind::kAntijoin:
      return BruteSemiAnti(OracleEval(expr->left(), db),
                           OracleEval(expr->right(), db), expr->pred(),
                           expr->preserves_left(), /*want_partner=*/false);
    case OpKind::kSemijoin:
      return BruteSemiAnti(OracleEval(expr->left(), db),
                           OracleEval(expr->right(), db), expr->pred(),
                           expr->preserves_left(), /*want_partner=*/true);
    case OpKind::kGoj:
      return BruteGoj(OracleEval(expr->left(), db),
                      OracleEval(expr->right(), db), expr->pred(),
                      expr->goj_subset());
    case OpKind::kUnion:
      return BruteUnion(OracleEval(expr->left(), db),
                        OracleEval(expr->right(), db));
    case OpKind::kRestrict:
      return BruteRestrict(OracleEval(expr->left(), db), expr->pred());
    case OpKind::kProject:
      return BruteProject(OracleEval(expr->left(), db),
                          expr->project_cols(), expr->project_dedup());
  }
  FRO_CHECK(false) << "unreachable operator kind";
  return Relation();
}

}  // namespace fro
