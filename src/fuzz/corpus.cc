#include "fuzz/corpus.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "algebra/parse.h"
#include "relational/text_io.h"

namespace fro {

namespace {

std::string SeedToHex(uint64_t seed) {
  std::ostringstream out;
  out << "0x" << std::hex << seed;
  return out.str();
}

// File-name-safe form of a check name ("bt:reassoc" -> "bt-reassoc").
std::string Slug(const std::string& check) {
  std::string out = check;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '-';
  }
  return out;
}

}  // namespace

std::string CorpusCaseToText(const FuzzCase& fuzz_case,
                             const std::string& check) {
  std::string out = "# fro_fuzz corpus case\n";
  out += "meta seed " + SeedToHex(fuzz_case.seed) + " profile " +
         FuzzProfileName(fuzz_case.profile);
  if (!check.empty()) out += " check " + check;
  out += "\n";
  out += DatabaseToText(*fuzz_case.db);
  out += "query " +
         fuzz_case.query->ToString(&fuzz_case.db->catalog(),
                                   /*with_preds=*/true) +
         "\n";
  return out;
}

Result<CorpusCase> ParseCorpusCase(const std::string& text) {
  std::string db_text;
  std::string query_text;
  CorpusCase out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("meta ", 0) == 0) {
      std::istringstream meta(line.substr(5));
      std::string key, value;
      while (meta >> key >> value) {
        if (key == "seed") {
          out.fuzz_case.seed = std::stoull(value, nullptr, 0);
        } else if (key == "profile") {
          FuzzProfile profile = FuzzProfileFromName(value);
          if (profile != FuzzProfile::kNumProfiles) {
            out.fuzz_case.profile = profile;
          }
        } else if (key == "check") {
          out.check = value;
        }
      }
      continue;
    }
    if (line.rfind("query ", 0) == 0) {
      if (!query_text.empty()) {
        return InvalidArgument("multiple query lines in corpus case");
      }
      query_text = line.substr(6);
      continue;
    }
    db_text += line;
    db_text += '\n';
  }
  if (query_text.empty()) {
    return InvalidArgument("corpus case has no query line");
  }
  FRO_ASSIGN_OR_RETURN(out.fuzz_case.db, LoadDatabaseText(db_text));
  FRO_ASSIGN_OR_RETURN(out.fuzz_case.query,
                       ParseAlgebra(query_text, *out.fuzz_case.db));
  return out;
}

Result<CorpusCase> LoadCorpusCase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return InvalidArgument("cannot open corpus file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCorpusCase(buffer.str());
}

Result<std::string> SaveCorpusCase(const FuzzCase& fuzz_case,
                                   const std::string& check,
                                   const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string name = "seed-" + SeedToHex(fuzz_case.seed);
  if (!check.empty()) name += "-" + Slug(check);
  std::string path = (std::filesystem::path(dir) / (name + ".case")).string();
  std::ofstream out(path);
  if (!out) return InvalidArgument("cannot write corpus file: " + path);
  out << CorpusCaseToText(fuzz_case, check);
  return path;
}

std::vector<std::string> ListCorpusFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".case") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fro
