#include "fuzz/shrink.h"

#include <string>
#include <vector>

#include "algebra/transform.h"
#include "common/check.h"
#include "common/str_util.h"

namespace fro {

namespace {

// Deep-copies a database. Relations and attributes are re-registered in
// id order, so every RelId / AttrId (and therefore the query expression)
// stays valid against the clone.
std::unique_ptr<Database> CloneDatabase(const Database& db) {
  auto clone = std::make_unique<Database>();
  for (RelId rel = 0; rel < static_cast<RelId>(db.num_relations()); ++rel) {
    const std::string& rel_name = db.catalog().RelationName(rel);
    std::vector<std::string> cols;
    for (AttrId attr : db.catalog().RelationAttrs(rel)) {
      // Attribute names are interned qualified ("rel.attr"); AddRelation
      // wants the bare column name.
      const std::string& qualified = db.catalog().AttrName(attr);
      cols.push_back(qualified.substr(rel_name.size() + 1));
    }
    Result<RelId> added = clone->AddRelation(rel_name, cols);
    FRO_CHECK(added.ok() && *added == rel);
    clone->SetRows(rel, db.relation(rel).rows());
  }
  return clone;
}

FuzzCase CloneCase(const FuzzCase& fuzz_case) {
  FuzzCase out;
  out.seed = fuzz_case.seed;
  out.profile = fuzz_case.profile;
  out.db = CloneDatabase(*fuzz_case.db);
  out.query = fuzz_case.query;
  return out;
}

// Drops every conjunct (or lone predicate) referencing any attribute in
// `dropped`; an emptied conjunction collapses to TRUE.
PredicatePtr PrunePredicate(const PredicatePtr& pred,
                            const AttrSet& dropped) {
  if (pred == nullptr) return nullptr;
  std::vector<PredicatePtr> kept;
  for (const PredicatePtr& conjunct : pred->Conjuncts(pred)) {
    if (!conjunct->References().Overlaps(dropped)) kept.push_back(conjunct);
  }
  return Predicate::And(std::move(kept));
}

// Rebuilds a join-like or restrict node with a new predicate.
ExprPtr WithPredicate(const Expr& node, ExprPtr left, ExprPtr right,
                      PredicatePtr pred) {
  switch (node.kind()) {
    case OpKind::kJoin:
      return Expr::Join(std::move(left), std::move(right), std::move(pred));
    case OpKind::kOuterJoin:
      return Expr::OuterJoin(std::move(left), std::move(right),
                             std::move(pred), node.preserves_left());
    case OpKind::kAntijoin:
      return Expr::Antijoin(std::move(left), std::move(right),
                            std::move(pred), node.preserves_left());
    case OpKind::kSemijoin:
      return Expr::Semijoin(std::move(left), std::move(right),
                            std::move(pred), node.preserves_left());
    case OpKind::kRestrict:
      return Expr::Restrict(std::move(left), std::move(pred));
    default:
      return nullptr;
  }
}

// Removes every leaf of relation `rel`; prunes predicate conjuncts that
// reference the vanished attributes. Returns null when the whole subtree
// vanishes, or the original expression when an unsupported operator
// blocks the rewrite.
ExprPtr DropRelation(const ExprPtr& expr, RelId rel, const AttrSet& dropped,
                     bool* blocked) {
  if (expr->is_leaf()) {
    return expr->rel() == rel ? nullptr : expr;
  }
  if (expr->kind() == OpKind::kRestrict) {
    ExprPtr child = DropRelation(expr->left(), rel, dropped, blocked);
    if (*blocked || child == nullptr) return child;
    PredicatePtr pred = PrunePredicate(expr->pred(), dropped);
    if (pred->kind() == Predicate::Kind::kConst && pred->const_value()) {
      return child;
    }
    return Expr::Restrict(std::move(child), std::move(pred));
  }
  if (!expr->is_join_like()) {
    *blocked = true;  // GOJ / union / project: leave the case alone
    return expr;
  }
  ExprPtr left = DropRelation(expr->left(), rel, dropped, blocked);
  if (*blocked) return expr;
  ExprPtr right = DropRelation(expr->right(), rel, dropped, blocked);
  if (*blocked) return expr;
  if (left == nullptr) return right;
  if (right == nullptr) return left;
  return WithPredicate(*expr, std::move(left), std::move(right),
                       PrunePredicate(expr->pred(), dropped));
}

// Collects the paths of all nodes carrying predicates, pre-order.
void CollectPredicateSites(const ExprPtr& node, ExprPath* path,
                           std::vector<ExprPath>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->pred() != nullptr &&
      (node->is_join_like() || node->kind() == OpKind::kRestrict)) {
    out->push_back(*path);
  }
  if (node->left() != nullptr) {
    path->push_back(false);
    CollectPredicateSites(node->left(), path, out);
    path->pop_back();
  }
  if (node->right() != nullptr) {
    path->push_back(true);
    CollectPredicateSites(node->right(), path, out);
    path->pop_back();
  }
}

// Every distinct ground relation mentioned by the query, ascending.
std::vector<RelId> RelationsOf(const ExprPtr& query) {
  std::vector<RelId> out;
  uint64_t mask = query->rel_mask();
  for (RelId rel = 0; mask != 0; ++rel, mask >>= 1) {
    if (mask & 1) out.push_back(rel);
  }
  return out;
}

}  // namespace

size_t CaseTupleCount(const FuzzCase& fuzz_case) {
  size_t total = 0;
  for (RelId rel : RelationsOf(fuzz_case.query)) {
    total += fuzz_case.db->relation(rel).NumRows();
  }
  return total;
}

FuzzCase ShrinkCaseWith(const FuzzCase& fuzz_case,
                        const ShrinkPredicate& predicate,
                        ShrinkStats* stats) {
  FuzzCase current = CloneCase(fuzz_case);
  ShrinkStats local;
  ShrinkStats* s = stats != nullptr ? stats : &local;

  auto still_fails = [&](const FuzzCase& candidate) {
    ++s->property_evaluations;
    return predicate(candidate);
  };

  bool changed = true;
  while (changed) {
    changed = false;
    ++s->rounds;

    // 1. Empty relations outright, then drop single tuples.
    for (RelId rel = 0; rel < static_cast<RelId>(current.db->num_relations());
         ++rel) {
      const std::vector<Tuple>& rows = current.db->relation(rel).rows();
      if (!rows.empty()) {
        FuzzCase candidate = CloneCase(current);
        candidate.db->SetRows(rel, {});
        if (still_fails(candidate)) {
          current = std::move(candidate);
          changed = true;
          ++s->accepted_reductions;
          continue;
        }
      }
      for (size_t i = current.db->relation(rel).NumRows(); i-- > 0;) {
        std::vector<Tuple> fewer = current.db->relation(rel).rows();
        fewer.erase(fewer.begin() + static_cast<ptrdiff_t>(i));
        FuzzCase candidate = CloneCase(current);
        candidate.db->SetRows(rel, std::move(fewer));
        if (still_fails(candidate)) {
          current = std::move(candidate);
          changed = true;
          ++s->accepted_reductions;
        }
      }
    }

    // 2. Drop whole relations from the query.
    if (current.query->num_leaves() > 1) {
      for (RelId rel : RelationsOf(current.query)) {
        bool blocked = false;
        ExprPtr reduced =
            DropRelation(current.query, rel,
                         current.db->scheme(rel).ToAttrSet(), &blocked);
        if (blocked || reduced == nullptr || reduced == current.query) {
          continue;
        }
        FuzzCase candidate = CloneCase(current);
        candidate.query = reduced;
        if (still_fails(candidate)) {
          current = std::move(candidate);
          changed = true;
          ++s->accepted_reductions;
        }
      }
    }

    // 3. Drop single AND-conjuncts / OR-disjuncts of any predicate.
    std::vector<ExprPath> sites;
    {
      ExprPath path;
      CollectPredicateSites(current.query, &path, &sites);
    }
    for (const ExprPath& path : sites) {
      const Expr* node = NodeAt(current.query, path);
      if (node == nullptr || node->pred() == nullptr) continue;
      const Predicate& pred = *node->pred();
      const bool is_and = pred.kind() == Predicate::Kind::kAnd;
      const bool is_or = pred.kind() == Predicate::Kind::kOr;
      if (!is_and && !is_or) continue;
      for (size_t drop = 0; drop < pred.children().size(); ++drop) {
        std::vector<PredicatePtr> kept;
        for (size_t i = 0; i < pred.children().size(); ++i) {
          if (i != drop) kept.push_back(pred.children()[i]);
        }
        PredicatePtr reduced_pred = is_and ? Predicate::And(std::move(kept))
                                           : Predicate::Or(std::move(kept));
        const Expr* live = NodeAt(current.query, path);
        if (live == nullptr) break;
        ExprPtr rebuilt = WithPredicate(*live, live->left(), live->right(),
                                        std::move(reduced_pred));
        if (rebuilt == nullptr) continue;
        FuzzCase candidate = CloneCase(current);
        candidate.query = ReplaceAt(current.query, path, std::move(rebuilt));
        if (still_fails(candidate)) {
          current = std::move(candidate);
          changed = true;
          ++s->accepted_reductions;
          break;  // the site's predicate changed; revisit next round
        }
      }
    }

    // 4. Peel a top-level Restrict.
    if (current.query->kind() == OpKind::kRestrict) {
      FuzzCase candidate = CloneCase(current);
      candidate.query = current.query->left();
      if (still_fails(candidate)) {
        current = std::move(candidate);
        changed = true;
        ++s->accepted_reductions;
      }
    }
  }
  return current;
}

FuzzCase ShrinkCase(const FuzzCase& fuzz_case, const std::string& check,
                    const DiffOptions& options, ShrinkStats* stats) {
  return ShrinkCaseWith(
      fuzz_case,
      [&](const FuzzCase& candidate) {
        return CheckStillDiverges(candidate, check, options);
      },
      stats);
}

}  // namespace fro
