// Textual repro files for fuzz findings ("corpus cases").
//
// A case file is self-contained and human-readable:
//
//   # optional free-form comment lines
//   meta seed 0x1234 profile null-heavy check batch-engine
//   relation R1 a b
//   1,2
//   ,3
//   relation R2 a
//   1
//   query (R1 ->[R1.a=R2.a] R2)
//
// The `meta` line is optional provenance (any subset of the key/value
// pairs). Relation blocks use relational/text_io.h's format verbatim;
// the `query` line is algebra/parse.h syntax and must come after every
// relation it references. Replay a case with
// `fro_fuzz --replay <file>` or programmatically via LoadCorpusCase +
// RunDifferential; tests/corpus_replay_test.cc runs every checked-in
// case through the full differential driver in tier 1.

#ifndef FRO_FUZZ_CORPUS_H_
#define FRO_FUZZ_CORPUS_H_

#include <string>
#include <vector>

#include "fuzz/case_gen.h"

namespace fro {

/// Serializes a case (with optional provenance `check` — the diverging
/// check name, or "" for none) into the corpus format.
std::string CorpusCaseToText(const FuzzCase& fuzz_case,
                             const std::string& check = "");

/// Parsed provenance + the case itself.
struct CorpusCase {
  FuzzCase fuzz_case;
  std::string check;  // empty when the meta line carried none
};

/// Parses a corpus case from text. The database is rebuilt first, then
/// the query is parsed against it.
Result<CorpusCase> ParseCorpusCase(const std::string& text);

/// Reads and parses a corpus case file.
Result<CorpusCase> LoadCorpusCase(const std::string& path);

/// Writes a case file; returns the path written.
Result<std::string> SaveCorpusCase(const FuzzCase& fuzz_case,
                                   const std::string& check,
                                   const std::string& dir);

/// Lists the *.case files under `dir`, sorted by name.
std::vector<std::string> ListCorpusFiles(const std::string& dir);

}  // namespace fro

#endif  // FRO_FUZZ_CORPUS_H_
