// Seeded fuzz-case generation: a database plus a query expression, both
// derived deterministically from one 64-bit case seed.
//
// Cases are drawn from a mix of adversarial profiles layered on
// testing/graphgen + testing/datagen: nice graphs with strong predicates
// (Theorem 1 territory), weak null-accepting outerjoin predicates
// (Example 3), each Lemma 1 niceness violation (Example 2 among them —
// the shapes the GOJ rewrites must handle), cyclic join cores, NULL-
// skewed columns, empty relations, and duplicate-free GOJ-ready data.
//
// Determinism contract: a FuzzCase is a pure function of its seed (see
// common/rng.h). Replaying `GenerateFuzzCase(seed)` in any process on
// any machine reproduces the identical database, query, and profile.

#ifndef FRO_FUZZ_CASE_GEN_H_
#define FRO_FUZZ_CASE_GEN_H_

#include <memory>
#include <string>

#include "algebra/expr.h"
#include "common/rng.h"
#include "relational/database.h"

namespace fro {

/// The generation profiles, cycled through by seed. Kept public so a
/// driver can pin one (`fro_fuzz --profile`).
enum class FuzzProfile : uint8_t {
  kNiceStrong = 0,    // freely reorderable: nice graph, strong preds
  kNullHeavy,         // nice + strong, ~45% null values, tiny domain
  kWeakPreds,         // null-accepting outerjoin predicates (Example 3)
  kJoinAtNullSupplied,  // Lemma 1 violation: X -> Y - Z (Example 2)
  kTwoInEdges,        // Lemma 1 violation: X -> Y <- Z
  kOjCycle,           // Lemma 1 violation: outerjoin cycle
  kCyclicCore,        // dense join core: cycles + collapsed edges
  kDupFreeGoj,        // duplicate-free rows + non-nice shape: GOJ rewrites
  kEmptyRelations,    // 0-2 rows per relation: boundary cardinalities
  kWideScheme,        // 10-20 attrs per relation, mixed null density:
                      // stresses columnar transposition and null masks
  kGraphPattern,      // triangle/4-cycle join cores inside outerjoin
                      // shells over skewed, null-heavy data: the shapes
                      // the wcoj subsystem collapses to leapfrog joins
  kAcyclicChain,      // chordless join chains over skewed many-to-many
                      // null-heavy keys, often under a strong Restrict
                      // (the Section 4 simplification turning shell
                      // outerjoins into joins enlarges the acyclic
                      // core): the GYO/Yannakakis fast-path shapes
  kNumProfiles,
};

const char* FuzzProfileName(FuzzProfile profile);

/// Parses a profile by its FuzzProfileName; returns kNumProfiles on an
/// unknown name.
FuzzProfile FuzzProfileFromName(const std::string& name);

struct FuzzCase {
  uint64_t seed = 0;
  FuzzProfile profile = FuzzProfile::kNiceStrong;
  std::unique_ptr<Database> db;
  /// A Join/Outerjoin implementing tree of the generated graph,
  /// optionally wrapped in a top-level Restrict (exercising the Section 4
  /// simplification and restriction pushdown through the optimizer).
  ExprPtr query;
};

/// Generates the case for `seed`. The profile is chosen by the seed
/// unless `pinned` names one.
FuzzCase GenerateFuzzCase(uint64_t seed,
                          FuzzProfile pinned = FuzzProfile::kNumProfiles);

}  // namespace fro

#endif  // FRO_FUZZ_CASE_GEN_H_
