// The fuzzing harness's reference oracle: a brute-force evaluator built
// directly from the paper's definitions, sharing no code with the
// kernels (relational/ops.h), the materializing evaluator
// (algebra/eval.h), or either pipelined engine.
//
// Every operator is computed the way Section 1.2 / 2.1 defines it:
//
//   * join        — the filtered cross product: every concatenation
//                   (l, r) whose predicate evaluates to True under
//                   Kleene three-valued logic;
//   * outerjoin   — the join, plus each preserved-side tuple with no
//                   partner, padded with nulls on the other scheme
//                   (null_S, once per *row* — bag semantics);
//   * antijoin    — kept-side tuples with no partner;
//   * semijoin    — kept-side tuples with at least one partner;
//   * GOJ[S]      — eq. 14: the join, plus one padded tuple per
//                   *distinct* S-projection of the left operand that
//                   appears in no join result;
//   * union       — bag union after padding both operands to the union
//                   scheme (the Section 2.1 padding convention);
//   * restrict    — tuples whose predicate evaluates to True;
//   * project     — column mapping, with optional duplicate removal.
//
// Everything is quadratic (or worse) on purpose: the oracle's claim to
// trustworthiness is that each case above is a direct transcription of a
// paper definition with no shared physical machinery — no hash tables,
// no operand swapping, no batch slots — so a bug would have to be
// *common to the transcription and the engines* to go unnoticed. The
// only library surfaces it borrows are the substrate types (Relation,
// Tuple, Scheme) and Predicate::Eval, the single 3VL truth-evaluation
// routine every layer is defined against. docs/TESTING.md discusses why
// this boundary is drawn where it is.

#ifndef FRO_FUZZ_ORACLE_H_
#define FRO_FUZZ_ORACLE_H_

#include "algebra/expr.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace fro {

/// Evaluates `expr` against `db` from first principles. Supports every
/// OpKind. Deterministic: row order is the left-to-right, top-to-bottom
/// nested-loop order of the definitions.
Relation OracleEval(const ExprPtr& expr, const Database& db);

}  // namespace fro

#endif  // FRO_FUZZ_ORACLE_H_
