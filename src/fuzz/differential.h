// The differential driver: runs one fuzz case through every execution
// and rewrite pipeline the library has and compares each against the
// brute-force oracle (fuzz/oracle.h).
//
// Result checks (bag equality against the oracle):
//   eval-nl / eval-hash    the materializing evaluator, both kernels
//   tuple-engine           the Volcano pipeline
//   batch-engine[-capN]    the vectorized pipeline at several capacities
//   parallel-engine-wN     the morsel-driven parallel pipeline at N
//                          workers (tiny morsels force real splitting)
//   wcoj-*                 forced multiway plans (every pure-join region
//                          collapsed to a leapfrog join) on every
//                          engine, with counter parity
//   acyclic-*              forced Yannakakis semijoin programs (every
//                          acyclic pure-join region fully reduced,
//                          bottom-up + top-down, no gates) on every
//                          engine, with counter parity
//   optimizer[-plan]       the plan Optimize() picks, on both engines
//   plan-cache             a second Optimize through an LruPlanCache must
//                          hit and replay an equal-result plan
//   feedback-replan        one closed feedback loop (optimizer/feedback.h):
//                          plan, execute, persist actuals, report Q-error
//                          past the staleness threshold — the next lookup
//                          must claim exactly one re-plan
//   feedback-replay        and the lookup after that must replay the
//                          re-planned entry from cache (no thrash)
//   feedback-tuple/batch   the feedback-corrected re-plan ≡ oracle on
//                          both engines (feedback steers plan choice
//                          only, never results)
//   feedback-parallel-wN   ... and on the parallel pipeline at N workers,
//                          with serial-batch counter parity
//                          (feedback-parallel-stats-parity-wN)
//   closure                every implementing tree in the result-
//                          preserving BT closure (size-capped)
//   it-enum                on freely-reorderable graphs, every
//                          implementing tree (count-capped) — Theorem 1
//
// Counter parity:
//   stats-parity           tuple and batch pipelines must report
//                          identical ExecStats totals (reads, emitted,
//                          probes, predicate evaluations)
//   parallel-stats-parity-wN  the N-worker parallel pipeline must report
//                          exactly the serial batch engine's totals
//
// Metamorphic checks (transform the *query*, re-run the oracle, compare
// with the oracle on the original):
//   bt:<rule>              every applicable result-preserving basic
//                          transform (Section 3.2)
//   simplify               the Section 4 outerjoin-to-join rule
//   goj-rewrite            Section 6.2 left-deepening (identities 15/16),
//                          gated on duplicate-free base relations — the
//                          identities' stated precondition
//   canonical-orientation  reversal normalization
//
// Each divergence carries the check name and a canonical rendering of
// expected vs. actual, so a failing case is diagnosable from the report
// alone; fuzz/shrink.h re-runs a single named check while minimizing.

#ifndef FRO_FUZZ_DIFFERENTIAL_H_
#define FRO_FUZZ_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/case_gen.h"

namespace fro {

struct DiffOptions {
  /// Cap on closure states explored / trees evaluated per case.
  size_t max_closure_trees = 32;
  /// Cap on enumerated implementing trees per freely-reorderable case.
  size_t max_enum_trees = 16;
  /// Cap on metamorphic BT sites exercised per case.
  size_t max_bt_sites = 12;
  /// Run the (oracle-squared cost) metamorphic checks.
  bool metamorphic = true;
  /// Exercise plan-cache replay.
  bool plan_cache = true;
  /// Exercise the cardinality-feedback loop (execute, persist actuals,
  /// re-plan, verify the corrected plan on every engine).
  bool feedback = true;
};

struct Divergence {
  std::string check;
  std::string detail;
};

struct DiffReport {
  std::vector<Divergence> divergences;
  uint64_t checks_run = 0;

  bool ok() const { return divergences.empty(); }
  std::string ToString() const;
};

/// Runs every pipeline over `fuzz_case` and returns the divergences.
DiffReport RunDifferential(const FuzzCase& fuzz_case,
                           const DiffOptions& options = DiffOptions());

/// Re-runs only the named check (a Divergence::check value; "bt:*"
/// prefixes match any basic-transform site). True if the check still
/// diverges — the shrinker's predicate.
bool CheckStillDiverges(const FuzzCase& fuzz_case, const std::string& check,
                        const DiffOptions& options = DiffOptions());

}  // namespace fro

#endif  // FRO_FUZZ_DIFFERENTIAL_H_
