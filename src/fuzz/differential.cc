#include "fuzz/differential.h"

#include <unordered_set>
#include <vector>

#include "algebra/eval.h"
#include "algebra/simplify.h"
#include "algebra/transform.h"
#include "common/check.h"
#include "enumerate/closure.h"
#include "enumerate/it_enum.h"
#include "exec/build.h"
#include "exec/morsel.h"
#include "exec/stats_view.h"
#include "fuzz/oracle.h"
#include "optimizer/feedback.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "optimizer/acyclic_rewrite.h"
#include "optimizer/goj_rewrite.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "optimizer/wcoj_rewrite.h"
#include "relational/tuple.h"

namespace fro {

namespace {

// Trims a canonical relation rendering for a readable report.
std::string Excerpt(const Relation& rel, const Catalog* catalog) {
  std::string s = CanonicalString(rel, catalog);
  constexpr size_t kMax = 800;
  if (s.size() > kMax) {
    s.resize(kMax);
    s += "\n... (truncated)";
  }
  return s;
}

class Differ {
 public:
  Differ(const FuzzCase& fuzz_case, const DiffOptions& options,
         DiffReport* report)
      : c_(fuzz_case), options_(options), report_(report) {
    oracle_ = OracleEval(c_.query, *c_.db);
  }

  const Relation& oracle() const { return oracle_; }

  /// Compares `got` (a pipeline's result for the original query) against
  /// the oracle.
  void ExpectOracle(const std::string& check, const Relation& got) {
    ExpectEqual(check, oracle_, got);
  }

  void ExpectEqual(const std::string& check, const Relation& want,
                   const Relation& got) {
    ++report_->checks_run;
    if (BagEquals(want, got)) return;
    report_->divergences.push_back(
        {check, "expected:\n" + Excerpt(want, &c_.db->catalog()) +
                    "\nactual:\n" + Excerpt(got, &c_.db->catalog())});
  }

  void Fail(const std::string& check, const std::string& detail) {
    ++report_->checks_run;
    report_->divergences.push_back({check, detail});
  }

  bool WantCheck(const std::string& check) const {
    if (only_ == nullptr) return true;
    if (*only_ == check) return true;
    // "bt:*" selects every basic-transform metamorphic site.
    return *only_ == "bt:*" && check.rfind("bt:", 0) == 0;
  }

  void RestrictTo(const std::string* only) { only_ = only; }

  // --- the checks -----------------------------------------------------

  void CheckEvaluator() {
    if (WantCheck("eval-nl")) {
      EvalOptions nl;
      nl.algo = JoinAlgo::kNestedLoop;
      ExpectOracle("eval-nl", Eval(c_.query, *c_.db, nl));
    }
    if (WantCheck("eval-hash")) {
      EvalOptions hash;
      hash.algo = JoinAlgo::kHash;
      ExpectOracle("eval-hash", Eval(c_.query, *c_.db, hash));
    }
  }

  void CheckEngines() {
    if (WantCheck("tuple-engine")) {
      ExpectOracle("tuple-engine", ExecutePipelined(c_.query, *c_.db));
    }
    if (WantCheck("batch-engine")) {
      ExpectOracle("batch-engine", ExecuteBatched(c_.query, *c_.db));
    }
    if (WantCheck("batch-engine-cap1")) {
      ExpectOracle("batch-engine-cap1",
                   ExecuteBatched(c_.query, *c_.db, JoinAlgo::kAuto, 1));
    }
    if (WantCheck("batch-engine-cap3")) {
      ExpectOracle("batch-engine-cap3",
                   ExecuteBatched(c_.query, *c_.db, JoinAlgo::kAuto, 3));
    }
  }

  void CheckStatsParity() {
    if (!WantCheck("stats-parity")) return;
    IteratorPtr tuple_root = BuildIterator(c_.query, *c_.db);
    Relation tuple_out = Drain(tuple_root.get());
    BatchIteratorPtr batch_root = BuildBatchIterator(c_.query, *c_.db);
    Relation batch_out = DrainBatches(batch_root.get());
    ++report_->checks_run;
    const ExecStats t = CollectPipelineStats(tuple_root.get());
    const ExecStats b = CollectPipelineStats(batch_root.get());
    if (t.left_reads != b.left_reads || t.right_reads != b.right_reads ||
        t.emitted != b.emitted || t.probes != b.probes ||
        t.predicate_evals != b.predicate_evals) {
      report_->divergences.push_back(
          {"stats-parity",
           "tuple: " + t.ToString() + " (left=" +
               std::to_string(t.left_reads) + " right=" +
               std::to_string(t.right_reads) + ")\nbatch: " + b.ToString() +
               " (left=" + std::to_string(b.left_reads) + " right=" +
               std::to_string(b.right_reads) + ")"});
    }
    // The drained results ride along for free.
    ExpectEqual("stats-parity-results", tuple_out, batch_out);
  }

  void CheckParallel() {
    // Morsel-driven parallel pipelines (exec/morsel.h) must agree with
    // the oracle AND report exactly the serial batch engine's counters at
    // every worker count. Tiny morsels and batches force real work
    // splitting (and the GOJ cross-partition padding merge) even on the
    // small relations fuzz cases generate.
    for (const int workers : {1, 2, 4}) {
      const std::string result_check =
          "parallel-engine-w" + std::to_string(workers);
      const std::string stats_check =
          "parallel-stats-parity-w" + std::to_string(workers);
      const bool want_result = WantCheck(result_check);
      const bool want_stats = WantCheck(stats_check);
      if (!want_result && !want_stats) continue;
      ParallelOptions par;
      par.threads = workers;
      par.morsel_rows = 2;
      par.batch_capacity = 4;
      BatchIteratorPtr root =
          BuildParallelBatchIterator(c_.query, *c_.db, par);
      Relation out = DrainBatches(root.get());
      if (want_result) ExpectOracle(result_check, out);
      if (want_stats) {
        BatchIteratorPtr serial = BuildBatchIterator(c_.query, *c_.db);
        DrainBatches(serial.get());
        ++report_->checks_run;
        const ExecStats p = CollectPipelineStats(root.get());
        const ExecStats s = CollectPipelineStats(serial.get());
        if (p.left_reads != s.left_reads ||
            p.right_reads != s.right_reads || p.emitted != s.emitted ||
            p.probes != s.probes ||
            p.predicate_evals != s.predicate_evals) {
          report_->divergences.push_back(
              {stats_check,
               "serial: " + s.ToString() + " (left=" +
                   std::to_string(s.left_reads) + " right=" +
                   std::to_string(s.right_reads) + ")\nparallel: " +
                   p.ToString() + " (left=" +
                   std::to_string(p.left_reads) + " right=" +
                   std::to_string(p.right_reads) + ")"});
        }
      }
    }
  }

  void CheckMultiway() {
    // Forced-multiway plans: collapse every pure-join region into one
    // leapfrog multiway join (semantics-preserving, no cost gate) and
    // hold the operator to the oracle on both engines, to exact
    // tuple/batch counter parity, and to the morsel-parallel executor.
    // The cost-gated path is separately covered by CheckOptimizer.
    ExprPtr forced = ForceMultiwayJoins(c_.query);
    if (forced == c_.query) return;  // join-free: nothing new to exercise
    if (WantCheck("wcoj-eval")) {
      ExpectOracle("wcoj-eval", Eval(forced, *c_.db));
    }
    if (WantCheck("wcoj-tuple")) {
      ExpectOracle("wcoj-tuple", ExecutePipelined(forced, *c_.db));
    }
    if (WantCheck("wcoj-batch")) {
      ExpectOracle("wcoj-batch", ExecuteBatched(forced, *c_.db));
    }
    if (WantCheck("wcoj-batch-cap1")) {
      ExpectOracle("wcoj-batch-cap1",
                   ExecuteBatched(forced, *c_.db, JoinAlgo::kAuto, 1));
    }
    if (WantCheck("wcoj-stats-parity")) {
      IteratorPtr tuple_root = BuildIterator(forced, *c_.db);
      Relation tuple_out = Drain(tuple_root.get());
      BatchIteratorPtr batch_root = BuildBatchIterator(forced, *c_.db);
      Relation batch_out = DrainBatches(batch_root.get());
      ++report_->checks_run;
      const ExecStats t = CollectPipelineStats(tuple_root.get());
      const ExecStats b = CollectPipelineStats(batch_root.get());
      if (t.left_reads != b.left_reads || t.right_reads != b.right_reads ||
          t.emitted != b.emitted || t.probes != b.probes ||
          t.predicate_evals != b.predicate_evals) {
        report_->divergences.push_back(
            {"wcoj-stats-parity",
             "tuple: " + t.ToString() + " (left=" +
                 std::to_string(t.left_reads) + " right=" +
                 std::to_string(t.right_reads) + ")\nbatch: " +
                 b.ToString() + " (left=" + std::to_string(b.left_reads) +
                 " right=" + std::to_string(b.right_reads) + ")"});
      }
      ExpectEqual("wcoj-stats-parity-results", tuple_out, batch_out);
    }
    for (const int workers : {1, 2, 4}) {
      const std::string result_check =
          "wcoj-parallel-w" + std::to_string(workers);
      const std::string stats_check =
          "wcoj-parallel-stats-parity-w" + std::to_string(workers);
      const bool want_result = WantCheck(result_check);
      const bool want_stats = WantCheck(stats_check);
      if (!want_result && !want_stats) continue;
      ParallelOptions par;
      par.threads = workers;
      par.morsel_rows = 2;
      par.batch_capacity = 4;
      BatchIteratorPtr root = BuildParallelBatchIterator(forced, *c_.db, par);
      Relation out = DrainBatches(root.get());
      if (want_result) ExpectOracle(result_check, out);
      if (want_stats) {
        BatchIteratorPtr serial = BuildBatchIterator(forced, *c_.db);
        DrainBatches(serial.get());
        ++report_->checks_run;
        const ExecStats p = CollectPipelineStats(root.get());
        const ExecStats s = CollectPipelineStats(serial.get());
        if (p.left_reads != s.left_reads ||
            p.right_reads != s.right_reads || p.emitted != s.emitted ||
            p.probes != s.probes ||
            p.predicate_evals != s.predicate_evals) {
          report_->divergences.push_back(
              {stats_check,
               "serial: " + s.ToString() + " (left=" +
                   std::to_string(s.left_reads) + " right=" +
                   std::to_string(s.right_reads) + ")\nparallel: " +
                   p.ToString() + " (left=" +
                   std::to_string(p.left_reads) + " right=" +
                   std::to_string(p.right_reads) + ")"});
        }
      }
    }
  }

  void CheckAcyclic() {
    // Forced semijoin programs: rewrite every acyclic pure-join region
    // into a fully-reduced Yannakakis program (bottom-up + top-down, no
    // gates) and hold it to the oracle on both engines, to exact
    // tuple/batch counter parity, and to the morsel-parallel executor.
    // The cost-gated path is separately covered by CheckOptimizer.
    ExprPtr forced = ForceAcyclicPrograms(c_.query);
    if (forced == c_.query) return;  // no acyclic region: nothing new
    if (WantCheck("acyclic-eval")) {
      ExpectOracle("acyclic-eval", Eval(forced, *c_.db));
    }
    if (WantCheck("acyclic-tuple")) {
      ExpectOracle("acyclic-tuple", ExecutePipelined(forced, *c_.db));
    }
    if (WantCheck("acyclic-batch")) {
      ExpectOracle("acyclic-batch", ExecuteBatched(forced, *c_.db));
    }
    if (WantCheck("acyclic-batch-cap1")) {
      ExpectOracle("acyclic-batch-cap1",
                   ExecuteBatched(forced, *c_.db, JoinAlgo::kAuto, 1));
    }
    if (WantCheck("acyclic-stats-parity")) {
      IteratorPtr tuple_root = BuildIterator(forced, *c_.db);
      Relation tuple_out = Drain(tuple_root.get());
      BatchIteratorPtr batch_root = BuildBatchIterator(forced, *c_.db);
      Relation batch_out = DrainBatches(batch_root.get());
      ++report_->checks_run;
      const ExecStats t = CollectPipelineStats(tuple_root.get());
      const ExecStats b = CollectPipelineStats(batch_root.get());
      if (t.left_reads != b.left_reads || t.right_reads != b.right_reads ||
          t.emitted != b.emitted || t.probes != b.probes ||
          t.predicate_evals != b.predicate_evals) {
        report_->divergences.push_back(
            {"acyclic-stats-parity",
             "tuple: " + t.ToString() + " (left=" +
                 std::to_string(t.left_reads) + " right=" +
                 std::to_string(t.right_reads) + ")\nbatch: " +
                 b.ToString() + " (left=" + std::to_string(b.left_reads) +
                 " right=" + std::to_string(b.right_reads) + ")"});
      }
      ExpectEqual("acyclic-stats-parity-results", tuple_out, batch_out);
    }
    for (const int workers : {1, 2, 4}) {
      const std::string result_check =
          "acyclic-parallel-w" + std::to_string(workers);
      const std::string stats_check =
          "acyclic-parallel-stats-parity-w" + std::to_string(workers);
      const bool want_result = WantCheck(result_check);
      const bool want_stats = WantCheck(stats_check);
      if (!want_result && !want_stats) continue;
      ParallelOptions par;
      par.threads = workers;
      par.morsel_rows = 2;
      par.batch_capacity = 4;
      BatchIteratorPtr root = BuildParallelBatchIterator(forced, *c_.db, par);
      Relation out = DrainBatches(root.get());
      if (want_result) ExpectOracle(result_check, out);
      if (want_stats) {
        BatchIteratorPtr serial = BuildBatchIterator(forced, *c_.db);
        DrainBatches(serial.get());
        ++report_->checks_run;
        const ExecStats p = CollectPipelineStats(root.get());
        const ExecStats s = CollectPipelineStats(serial.get());
        if (p.left_reads != s.left_reads ||
            p.right_reads != s.right_reads || p.emitted != s.emitted ||
            p.probes != s.probes ||
            p.predicate_evals != s.predicate_evals) {
          report_->divergences.push_back(
              {stats_check,
               "serial: " + s.ToString() + " (left=" +
                   std::to_string(s.left_reads) + " right=" +
                   std::to_string(s.right_reads) + ")\nparallel: " +
                   p.ToString() + " (left=" +
                   std::to_string(p.left_reads) + " right=" +
                   std::to_string(p.right_reads) + ")"});
        }
      }
    }
  }

  void CheckOptimizer() {
    const bool want_plan = WantCheck("optimizer");
    const bool want_cache = options_.plan_cache && WantCheck("plan-cache");
    if (!want_plan && !want_cache) return;

    Result<OptimizeOutcome> outcome = Optimize(c_.query, *c_.db);
    if (!outcome.ok()) {
      Fail("optimizer", "Optimize failed: " + outcome.status().ToString());
      return;
    }
    if (want_plan) {
      ExpectOracle("optimizer", Eval(outcome->plan, *c_.db));
      ExpectOracle("optimizer-tuple",
                   ExecutePipelined(outcome->plan, *c_.db));
      ExpectOracle("optimizer-batch", ExecuteBatched(outcome->plan, *c_.db));
    }
    if (want_cache) {
      LruPlanCache cache(4);
      OptimizeOptions cached_options;
      cached_options.plan_cache = &cache;
      Result<OptimizeOutcome> first =
          Optimize(c_.query, *c_.db, cached_options);
      Result<OptimizeOutcome> second =
          Optimize(c_.query, *c_.db, cached_options);
      if (!first.ok() || !second.ok()) {
        Fail("plan-cache", "cached Optimize failed");
        return;
      }
      ++report_->checks_run;
      if (!second->cache_hit) {
        report_->divergences.push_back(
            {"plan-cache", "second optimization of an identical query did "
                           "not hit the cache"});
      }
      ExpectOracle("plan-cache", Eval(second->plan, *c_.db));
    }
  }

  void CheckFeedback() {
    if (!options_.feedback) return;
    bool want_parallel = false;
    for (const int workers : {1, 2, 4}) {
      want_parallel =
          want_parallel ||
          WantCheck("feedback-parallel-w" + std::to_string(workers)) ||
          WantCheck("feedback-parallel-stats-parity-w" +
                    std::to_string(workers));
    }
    const bool want_replan = WantCheck("feedback-replan");
    const bool want_replay = WantCheck("feedback-replay");
    const bool want_tuple = WantCheck("feedback-tuple");
    const bool want_batch = WantCheck("feedback-batch");
    if (!want_replan && !want_replay && !want_tuple && !want_batch &&
        !want_parallel) {
      return;
    }

    // Close the feedback loop once, deterministically: plan, execute,
    // persist the measured cardinalities, report Q-error, and re-plan
    // against the corrections. The threshold sits below the Q-error floor
    // of 1.0, so the very first RecordExecution marks the entry stale no
    // matter how accurate the static estimates were.
    LruPlanCache cache(4, /*q_error_threshold=*/0.5);
    FeedbackStore store;
    OptimizeOptions opt;
    opt.plan_cache = &cache;
    Result<OptimizeOutcome> first = Optimize(c_.query, *c_.db, opt);
    if (!first.ok()) {
      Fail("feedback-replan",
           "initial Optimize failed: " + first.status().ToString());
      return;
    }
    BatchIteratorPtr executed = BuildBatchIterator(first->plan, *c_.db);
    DrainBatches(executed.get());
    const double q =
        ObservePlanExecution(&store, first->plan->hash(),
                             SnapshotPlanStats(executed.get()),
                             first->op_estimates);
    cache.RecordExecution(c_.query->hash(), q);

    const CardinalityFeedback corrected = store.Snapshot();
    opt.feedback = &corrected;
    Result<OptimizeOutcome> second = Optimize(c_.query, *c_.db, opt);
    if (!second.ok()) {
      Fail("feedback-replan",
           "re-Optimize with feedback failed: " + second.status().ToString());
      return;
    }
    if (want_replan) {
      ++report_->checks_run;
      if (second->cache_hit || !second->replanned) {
        report_->divergences.push_back(
            {"feedback-replan",
             std::string("stale cached plan was not re-optimized "
                         "(cache_hit=") +
                 (second->cache_hit ? "true" : "false") +
                 " replanned=" + (second->replanned ? "true" : "false") +
                 ")"});
      }
    }
    if (want_replay) {
      // The corrected plan replaced the stale entry, so a third
      // optimization must replay it from cache (re-plan happens at most
      // once per staleness mark, not on every lookup).
      Result<OptimizeOutcome> third = Optimize(c_.query, *c_.db, opt);
      ++report_->checks_run;
      if (!third.ok()) {
        report_->divergences.push_back(
            {"feedback-replay",
             "post-replan Optimize failed: " + third.status().ToString()});
      } else if (!third->cache_hit) {
        report_->divergences.push_back(
            {"feedback-replay",
             "re-planned entry did not serve the next lookup from cache"});
      }
    }
    // Feedback may steer plan choice only — never results or counters:
    // the re-planned query must match the oracle on every engine, with
    // parallel counters identical to the serial batch pipeline's.
    if (want_tuple) {
      ExpectOracle("feedback-tuple", ExecutePipelined(second->plan, *c_.db));
    }
    if (want_batch) {
      ExpectOracle("feedback-batch", ExecuteBatched(second->plan, *c_.db));
    }
    for (const int workers : {1, 2, 4}) {
      const std::string result_check =
          "feedback-parallel-w" + std::to_string(workers);
      const std::string stats_check =
          "feedback-parallel-stats-parity-w" + std::to_string(workers);
      const bool want_result = WantCheck(result_check);
      const bool want_stats = WantCheck(stats_check);
      if (!want_result && !want_stats) continue;
      ParallelOptions par;
      par.threads = workers;
      par.morsel_rows = 2;
      par.batch_capacity = 4;
      BatchIteratorPtr root =
          BuildParallelBatchIterator(second->plan, *c_.db, par);
      Relation out = DrainBatches(root.get());
      if (want_result) ExpectOracle(result_check, out);
      if (want_stats) {
        BatchIteratorPtr serial = BuildBatchIterator(second->plan, *c_.db);
        DrainBatches(serial.get());
        ++report_->checks_run;
        const ExecStats p = CollectPipelineStats(root.get());
        const ExecStats s = CollectPipelineStats(serial.get());
        if (p.left_reads != s.left_reads ||
            p.right_reads != s.right_reads || p.emitted != s.emitted ||
            p.probes != s.probes ||
            p.predicate_evals != s.predicate_evals) {
          report_->divergences.push_back(
              {stats_check,
               "serial: " + s.ToString() + " (left=" +
                   std::to_string(s.left_reads) + " right=" +
                   std::to_string(s.right_reads) + ")\nparallel: " +
                   p.ToString() + " (left=" +
                   std::to_string(p.left_reads) + " right=" +
                   std::to_string(p.right_reads) + ")"});
        }
      }
    }
  }

  void CheckClosure() {
    if (!WantCheck("closure")) return;
    ClosureOptions closure_options;
    closure_options.only_result_preserving = true;
    closure_options.max_states = options_.max_closure_trees;
    ClosureResult closure = BtClosure(c_.query, closure_options);
    for (const ExprPtr& tree : closure.trees) {
      ExpectOracle("closure", Eval(tree, *c_.db));
    }
  }

  void CheckItEnumeration() {
    if (!WantCheck("it-enum")) return;
    // Theorem 1 only: the whole IT space agrees iff the graph is nice
    // with strong predicates. GraphOf is undefined for wrapped queries.
    if (c_.query->kind() == OpKind::kRestrict) return;
    Result<QueryGraph> graph = GraphOf(c_.query, *c_.db);
    if (!graph.ok()) return;
    if (!CheckFreelyReorderable(*graph).freely_reorderable()) return;
    std::vector<ExprPtr> trees =
        EnumerateIts(*graph, *c_.db, options_.max_enum_trees);
    for (const ExprPtr& tree : trees) {
      ExpectOracle("it-enum", Eval(tree, *c_.db));
    }
  }

  void CheckMetamorphic() {
    if (!options_.metamorphic) return;

    if (WantCheck("canonical-orientation")) {
      ExpectOracle("canonical-orientation",
                   OracleEval(CanonicalOrientation(c_.query), *c_.db));
    }
    if (WantCheck("simplify")) {
      SimplifyResult simplified = SimplifyOuterjoins(c_.query);
      ExpectOracle("simplify", OracleEval(simplified.expr, *c_.db));
    }
    if (WantCheck("goj-rewrite") &&
        BaseRelationsDuplicateFree(c_.query, *c_.db)) {
      int rewrites = 0;
      ExprPtr deepened = LeftDeepenWithGoj(c_.query, &rewrites);
      if (rewrites > 0) {
        ExpectOracle("goj-rewrite", OracleEval(deepened, *c_.db));
      }
    }

    // Every applicable result-preserving basic transform must preserve
    // the oracle result (Lemma 2's direction of Theorem 1).
    std::vector<BtSite> sites = FindApplicableBts(c_.query);
    size_t exercised = 0;
    for (const BtSite& site : sites) {
      if (exercised >= options_.max_bt_sites) break;
      BtClassification classification = ClassifyBt(c_.query, site);
      if (!classification.IsPreserving()) continue;
      const std::string check = "bt:" + classification.rule;
      if (!WantCheck(check)) continue;
      Result<ExprPtr> transformed = ApplyBt(c_.query, site);
      if (!transformed.ok()) {
        Fail(check, "ApplyBt failed on an applicable site: " +
                        transformed.status().ToString());
        continue;
      }
      ++exercised;
      ExpectOracle(check, OracleEval(*transformed, *c_.db));
    }
  }

  void RunAll() {
    CheckEvaluator();
    CheckEngines();
    CheckStatsParity();
    CheckParallel();
    CheckMultiway();
    CheckAcyclic();
    CheckOptimizer();
    CheckFeedback();
    CheckClosure();
    CheckItEnumeration();
    CheckMetamorphic();
  }

 private:
  const FuzzCase& c_;
  const DiffOptions& options_;
  DiffReport* report_;
  Relation oracle_;
  const std::string* only_ = nullptr;
};

}  // namespace

std::string DiffReport::ToString() const {
  if (divergences.empty()) {
    return "ok (" + std::to_string(checks_run) + " checks)";
  }
  std::string out = std::to_string(divergences.size()) + " divergence(s):\n";
  for (const Divergence& d : divergences) {
    out += "[" + d.check + "]\n" + d.detail + "\n";
  }
  return out;
}

DiffReport RunDifferential(const FuzzCase& fuzz_case,
                           const DiffOptions& options) {
  DiffReport report;
  Differ differ(fuzz_case, options, &report);
  differ.RunAll();
  return report;
}

bool CheckStillDiverges(const FuzzCase& fuzz_case, const std::string& check,
                        const DiffOptions& options) {
  DiffReport report;
  Differ differ(fuzz_case, options, &report);
  const std::string only = check.rfind("bt:", 0) == 0 ? "bt:*" : check;
  differ.RestrictTo(&only);
  differ.RunAll();
  for (const Divergence& d : report.divergences) {
    if (d.check == check) return true;
    if (only == "bt:*" && d.check.rfind("bt:", 0) == 0) return true;
    // A result check that shrank into a Status failure still reproduces.
    if (d.check.rfind(check, 0) == 0) return true;
  }
  return false;
}

}  // namespace fro
