// Minimization of failing fuzz cases.
//
// Given a case and the name of a diverging check, the shrinker greedily
// applies reductions while the divergence persists, looping to a fixed
// point:
//
//   * empty out whole relations, then drop individual tuples,
//   * drop ground-relation leaves from the query (predicate conjuncts
//     that reference a dropped relation's attributes are pruned; a
//     predicate with no remaining conjuncts becomes TRUE),
//   * drop individual AND-conjuncts / OR-disjuncts of operator
//     predicates, and drop a top-level Restrict wrapper.
//
// Reductions are attempted in a fixed deterministic order, so the
// shrunken case is a function of (input case, check). Typical engine
// bugs minimize to a handful of tuples over two or three relations —
// small enough to read, and to check in under tests/corpus/.

#ifndef FRO_FUZZ_SHRINK_H_
#define FRO_FUZZ_SHRINK_H_

#include <functional>
#include <string>

#include "fuzz/case_gen.h"
#include "fuzz/differential.h"

namespace fro {

struct ShrinkStats {
  int rounds = 0;
  int accepted_reductions = 0;
  int property_evaluations = 0;
};

/// The interesting-case predicate: true while the candidate still
/// exhibits the failure being minimized.
using ShrinkPredicate = std::function<bool(const FuzzCase&)>;

/// Minimizes `fuzz_case` while `still_fails` holds (it must hold on the
/// input). The generic core — tests drive it with synthetic bugs.
FuzzCase ShrinkCaseWith(const FuzzCase& fuzz_case,
                        const ShrinkPredicate& still_fails,
                        ShrinkStats* stats = nullptr);

/// Minimizes `fuzz_case` with respect to `check` (which must currently
/// diverge on it). Returns the minimized case; `stats` (optional)
/// reports the work done.
FuzzCase ShrinkCase(const FuzzCase& fuzz_case, const std::string& check,
                    const DiffOptions& options = DiffOptions(),
                    ShrinkStats* stats = nullptr);

/// Total number of tuples across the base relations `query` mentions —
/// the size metric shrinking minimizes.
size_t CaseTupleCount(const FuzzCase& fuzz_case);

}  // namespace fro

#endif  // FRO_FUZZ_SHRINK_H_
