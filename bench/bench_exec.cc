// Executor comparison: the pipelined Volcano engine versus the
// materializing evaluator, on optimized plans at increasing scale. Also
// measures per-operator pipeline overheads.

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "exec/build.h"
#include "exec/operators.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Fixture {
  std::unique_ptr<Database> db;
  ExprPtr plan;  // (R1 - R2) -> R3 over the Example 1 database
};

Fixture MakeFixture(int n) {
  Fixture f;
  f.db = MakeExample1Database(n);
  ExprPtr r1 = Expr::Leaf(f.db->Rel("R1"), *f.db);
  ExprPtr r2 = Expr::Leaf(f.db->Rel("R2"), *f.db);
  ExprPtr r3 = Expr::Leaf(f.db->Rel("R3"), *f.db);
  f.plan = Expr::OuterJoin(
      Expr::Join(r1, r2, EqCols(f.db->Attr("R1", "k"), f.db->Attr("R2", "k"))),
      r3, EqCols(f.db->Attr("R2", "fk"), f.db->Attr("R3", "k")));
  return f;
}

void BM_MaterializingEval(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Relation out = Eval(f.plan, *f.db);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MaterializingEval)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_PipelinedExec(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Relation out = ExecutePipelined(f.plan, *f.db);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PipelinedExec)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Pipelines can stop early without paying for the full result: take the
// first row of a large join. The materializing evaluator must compute
// everything.
void BM_Pipelined_FirstRowOnly(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    IteratorPtr root = BuildIterator(f.plan, *f.db);
    root->Open();
    Tuple tuple;
    bool got = root->Next(&tuple);
    FRO_CHECK(got);
    root->Close();
    benchmark::DoNotOptimize(tuple);
  }
}
BENCHMARK(BM_Pipelined_FirstRowOnly)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Counter-instrumentation overhead: the same pipeline with wall-clock
// timing enabled on every operator. Compare against BM_PipelinedExec
// (counters only, timing off — the default) to price the instrumentation;
// the counters themselves should stay within a few percent of free.
void BM_PipelinedExec_Timed(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    IteratorPtr root = BuildIterator(f.plan, *f.db);
    root->EnableTiming();
    Relation out = Drain(root.get());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PipelinedExec_Timed)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Nested-loop pipeline emitting one output row per Next() call: the case
// where rebuilding the joined scheme on every Next (the bug this release
// fixes) was pure per-row overhead. R2 -> R3 is one-to-one, so n rows
// stream through the join.
void BM_NestedLoopManyRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto db = MakeExample1Database(n);
  ExprPtr q = Expr::OuterJoin(
      Expr::Leaf(db->Rel("R2"), *db), Expr::Leaf(db->Rel("R3"), *db),
      EqCols(db->Attr("R2", "fk"), db->Attr("R3", "k")));
  for (auto _ : state) {
    Relation out = ExecutePipelined(q, *db, JoinAlgo::kNestedLoop);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NestedLoopManyRows)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

// Same shape through the hash join, where the hoisted scheme matters most:
// every one of the n output rows used to pay a scheme rebuild.
void BM_HashJoinManyRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto db = MakeExample1Database(n);
  ExprPtr q = Expr::OuterJoin(
      Expr::Leaf(db->Rel("R2"), *db), Expr::Leaf(db->Rel("R3"), *db),
      EqCols(db->Attr("R2", "fk"), db->Attr("R3", "k")));
  for (auto _ : state) {
    Relation out = ExecutePipelined(q, *db);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashJoinManyRows)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Agreement check under the timer (doubles as a soak test).
void BM_ExecutorsAgree(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool equal =
        BagEquals(Eval(f.plan, *f.db), ExecutePipelined(f.plan, *f.db));
    FRO_CHECK(equal);
    benchmark::DoNotOptimize(equal);
  }
}
BENCHMARK(BM_ExecutorsAgree)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

// Raw scan-filter pipeline throughput.
void BM_ScanFilterPipeline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto db = MakeExample1Database(n);
  ExprPtr q = Expr::Restrict(
      Expr::Leaf(db->Rel("R2"), *db),
      CmpLit(CmpOp::kLt, db->Attr("R2", "k"), Value::Int(n / 2)));
  for (auto _ : state) {
    Relation out = ExecutePipelined(q, *db);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScanFilterPipeline)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Hash-index probe paths: allocating a fresh key vector per probe versus
// borrowing a reused scratch buffer (the HashJoinIterator probe loop).
struct ProbeFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<Relation> rel;
  std::unique_ptr<HashIndex> index;
};

ProbeFixture MakeProbeFixture(int n) {
  ProbeFixture f;
  f.db = MakeExample1Database(n);
  f.rel = std::make_unique<Relation>(f.db->relation(f.db->Rel("R2")));
  f.index = std::make_unique<HashIndex>(
      *f.rel, std::vector<AttrId>{f.db->Attr("R2", "k")});
  return f;
}

void BM_ProbeAllocKey(benchmark::State& state) {
  ProbeFixture f = MakeProbeFixture(static_cast<int>(state.range(0)));
  const int n = static_cast<int>(state.range(0));
  size_t hits = 0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      std::vector<Value> key;
      key.reserve(1);
      key.push_back(Value::Int(i));
      hits += f.index->Probe(key).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProbeAllocKey)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_ProbeBorrowedKey(benchmark::State& state) {
  ProbeFixture f = MakeProbeFixture(static_cast<int>(state.range(0)));
  const int n = static_cast<int>(state.range(0));
  size_t hits = 0;
  std::vector<Value> key;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      key.clear();
      key.push_back(Value::Int(i));
      hits += f.index->Probe(key.data(), key.size()).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProbeBorrowedKey)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
