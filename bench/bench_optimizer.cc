// Experiment E8 — the Section 6.1 claim: extending a conventional DP
// optimizer to freely-reorderable join/outerjoin queries. Measures DP
// search time versus relation count and the plan-quality spread
// (best IT vs worst IT vs the syntactic order).

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "optimizer/greedy.h"
#include "optimizer/optimizer.h"
#include "testing/datagen.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

GeneratedQuery MakeQuery(int n, uint64_t seed) {
  Rng rng(seed);
  RandomQueryOptions options;
  options.num_relations = n;
  options.oj_fraction = 0.4;
  options.extra_join_edge_prob = 0.2;
  options.rows.rows_min = 2;
  options.rows.rows_max = 8;
  return GenerateRandomQuery(options, &rng);
}

void RunDpSearch(benchmark::State& state, DpAlgorithm algorithm) {
  const int n = static_cast<int>(state.range(0));
  GeneratedQuery q = MakeQuery(n, 11);
  CostModel model(*q.db, CostKind::kCout);
  DpOptions options;
  options.algorithm = algorithm;
  uint64_t considered = 0;
  uint64_t states = 0;
  for (auto _ : state) {
    Result<PlanResult> best = OptimizeReorderable(q.graph, *q.db, model,
                                                  /*maximize=*/false, options);
    FRO_CHECK(best.ok());
    benchmark::DoNotOptimize(*best);
    considered = best->plans_considered;
    states = best->states_visited;
  }
  state.counters["plans_considered"] = static_cast<double>(considered);
  state.counters["states_visited"] = static_cast<double>(states);
  state.counters["relations"] = n;
}

void BM_DpSearch(benchmark::State& state) {
  RunDpSearch(state, DpAlgorithm::kDpccp);
}
void BM_DpSearch_AllMasks(benchmark::State& state) {
  RunDpSearch(state, DpAlgorithm::kAllMasks);
}
BENCHMARK(BM_DpSearch)
    ->Arg(5)
    ->Arg(8)
    ->Arg(11)
    ->Arg(14)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DpSearch_AllMasks)
    ->Arg(5)
    ->Arg(8)
    ->Arg(11)
    ->Arg(14)
    ->Unit(benchmark::kMicrosecond);

// Greedy ordering: time and cost relative to the exact DP where the DP
// is feasible; standalone scaling beyond it.
void BM_GreedySearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneratedQuery q = MakeQuery(n, 11);
  CostModel model(*q.db, CostKind::kCout);
  double cost_ratio = 0;
  for (auto _ : state) {
    Result<PlanResult> greedy = OptimizeGreedy(q.graph, *q.db, model);
    FRO_CHECK(greedy.ok());
    benchmark::DoNotOptimize(*greedy);
    if (n <= 14) {
      Result<PlanResult> best = OptimizeReorderable(q.graph, *q.db, model);
      FRO_CHECK(best.ok());
      double best_cost = model.PlanCost(best->plan);
      cost_ratio =
          best_cost > 0 ? model.PlanCost(greedy->plan) / best_cost : 1.0;
    }
  }
  state.counters["relations"] = n;
  if (n <= 14) state.counters["greedy_over_optimal"] = cost_ratio;
}
BENCHMARK(BM_GreedySearch)
    ->Arg(8)
    ->Arg(11)
    ->Arg(14)
    ->Arg(20)
    ->Arg(28)
    ->Unit(benchmark::kMicrosecond);

// Plan-quality spread on random freely-reorderable graphs.
void BM_PlanQualitySpread(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneratedQuery q = MakeQuery(n, 12);
  CostModel model(*q.db, CostKind::kCout);
  Rng rng(13);
  ExprPtr syntactic = RandomIt(q.graph, *q.db, &rng);
  double best_cost = 0, worst_cost = 0, syntactic_cost = 0;
  for (auto _ : state) {
    Result<PlanResult> best = OptimizeReorderable(q.graph, *q.db, model);
    Result<PlanResult> worst =
        OptimizeReorderable(q.graph, *q.db, model, /*maximize=*/true);
    FRO_CHECK(best.ok() && worst.ok());
    best_cost = best->cost;
    worst_cost = worst->cost;
    syntactic_cost = model.PlanCost(syntactic);
    benchmark::DoNotOptimize(best_cost);
  }
  state.counters["best_cost"] = best_cost;
  state.counters["worst_cost"] = worst_cost;
  state.counters["syntactic_cost"] = syntactic_cost;
  state.counters["worst_over_best"] =
      best_cost > 0 ? worst_cost / best_cost : 0;
}
BENCHMARK(BM_PlanQualitySpread)
    ->Arg(6)
    ->Arg(9)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

// End-to-end facade: simplification + analysis + DP + execution, against
// executing the naive association directly. Uses Example 1 at scale.
void BM_EndToEnd_OptimizeAndRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto db = MakeExample1Database(n);
  ExprPtr naive = Expr::Join(
      Expr::Leaf(db->Rel("R1"), *db),
      Expr::OuterJoin(Expr::Leaf(db->Rel("R2"), *db),
                      Expr::Leaf(db->Rel("R3"), *db),
                      EqCols(db->Attr("R2", "fk"), db->Attr("R3", "k"))),
      EqCols(db->Attr("R1", "k"), db->Attr("R2", "k")));
  OptimizeOptions options;
  options.cost_kind = CostKind::kBaseRetrievals;
  for (auto _ : state) {
    Result<OptimizeOutcome> outcome = Optimize(naive, *db, options);
    FRO_CHECK(outcome.ok());
    Relation out = Eval(outcome->plan, *db);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EndToEnd_OptimizeAndRun)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEnd_NaiveRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto db = MakeExample1Database(n);
  ExprPtr naive = Expr::Join(
      Expr::Leaf(db->Rel("R1"), *db),
      Expr::OuterJoin(Expr::Leaf(db->Rel("R2"), *db),
                      Expr::Leaf(db->Rel("R3"), *db),
                      EqCols(db->Attr("R2", "fk"), db->Attr("R3", "k"))),
      EqCols(db->Attr("R1", "k"), db->Attr("R2", "k")));
  for (auto _ : state) {
    Relation out = Eval(naive, *db);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EndToEnd_NaiveRun)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
