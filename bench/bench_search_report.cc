// Before/after report for the plan-space-search optimizations: closure
// dedup by fingerprint string (the seed behaviour, replicated locally)
// versus cached structural hash and the parallel worker pool; DP by
// all-masks submask scan versus DPccp csg-cmp enumeration; hash-index
// probing with a per-probe key allocation versus a borrowed scratch key.
//
// Emits a JSON array of {op, n, wall_ns, plans_considered,
// states_visited} rows on stdout (scripts/bench.sh redirects it into
// BENCH_PR2.json). `--smoke` runs one repetition of everything so CI can
// exercise the binary cheaply.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/transform.h"
#include "common/check.h"
#include "common/rng.h"
#include "enumerate/closure.h"
#include "enumerate/it_enum.h"
#include "optimizer/dp.h"
#include "relational/index.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Row {
  const char* op;
  int n;
  int64_t wall_ns;
  uint64_t plans_considered;
  uint64_t states_visited;
};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Topology {
  std::unique_ptr<Database> db;
  QueryGraph graph;
};

Topology MakeChain(int n, bool with_outerjoins) {
  Topology t;
  t.db = std::make_unique<Database>();
  for (int i = 0; i < n; ++i) {
    RelId r = *t.db->AddRelation("R" + std::to_string(i), {"a"});
    t.graph.AddNode(r, t.db->scheme(r).ToAttrSet());
    t.db->AddRow(r, {Value::Int(i % 3)});
    t.db->AddRow(r, {Value::Int((i + 1) % 3)});
  }
  for (int i = 0; i + 1 < n; ++i) {
    PredicatePtr pred = EqCols(t.db->Attr("R" + std::to_string(i), "a"),
                               t.db->Attr("R" + std::to_string(i + 1), "a"));
    if (with_outerjoins && i >= (n - 1) / 2) {
      FRO_CHECK(t.graph.AddOuterJoinEdge(i, i + 1, pred).ok());
    } else {
      FRO_CHECK(t.graph.AddJoinEdge(i, i + 1, pred).ok());
    }
  }
  return t;
}

// ---------------------------------------------------------------------
// Seed-replica closure: breadth-first search deduplicated on
// Fingerprint() strings, exactly as the pre-hash implementation did.

void CollectJoinLikePaths(const ExprPtr& node, ExprPath* path,
                          std::vector<ExprPath>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->is_join_like()) out->push_back(*path);
  if (node->left() != nullptr) {
    path->push_back(false);
    CollectJoinLikePaths(node->left(), path, out);
    path->pop_back();
  }
  if (node->right() != nullptr) {
    path->push_back(true);
    CollectJoinLikePaths(node->right(), path, out);
    path->pop_back();
  }
}

std::vector<ExprPtr> FingerprintNeighbors(const ExprPtr& tree,
                                          uint64_t* applications) {
  std::vector<ExprPtr> out;
  std::vector<ExprPath> paths;
  ExprPath scratch;
  CollectJoinLikePaths(tree, &scratch, &paths);
  for (const ExprPath& p : paths) {
    for (bool flip_node : {false, true}) {
      ExprPtr t1 = tree;
      if (flip_node) {
        Result<ExprPtr> flipped =
            ApplyBt(tree, BtSite{BtSite::Kind::kReversal, p});
        if (!flipped.ok()) continue;
        t1 = *flipped;
      }
      for (BtSite::Kind kind :
           {BtSite::Kind::kAssocLR, BtSite::Kind::kAssocRL}) {
        ExprPath child_path = p;
        child_path.push_back(kind == BtSite::Kind::kAssocRL);
        for (bool flip_child : {false, true}) {
          ExprPtr t2 = t1;
          if (flip_child) {
            Result<ExprPtr> flipped =
                ApplyBt(t1, BtSite{BtSite::Kind::kReversal, child_path});
            if (!flipped.ok()) continue;
            t2 = *flipped;
          }
          BtSite site{kind, p};
          if (!IsApplicable(t2, site)) continue;
          Result<ExprPtr> next = ApplyBt(t2, site);
          FRO_CHECK(next.ok());
          ++*applications;
          out.push_back(CanonicalOrientation(*next));
        }
      }
    }
  }
  return out;
}

size_t FingerprintClosure(const ExprPtr& start, uint64_t* applications) {
  std::unordered_set<std::string> seen;
  std::deque<ExprPtr> queue;
  ExprPtr canonical_start = CanonicalOrientation(start);
  seen.insert(canonical_start->Fingerprint());
  queue.push_back(canonical_start);
  while (!queue.empty()) {
    ExprPtr tree = queue.front();
    queue.pop_front();
    for (const ExprPtr& next : FingerprintNeighbors(tree, applications)) {
      if (seen.insert(next->Fingerprint()).second) queue.push_back(next);
    }
  }
  return seen.size();
}

// ---------------------------------------------------------------------

Row BenchClosureFingerprint(const ExprPtr& start, int n, int reps) {
  int64_t best = -1;
  uint64_t applications = 0;
  size_t states = 0;
  for (int r = 0; r < reps; ++r) {
    uint64_t apps = 0;
    int64_t t0 = NowNs();
    states = FingerprintClosure(start, &apps);
    int64_t dt = NowNs() - t0;
    if (best < 0 || dt < best) best = dt;
    applications = apps;
  }
  return {"closure_fingerprint", n, best, applications, states};
}

Row BenchClosureHash(const ExprPtr& start, int n, int reps, int threads,
                     const char* op) {
  int64_t best = -1;
  ClosureResult result;
  for (int r = 0; r < reps; ++r) {
    ClosureOptions options;
    options.num_threads = threads;
    int64_t t0 = NowNs();
    result = BtClosure(start, options);
    int64_t dt = NowNs() - t0;
    if (best < 0 || dt < best) best = dt;
  }
  FRO_CHECK(!result.truncated);
  return {op, n, best, result.bt_applications, result.trees.size()};
}

Row BenchDp(const Topology& t, const CostModel& model, int n, int reps,
            DpAlgorithm algorithm, const char* op, double* cost_out) {
  int64_t best_dt = -1;
  PlanResult plan;
  DpOptions options;
  options.algorithm = algorithm;
  for (int r = 0; r < reps; ++r) {
    int64_t t0 = NowNs();
    Result<PlanResult> best =
        OptimizeReorderable(t.graph, *t.db, model, /*maximize=*/false,
                            options);
    int64_t dt = NowNs() - t0;
    FRO_CHECK(best.ok());
    plan = *best;
    if (best_dt < 0 || dt < best_dt) best_dt = dt;
  }
  *cost_out = plan.cost;
  return {op, n, best_dt, plan.plans_considered, plan.states_visited};
}

Row BenchProbe(const Relation& rel, const HashIndex& index, int probes,
               int reps, bool borrowed, const char* op) {
  int64_t best = -1;
  size_t hits = 0;
  std::vector<Value> scratch;
  for (int r = 0; r < reps; ++r) {
    hits = 0;
    int64_t t0 = NowNs();
    for (int i = 0; i < probes; ++i) {
      if (borrowed) {
        scratch.clear();
        scratch.push_back(Value::Int(i));
        hits += index.Probe(scratch.data(), scratch.size()).size();
      } else {
        std::vector<Value> key;
        key.reserve(1);
        key.push_back(Value::Int(i));
        hits += index.Probe(key).size();
      }
    }
    int64_t dt = NowNs() - t0;
    if (best < 0 || dt < best) best = dt;
  }
  return {op, probes, best, 0, hits};
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int reps = smoke ? 1 : 5;
  std::vector<Row> rows;

  // Closure of an 8-node join chain: fingerprint-string dedup (seed
  // replica) vs cached-hash dedup, serial and parallel.
  {
    const int n = smoke ? 6 : 8;
    Topology t = MakeChain(n, /*with_outerjoins=*/false);
    Rng rng(100);
    ExprPtr start = RandomIt(t.graph, *t.db, &rng);
    FRO_CHECK(start != nullptr);
    Row fp = BenchClosureFingerprint(start, n, reps);
    Row hash = BenchClosureHash(start, n, reps, 1, "closure_hash");
    Row par = BenchClosureHash(start, n, reps, 4, "closure_parallel");
    FRO_CHECK_EQ(fp.states_visited, hash.states_visited);
    FRO_CHECK_EQ(fp.states_visited, par.states_visited);
    rows.push_back(fp);
    rows.push_back(hash);
    rows.push_back(par);
  }

  // DP over a 14-node join chain (a nice graph): all-masks submask scan
  // vs DPccp. Chosen costs must agree exactly.
  {
    const int n = smoke ? 10 : 14;
    Topology t = MakeChain(n, /*with_outerjoins=*/false);
    CostModel model(*t.db, CostKind::kCout);
    double cost_all = 0, cost_ccp = 0;
    rows.push_back(BenchDp(t, model, n, reps, DpAlgorithm::kAllMasks,
                           "dp_allmasks", &cost_all));
    rows.push_back(BenchDp(t, model, n, reps, DpAlgorithm::kDpccp,
                           "dp_dpccp", &cost_ccp));
    FRO_CHECK_EQ(cost_all, cost_ccp);
  }

  // Hash-index probes: fresh key vector per probe vs borrowed scratch.
  {
    const int probes = smoke ? 1000 : 100000;
    auto db = MakeExample1Database(probes);
    const Relation& rel = db->relation(db->Rel("R2"));
    HashIndex index(rel, std::vector<AttrId>{db->Attr("R2", "k")});
    rows.push_back(
        BenchProbe(rel, index, probes, reps, false, "probe_alloc"));
    rows.push_back(
        BenchProbe(rel, index, probes, reps, true, "probe_borrowed"));
  }

  std::printf("[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("  {\"op\": \"%s\", \"n\": %d, \"wall_ns\": %lld, "
                "\"plans_considered\": %llu, \"states_visited\": %llu}%s\n",
                r.op, r.n, static_cast<long long>(r.wall_ns),
                static_cast<unsigned long long>(r.plans_considered),
                static_cast<unsigned long long>(r.states_visited),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("]\n");
  return 0;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
