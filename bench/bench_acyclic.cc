// Yannakakis semijoin programs vs the best binary plan on skewed
// acyclic chains. The chain R1(a,b) - R2(b,c) - R3(c,d) is built so
// that EVERY binary join order hits a ~K^2 many-to-many intermediate
// that is entirely dangling: R2 carries K rows on a heavy b-key that
// die toward R3 and K rows on a heavy c-key that die toward R1, while
// the small live block (s rows) fans out to f matches on each end. The
// semijoin program reduces R2 to the live block first, so its
// intermediates stay linear in input + output; the advantage grows
// with K. A 4-chain variant stacks two dangling blowups.
//
// For every workload and scale the query is planned twice — once with
// the acyclic pass disabled (the DPccp binary plan) and once through
// the full cost-gated pipeline (which must choose the semijoin
// program; the bench CHECKs that the gate fired) — and both plans are
// drained through the batch engine with cross-checked cardinalities.
// Emits a JSON array on stdout (scripts/bench.sh redirects it into
// BENCH_PR9.json); each row is {pipeline, rows, out_rows, batch_ns,
// batch_min_ns, batch_max_ns} with "speedup_vs_binary" on the acyclic
// rows — the field the PR 9 acceptance bar (>= 2x on the skewed
// chains) reads, while batch_ns/batch_min_ns let
// scripts/bench_compare.py gate regressions. `--smoke` reduces the
// repetition count for CI.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/check.h"
#include "exec/build.h"
#include "optimizer/optimizer.h"
#include "relational/predicate.h"

namespace fro {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timing {
  int64_t median_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
};

template <typename RunOnce>
Timing MeasureReps(int reps, RunOnce&& run_once) {
  std::vector<int64_t> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const int64_t start = NowNs();
    run_once();
    samples.push_back(NowNs() - start);
  }
  std::sort(samples.begin(), samples.end());
  Timing t;
  const size_t n = samples.size();
  t.median_ns = n % 2 == 1 ? samples[n / 2]
                           : (samples[n / 2 - 1] + samples[n / 2]) / 2;
  t.min_ns = samples.front();
  t.max_ns = samples.back();
  return t;
}

struct Report {
  std::string pipeline;
  size_t rows;      // total input rows across the operands
  size_t out_rows;  // result cardinality (identical for both plans)
  Timing timing;
  double speedup_vs_binary = 0;  // acyclic rows only
};

// Counts kSemijoin nodes reachable in a plan (shared subtrees counted
// once per path — nonzero iff the program inserted reductions).
int CountSemijoins(const ExprPtr& expr) {
  if (expr == nullptr || expr->kind() == OpKind::kLeaf) return 0;
  int n = expr->kind() == OpKind::kSemijoin ? 1 : 0;
  if (expr->is_multiway()) {
    for (const ExprPtr& child : expr->mj_children()) {
      n += CountSemijoins(child);
    }
    return n;
  }
  return n + CountSemijoins(expr->left()) + CountSemijoins(expr->right());
}

// The middle relation of a dangling blowup: K rows on heavy key
// `left_key` whose right-hand values are dead downstream, K rows with
// distinct dead left-hand values on heavy right key `right_key`, and
// `s` live (0, 0) rows. `dead_base` offsets the dead value ranges so
// the blocks of different relations never collide.
void FillDanglingMiddle(Database* db, RelId rel, int k, int s,
                        int left_key, int right_key, int dead_base) {
  for (int j = 1; j <= k; ++j) {
    db->AddRow(rel, {Value::Int(left_key), Value::Int(dead_base + j)});
    db->AddRow(rel, {Value::Int(dead_base + k + j), Value::Int(right_key)});
  }
  for (int i = 0; i < s; ++i) {
    db->AddRow(rel, {Value::Int(0), Value::Int(0)});
  }
}

// An end relation: f live rows keyed 0 and K rows on `heavy_key` (the
// neighbor's dangling block partner). `key_col` 0 puts the join key in
// the first column (a left end), 1 in the second (a right end).
void FillEnd(Database* db, RelId rel, int k, int f, int heavy_key,
             int key_col) {
  for (int i = 1; i <= f; ++i) {
    Value key = Value::Int(0), payload = Value::Int(i);
    if (key_col == 0) {
      db->AddRow(rel, {key, payload});
    } else {
      db->AddRow(rel, {payload, key});
    }
  }
  for (int j = 1; j <= k; ++j) {
    Value key = Value::Int(heavy_key), payload = Value::Int(j);
    if (key_col == 0) {
      db->AddRow(rel, {key, payload});
    } else {
      db->AddRow(rel, {payload, key});
    }
  }
}

// Chain R0(a,b) - R1(b,c) - ... - R{n-1}: Ri.<right> = R{i+1}.<left>.
ExprPtr ChainQuery(const Database& db, int n) {
  auto attr = [&](int i, const char* name) {
    return db.Attr("R" + std::to_string(i), name);
  };
  ExprPtr expr = Expr::Leaf(0, db);
  for (int i = 1; i < n; ++i) {
    expr = Expr::Join(expr, Expr::Leaf(static_cast<RelId>(i), db),
                      EqCols(attr(i - 1, "a1"), attr(i, "a0")));
  }
  return expr;
}

size_t TotalRows(const Database& db, int num_rels) {
  size_t total = 0;
  for (RelId r = 0; r < static_cast<RelId>(num_rels); ++r) {
    total += db.relation(r).NumRows();
  }
  return total;
}

void Measure(const std::string& name, const ExprPtr& query,
             const Database& db, int num_rels, int reps,
             std::vector<Report>* reports) {
  OptimizeOptions off;
  off.pipeline = RewritePipeline::Default().Without("acyclic");
  Result<OptimizeOutcome> binary = Optimize(query, db, off);
  FRO_CHECK(binary.ok()) << binary.status().ToString();
  // The full pipeline: the cost-gated acyclic pass must pick the
  // semijoin program on these shapes — the bench measures the shipped
  // planner decision, not a forced rewrite.
  Result<OptimizeOutcome> acyclic = Optimize(query, db);
  FRO_CHECK(acyclic.ok()) << acyclic.status().ToString();
  FRO_CHECK(CountSemijoins(acyclic->plan) > 0)
      << name << ": the cost gate did not choose a semijoin program";

  const size_t rows = TotalRows(db, num_rels);
  size_t binary_out = 0, acyclic_out = 0;
  // One untimed warmup per plan.
  binary_out = ExecuteBatched(binary->plan, db).NumRows();
  acyclic_out = ExecuteBatched(acyclic->plan, db).NumRows();
  const Timing binary_t = MeasureReps(reps, [&] {
    binary_out = ExecuteBatched(binary->plan, db).NumRows();
  });
  const Timing acyclic_t = MeasureReps(reps, [&] {
    acyclic_out = ExecuteBatched(acyclic->plan, db).NumRows();
  });
  FRO_CHECK(binary_out == acyclic_out)
      << name << ": binary " << binary_out << " rows, acyclic "
      << acyclic_out;

  reports->push_back({name + "_binary", rows, binary_out, binary_t, 0});
  reports->push_back({name + "_acyclic", rows, acyclic_out, acyclic_t,
                      static_cast<double>(binary_t.median_ns) /
                          static_cast<double>(acyclic_t.median_ns)});
}

void Emit(const std::vector<Report>& reports) {
  std::printf("[\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const Report& r = reports[i];
    std::printf(
        "  {\"pipeline\": \"%s\", \"rows\": %zu, \"out_rows\": %zu, "
        "\"batch_ns\": %lld, \"batch_min_ns\": %lld, "
        "\"batch_max_ns\": %lld",
        r.pipeline.c_str(), r.rows, r.out_rows,
        static_cast<long long>(r.timing.median_ns),
        static_cast<long long>(r.timing.min_ns),
        static_cast<long long>(r.timing.max_ns));
    if (r.speedup_vs_binary > 0) {
      std::printf(", \"speedup_vs_binary\": %.2f", r.speedup_vs_binary);
    }
    std::printf("}%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::printf("]\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  // Smoke lowers the repetition count only: the scales (and so the
  // pipeline names) stay identical, which scripts/bench_compare.py
  // needs to match a smoke run against the committed full-run baseline.
  const int reps = smoke ? 5 : 9;
  const int f = 8;  // live fan on each chain end
  const int s = 2;  // live rows in each middle relation
  const std::vector<int> chain3_scales = {100, 200, 400};
  const std::vector<int> chain4_scales = {100, 200};

  std::vector<Report> reports;
  for (int k : chain3_scales) {
    // R0 -(b, heavy key 1)- R1 -(c, heavy key 2)- R2. R1's dead blocks
    // pair with the ends' heavy keys, so both join orders blow up.
    Database db;
    RelId r0 = *db.AddRelation("R0", {"a0", "a1"});
    RelId r1 = *db.AddRelation("R1", {"a0", "a1"});
    RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
    FillEnd(&db, r0, k, f, /*heavy_key=*/1, /*key_col=*/1);
    FillDanglingMiddle(&db, r1, k, s, /*left_key=*/1, /*right_key=*/2,
                       /*dead_base=*/1000);
    FillEnd(&db, r2, k, f, /*heavy_key=*/2, /*key_col=*/0);
    Measure("chain3_k" + std::to_string(k), ChainQuery(db, 3), db, 3, reps,
            &reports);
  }
  for (int k : chain4_scales) {
    // Two dangling middles back to back; their shared join key is live
    // only on the (0, 0) block.
    Database db;
    RelId r0 = *db.AddRelation("R0", {"a0", "a1"});
    RelId r1 = *db.AddRelation("R1", {"a0", "a1"});
    RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
    RelId r3 = *db.AddRelation("R3", {"a0", "a1"});
    FillEnd(&db, r0, k, f, /*heavy_key=*/1, /*key_col=*/1);
    FillDanglingMiddle(&db, r1, k, s, /*left_key=*/1, /*right_key=*/3,
                       /*dead_base=*/1000);
    FillDanglingMiddle(&db, r2, k, s, /*left_key=*/3, /*right_key=*/2,
                       /*dead_base=*/5000);
    FillEnd(&db, r3, k, f, /*heavy_key=*/2, /*key_col=*/0);
    Measure("chain4_k" + std::to_string(k), ChainQuery(db, 4), db, 4, reps,
            &reports);
  }
  Emit(reports);
  return 0;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
