// Experiment E12 — operator kernel throughput: nested-loop vs hash for
// join, outerjoin, antijoin, and semijoin across input sizes and match
// rates. Substrate validation for E1/E8.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "relational/database.h"
#include "relational/index.h"
#include "relational/ops.h"
#include "relational/sort_merge.h"

namespace fro {
namespace {

struct Fixture {
  std::unique_ptr<Database> db;
  PredicatePtr pred;
  RelId left, right;
};

Fixture MakeFixture(int rows, int domain) {
  Fixture f;
  f.db = std::make_unique<Database>();
  f.left = *f.db->AddRelation("L", {"a", "b"});
  f.right = *f.db->AddRelation("R", {"c", "d"});
  Rng rng(7);
  for (int i = 0; i < rows; ++i) {
    f.db->AddRow(f.left, {Value::Int(rng.UniformInt(0, domain - 1)),
                          Value::Int(i)});
    f.db->AddRow(f.right, {Value::Int(rng.UniformInt(0, domain - 1)),
                           Value::Int(i)});
  }
  f.pred = EqCols(f.db->Attr("L", "a"), f.db->Attr("R", "c"));
  return f;
}

template <Relation (*Kernel)(const Relation&, const Relation&,
                             const PredicatePtr&, JoinAlgo, KernelStats*,
                             const HashIndex*)>
void RunKernel(benchmark::State& state, JoinAlgo algo) {
  const int rows = static_cast<int>(state.range(0));
  Fixture f = MakeFixture(rows, /*domain=*/rows);  // ~1 match per row
  const Relation& left = f.db->relation(f.left);
  const Relation& right = f.db->relation(f.right);
  for (auto _ : state) {
    Relation out = Kernel(left, right, f.pred, algo, nullptr, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_Join_NestedLoop(benchmark::State& s) {
  RunKernel<Join>(s, JoinAlgo::kNestedLoop);
}
void BM_Join_Hash(benchmark::State& s) { RunKernel<Join>(s, JoinAlgo::kHash); }
void BM_OuterJoin_NestedLoop(benchmark::State& s) {
  RunKernel<LeftOuterJoin>(s, JoinAlgo::kNestedLoop);
}
void BM_OuterJoin_Hash(benchmark::State& s) {
  RunKernel<LeftOuterJoin>(s, JoinAlgo::kHash);
}
void BM_Antijoin_NestedLoop(benchmark::State& s) {
  RunKernel<Antijoin>(s, JoinAlgo::kNestedLoop);
}
void BM_Antijoin_Hash(benchmark::State& s) {
  RunKernel<Antijoin>(s, JoinAlgo::kHash);
}
void BM_Semijoin_Hash(benchmark::State& s) {
  RunKernel<Semijoin>(s, JoinAlgo::kHash);
}

BENCHMARK(BM_Join_NestedLoop)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Join_Hash)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OuterJoin_NestedLoop)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OuterJoin_Hash)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Antijoin_NestedLoop)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Antijoin_Hash)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Semijoin_Hash)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);

// Sort-merge strategy, same workload as the hash rows above.
void BM_Join_SortMerge(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Fixture f = MakeFixture(rows, rows);
  const Relation& left = f.db->relation(f.left);
  const Relation& right = f.db->relation(f.right);
  for (auto _ : state) {
    Relation out = SortMergeJoin(left, right, f.pred, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Join_SortMerge)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);

void BM_OuterJoin_SortMerge(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Fixture f = MakeFixture(rows, rows);
  const Relation& left = f.db->relation(f.left);
  const Relation& right = f.db->relation(f.right);
  for (auto _ : state) {
    Relation out = SortMergeLeftOuterJoin(left, right, f.pred, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_OuterJoin_SortMerge)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);

// High-fanout join: small key domain, quadratic-ish output.
void BM_Join_Hash_HighFanout(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Fixture f = MakeFixture(rows, /*domain=*/16);
  const Relation& left = f.db->relation(f.left);
  const Relation& right = f.db->relation(f.right);
  for (auto _ : state) {
    Relation out = Join(left, right, f.pred, JoinAlgo::kHash, nullptr);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Join_Hash_HighFanout)->Arg(512)->Arg(2048)->Unit(
    benchmark::kMicrosecond);

// Restriction and projection throughput.
void BM_Restrict(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)), 100);
  const Relation& left = f.db->relation(f.left);
  PredicatePtr pred =
      CmpLit(CmpOp::kLt, f.db->Attr("L", "a"), Value::Int(50));
  for (auto _ : state) {
    Relation out = Restrict(left, pred, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Restrict)->Arg(4096)->Arg(32768)->Unit(benchmark::kMicrosecond);

void BM_ProjectDedup(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)), 64);
  const Relation& left = f.db->relation(f.left);
  std::vector<AttrId> cols = {f.db->Attr("L", "a")};
  for (auto _ : state) {
    Relation out = Project(left, cols, /*dedup=*/true, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProjectDedup)->Arg(4096)->Arg(32768)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
