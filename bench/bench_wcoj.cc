// Worst-case-optimal multiway join vs the best binary plan on cyclic
// cores (triangle, 4-cycle, diamond). The triangle and 4-cycle use the
// classic AGM-hard edge relations {0}x[1..m] u [1..m]x{0} u {(0,0)}:
// every pairwise join produces a ~(m+1)^2 intermediate while the cycle
// output stays O(m), so the leapfrog triejoin's advantage grows with m.
// The diamond (two triangles sharing an edge) runs over skewed random
// data from testing/datagen.
//
// For every workload and scale the query is planned twice — once with
// multiway joins disabled (the DPccp binary plan) and once collapsed to
// a single kMultiwayJoin — and both plans are drained through the batch
// engine with cross-checked cardinalities. Emits a JSON array on stdout
// (scripts/bench.sh redirects it into BENCH_PR8.json); each row is
// {pipeline, rows, out_rows, batch_ns, batch_min_ns, batch_max_ns} with
// "speedup_vs_binary" on the multiway rows — the field the PR 8
// acceptance bar (>= 3x on the largest triangle) reads, while
// batch_ns/batch_min_ns let scripts/bench_compare.py gate regressions.
// `--smoke` reduces the repetition count for CI.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/check.h"
#include "common/rng.h"
#include "exec/build.h"
#include "optimizer/optimizer.h"
#include "optimizer/wcoj_rewrite.h"
#include "relational/predicate.h"
#include "testing/datagen.h"

namespace fro {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timing {
  int64_t median_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
};

template <typename RunOnce>
Timing MeasureReps(int reps, RunOnce&& run_once) {
  std::vector<int64_t> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const int64_t start = NowNs();
    run_once();
    samples.push_back(NowNs() - start);
  }
  std::sort(samples.begin(), samples.end());
  Timing t;
  const size_t n = samples.size();
  t.median_ns = n % 2 == 1 ? samples[n / 2]
                           : (samples[n / 2 - 1] + samples[n / 2]) / 2;
  t.min_ns = samples.front();
  t.max_ns = samples.back();
  return t;
}

struct Report {
  std::string pipeline;
  size_t rows;      // total input rows across the operands
  size_t out_rows;  // result cardinality (identical for both plans)
  Timing timing;
  double speedup_vs_binary = 0;  // multiway rows only
};

// The AGM-hard edge relation: (0, j) and (j, 0) for j in [1, m], plus
// (0, 0). Key 0 is a heavy hitter on both columns.
void FillAgmEdges(Database* db, RelId rel, int m) {
  db->AddRow(rel, {Value::Int(0), Value::Int(0)});
  for (int j = 1; j <= m; ++j) {
    db->AddRow(rel, {Value::Int(0), Value::Int(j)});
    db->AddRow(rel, {Value::Int(j), Value::Int(0)});
  }
}

// A k-cycle join query over relations R0..R{k-1}(a0, a1):
// Ri.a1 = R{i+1}.a0 around the cycle.
ExprPtr CycleQuery(const Database& db, int k) {
  auto attr = [&](int i, const char* name) {
    return db.Attr("R" + std::to_string(i), name);
  };
  ExprPtr expr = Expr::Leaf(0, db);
  for (int i = 1; i < k - 1; ++i) {
    expr = Expr::Join(expr, Expr::Leaf(static_cast<RelId>(i), db),
                      EqCols(attr(i - 1, "a1"), attr(i, "a0")));
  }
  PredicatePtr closing =
      AndOf(EqCols(attr(k - 2, "a1"), attr(k - 1, "a0")),
            EqCols(attr(k - 1, "a1"), attr(0, "a0")));
  return Expr::Join(expr, Expr::Leaf(static_cast<RelId>(k - 1), db),
                    closing);
}

// Diamond: two triangles sharing the A-C edge. Five equality classes
// over four 3-attribute relations.
ExprPtr DiamondQuery(const Database& db) {
  auto attr = [&](int i, const char* name) {
    return db.Attr("R" + std::to_string(i), name);
  };
  ExprPtr ab = Expr::Join(Expr::Leaf(0, db), Expr::Leaf(1, db),
                          EqCols(attr(0, "a0"), attr(1, "a0")));
  ExprPtr abc = Expr::Join(ab, Expr::Leaf(2, db),
                           AndOf(EqCols(attr(1, "a1"), attr(2, "a0")),
                                 EqCols(attr(0, "a1"), attr(2, "a1"))));
  return Expr::Join(abc, Expr::Leaf(3, db),
                    AndOf(EqCols(attr(2, "a2"), attr(3, "a0")),
                          EqCols(attr(0, "a2"), attr(3, "a1"))));
}

size_t TotalRows(const Database& db, int num_rels) {
  size_t total = 0;
  for (RelId r = 0; r < static_cast<RelId>(num_rels); ++r) {
    total += db.relation(r).NumRows();
  }
  return total;
}

void Measure(const std::string& name, const ExprPtr& query,
             const Database& db, int num_rels, int reps,
             std::vector<Report>* reports) {
  OptimizeOptions off;
  // Pure binary baseline: no multiway collapse, no semijoin programs.
  off.pipeline =
      RewritePipeline::Default().Without("wcoj").Without("acyclic");
  Result<OptimizeOutcome> binary = Optimize(query, db, off);
  FRO_CHECK(binary.ok()) << binary.status().ToString();
  ExprPtr multiway = ForceMultiwayJoins(query);

  const size_t rows = TotalRows(db, num_rels);
  size_t binary_out = 0, multiway_out = 0;
  // One untimed warmup per plan: the fastest pipelines finish in
  // microseconds, where cold caches would dominate the first sample.
  binary_out = ExecuteBatched(binary->plan, db).NumRows();
  multiway_out = ExecuteBatched(multiway, db).NumRows();
  const Timing binary_t = MeasureReps(reps, [&] {
    binary_out = ExecuteBatched(binary->plan, db).NumRows();
  });
  const Timing multiway_t = MeasureReps(reps, [&] {
    multiway_out = ExecuteBatched(multiway, db).NumRows();
  });
  FRO_CHECK(binary_out == multiway_out)
      << name << ": binary " << binary_out << " rows, multiway "
      << multiway_out;

  reports->push_back({name + "_binary", rows, binary_out, binary_t, 0});
  reports->push_back({name + "_multiway", rows, multiway_out, multiway_t,
                      static_cast<double>(binary_t.median_ns) /
                          static_cast<double>(multiway_t.median_ns)});
}

void Emit(const std::vector<Report>& reports) {
  std::printf("[\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const Report& r = reports[i];
    std::printf(
        "  {\"pipeline\": \"%s\", \"rows\": %zu, \"out_rows\": %zu, "
        "\"batch_ns\": %lld, \"batch_min_ns\": %lld, "
        "\"batch_max_ns\": %lld",
        r.pipeline.c_str(), r.rows, r.out_rows,
        static_cast<long long>(r.timing.median_ns),
        static_cast<long long>(r.timing.min_ns),
        static_cast<long long>(r.timing.max_ns));
    if (r.speedup_vs_binary > 0) {
      std::printf(", \"speedup_vs_binary\": %.2f", r.speedup_vs_binary);
    }
    std::printf("}%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::printf("]\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  // Smoke lowers the repetition count only: the scales (and so the
  // pipeline names) stay identical, which scripts/bench_compare.py
  // needs to match a smoke run against the committed full-run baseline.
  const int reps = smoke ? 5 : 9;
  const std::vector<int> triangle_scales = {50, 100, 200, 400};
  const std::vector<int> cycle_scales = {50, 100, 200};
  const std::vector<int> diamond_rows = {1000, 4000};

  std::vector<Report> reports;
  for (int m : triangle_scales) {
    Database db;
    for (int i = 0; i < 3; ++i) {
      RelId r = *db.AddRelation("R" + std::to_string(i), {"a0", "a1"});
      FillAgmEdges(&db, r, m);
    }
    Measure("triangle_m" + std::to_string(m), CycleQuery(db, 3), db, 3,
            reps, &reports);
  }
  for (int m : cycle_scales) {
    Database db;
    for (int i = 0; i < 4; ++i) {
      RelId r = *db.AddRelation("R" + std::to_string(i), {"a0", "a1"});
      FillAgmEdges(&db, r, m);
    }
    Measure("four_cycle_m" + std::to_string(m), CycleQuery(db, 4), db, 4,
            reps, &reports);
  }
  for (int n : diamond_rows) {
    Rng rng(0x8a9);
    RandomRowsOptions rows;
    rows.rows_min = n;
    rows.rows_max = n;
    rows.domain = std::max(4, n / 8);
    rows.null_prob = 0.05;
    rows.skew = 2;
    std::unique_ptr<Database> db = MakeRandomDatabase(4, 3, rows, &rng);
    Measure("diamond_n" + std::to_string(n), DiamondQuery(*db), *db, 4,
            reps, &reports);
  }
  Emit(reports);
  return 0;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
