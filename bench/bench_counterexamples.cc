// Experiments E3 and E4 — the paper's negative results, measured.
//
// E3 (Example 2): the graph X -> Y - Z has two implementing trees that
// disagree; we measure the rate at which random databases expose the
// disagreement, and reproduce the exact instance from the paper.
//
// E4 (Example 3): a non-strong outerjoin predicate breaks identity 12; we
// measure the disagreement rate of (X -> Y) -> Z vs X -> (Y -> Z) under
// weak predicates and confirm a zero rate under strong predicates.

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "common/rng.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Tri {
  std::unique_ptr<Database> db;
  ExprPtr x, y, z;
  AttrId xa, ya, yb, za;
};

Tri MakeTri(Rng* rng) {
  Tri t;
  RandomRowsOptions rows;
  rows.rows_min = 1;
  rows.rows_max = 5;
  rows.domain = 3;
  rows.null_prob = 0.2;
  t.db = MakeRandomDatabase(3, 2, rows, rng);
  t.x = Expr::Leaf(t.db->Rel("R0"), *t.db);
  t.y = Expr::Leaf(t.db->Rel("R1"), *t.db);
  t.z = Expr::Leaf(t.db->Rel("R2"), *t.db);
  t.xa = t.db->Attr("R0", "a0");
  t.ya = t.db->Attr("R1", "a0");
  t.yb = t.db->Attr("R1", "a1");
  t.za = t.db->Attr("R2", "a0");
  return t;
}

// E3: disagreement rate of the two associations of X -> (Y - Z).
void BM_Example2_DisagreementRate(benchmark::State& state) {
  Rng rng(2024);
  uint64_t trials = 0;
  uint64_t disagreements = 0;
  for (auto _ : state) {
    Tri t = MakeTri(&rng);
    PredicatePtr poj = EqCols(t.xa, t.ya);
    PredicatePtr pjn = EqCols(t.yb, t.za);
    ExprPtr oj_of_join = Expr::OuterJoin(t.x, Expr::Join(t.y, t.z, pjn), poj);
    ExprPtr join_of_oj = Expr::Join(Expr::OuterJoin(t.x, t.y, poj), t.z, pjn);
    bool equal =
        BagEquals(Eval(oj_of_join, *t.db), Eval(join_of_oj, *t.db));
    benchmark::DoNotOptimize(equal);
    ++trials;
    if (!equal) ++disagreements;
  }
  state.counters["disagree_rate"] =
      trials == 0 ? 0 : static_cast<double>(disagreements) / trials;
  state.counters["trials"] = static_cast<double>(trials);
}
BENCHMARK(BM_Example2_DisagreementRate)->Unit(benchmark::kMicrosecond);

// E3: the paper's exact instance: {(r1)}, {(r2)}, {(r3)} with the join
// predicate failing — first form yields one padded tuple, second the
// empty set.
void BM_Example2_ExactInstance(benchmark::State& state) {
  Database db;
  RelId r1 = *db.AddRelation("R1", {"a"});
  RelId r2 = *db.AddRelation("R2", {"b"});
  RelId r3 = *db.AddRelation("R3", {"c"});
  db.AddRow(r1, {Value::Int(1)});
  db.AddRow(r2, {Value::Int(1)});
  db.AddRow(r3, {Value::Int(9)});
  PredicatePtr poj = EqCols(db.Attr("R1", "a"), db.Attr("R2", "b"));
  PredicatePtr pjn = EqCols(db.Attr("R2", "b"), db.Attr("R3", "c"));
  ExprPtr first = Expr::OuterJoin(
      Expr::Leaf(r1, db),
      Expr::Join(Expr::Leaf(r2, db), Expr::Leaf(r3, db), pjn), poj);
  ExprPtr second = Expr::Join(
      Expr::OuterJoin(Expr::Leaf(r1, db), Expr::Leaf(r2, db), poj),
      Expr::Leaf(r3, db), pjn);
  for (auto _ : state) {
    Relation a = Eval(first, db);
    Relation b = Eval(second, db);
    FRO_CHECK_EQ(a.NumRows(), 1u);
    FRO_CHECK_EQ(b.NumRows(), 0u);
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
  }
  state.counters["first_rows"] = 1;
  state.counters["second_rows"] = 0;
}
BENCHMARK(BM_Example2_ExactInstance)->Unit(benchmark::kMicrosecond);

// E4: identity 12 under weak vs strong predicates.
void Identity12Rate(benchmark::State& state, bool weak) {
  Rng rng(2025);
  uint64_t trials = 0;
  uint64_t disagreements = 0;
  for (auto _ : state) {
    Tri t = MakeTri(&rng);
    PredicatePtr pxy = EqCols(t.xa, t.ya);
    PredicatePtr pyz =
        weak ? Predicate::Or({EqCols(t.yb, t.za),
                              Predicate::IsNull(Operand::Column(t.yb))})
             : EqCols(t.yb, t.za);
    ExprPtr lhs =
        Expr::OuterJoin(Expr::OuterJoin(t.x, t.y, pxy), t.z, pyz);
    ExprPtr rhs =
        Expr::OuterJoin(t.x, Expr::OuterJoin(t.y, t.z, pyz), pxy);
    bool equal = BagEquals(Eval(lhs, *t.db), Eval(rhs, *t.db));
    benchmark::DoNotOptimize(equal);
    ++trials;
    if (!equal) ++disagreements;
  }
  // A strong predicate admits no disagreement, ever (identity 12).
  if (!weak) FRO_CHECK_EQ(disagreements, 0u);
  state.counters["disagree_rate"] =
      trials == 0 ? 0 : static_cast<double>(disagreements) / trials;
  state.counters["trials"] = static_cast<double>(trials);
}

void BM_Example3_WeakPredicateRate(benchmark::State& state) {
  Identity12Rate(state, /*weak=*/true);
}
void BM_Example3_StrongPredicateRate(benchmark::State& state) {
  Identity12Rate(state, /*weak=*/false);
}
BENCHMARK(BM_Example3_WeakPredicateRate)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Example3_StrongPredicateRate)->Unit(benchmark::kMicrosecond);

// E4: the paper's exact Example 3 instance.
void BM_Example3_ExactInstance(benchmark::State& state) {
  Database db;
  RelId ra = *db.AddRelation("A", {"attr1"});
  RelId rb = *db.AddRelation("B", {"attr1", "attr2"});
  RelId rc = *db.AddRelation("C", {"attr1"});
  db.AddRow(ra, {Value::Int(0)});
  db.AddRow(rb, {Value::Int(1), Value::Null()});
  db.AddRow(rc, {Value::Int(2)});
  PredicatePtr pab = EqCols(db.Attr("A", "attr1"), db.Attr("B", "attr1"));
  PredicatePtr pbc = Predicate::Or(
      {EqCols(db.Attr("B", "attr2"), db.Attr("C", "attr1")),
       Predicate::IsNull(Operand::Column(db.Attr("B", "attr2")))});
  ExprPtr lhs = Expr::OuterJoin(
      Expr::OuterJoin(Expr::Leaf(ra, db), Expr::Leaf(rb, db), pab),
      Expr::Leaf(rc, db), pbc);
  ExprPtr rhs = Expr::OuterJoin(
      Expr::Leaf(ra, db),
      Expr::OuterJoin(Expr::Leaf(rb, db), Expr::Leaf(rc, db), pbc), pab);
  for (auto _ : state) {
    bool equal = BagEquals(Eval(lhs, db), Eval(rhs, db));
    FRO_CHECK(!equal);
    benchmark::DoNotOptimize(equal);
  }
  state.counters["disagree"] = 1;
}
BENCHMARK(BM_Example3_ExactInstance)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
