// Ablation: which cost model picks better plans?
//
// For random freely-reorderable queries, optimize under (a) C_out and
// (b) the paper's base-retrievals model, then EXECUTE both plans with
// instrumentation and report the actually-observed counters. Also
// executes the estimated-worst plan as a baseline, quantifying how much
// reordering freedom is worth end to end.

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "common/rng.h"
#include "graph/nice.h"
#include "optimizer/dp.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

GeneratedQuery MakeQuery(int n, uint64_t seed) {
  Rng rng(seed);
  RandomQueryOptions options;
  options.num_relations = n;
  options.oj_fraction = 0.4;
  options.extra_join_edge_prob = 0.2;
  options.rows.rows_min = 8;
  options.rows.rows_max = 24;
  options.rows.domain = 12;
  options.rows.null_prob = 0.1;
  return GenerateRandomQuery(options, &rng);
}

struct Measured {
  uint64_t base_reads;
  uint64_t intermediates;
};

Measured Execute(const ExprPtr& plan, const Database& db) {
  EvalStats stats;
  Relation out = Eval(plan, db, EvalOptions(), &stats);
  benchmark::DoNotOptimize(out);
  return {stats.base_tuples_read, stats.intermediate_tuples};
}

void BM_CostModelAblation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneratedQuery q = MakeQuery(n, 31 + static_cast<uint64_t>(n));
  CostModel cout_model(*q.db, CostKind::kCout);
  CostModel reads_model(*q.db, CostKind::kBaseRetrievals);

  Measured by_cout{}, by_reads{}, worst{};
  for (auto _ : state) {
    Result<PlanResult> cout_plan =
        OptimizeReorderable(q.graph, *q.db, cout_model);
    Result<PlanResult> reads_plan =
        OptimizeReorderable(q.graph, *q.db, reads_model);
    Result<PlanResult> worst_plan = OptimizeReorderable(
        q.graph, *q.db, cout_model, /*maximize=*/true);
    FRO_CHECK(cout_plan.ok() && reads_plan.ok() && worst_plan.ok());
    by_cout = Execute(cout_plan->plan, *q.db);
    by_reads = Execute(reads_plan->plan, *q.db);
    worst = Execute(worst_plan->plan, *q.db);
    // All three plans are implementing trees of the same nice graph:
    // identical results (Theorem 1).
    FRO_CHECK(BagEquals(Eval(cout_plan->plan, *q.db),
                        Eval(worst_plan->plan, *q.db)));
  }
  state.counters["cout_plan_intermediates"] =
      static_cast<double>(by_cout.intermediates);
  state.counters["reads_plan_intermediates"] =
      static_cast<double>(by_reads.intermediates);
  state.counters["worst_plan_intermediates"] =
      static_cast<double>(worst.intermediates);
  state.counters["cout_plan_base_reads"] =
      static_cast<double>(by_cout.base_reads);
  state.counters["reads_plan_base_reads"] =
      static_cast<double>(by_reads.base_reads);
}
BENCHMARK(BM_CostModelAblation)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Unit(benchmark::kMillisecond);

// Kernel-choice ablation: the same optimized plan executed with nested
// loops vs hash joins.
void BM_KernelAblation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneratedQuery q = MakeQuery(n, 77);
  CostModel model(*q.db, CostKind::kCout);
  Result<PlanResult> best = OptimizeReorderable(q.graph, *q.db, model);
  FRO_CHECK(best.ok());
  EvalOptions algo;
  algo.algo = state.range(1) == 0 ? JoinAlgo::kNestedLoop : JoinAlgo::kHash;
  for (auto _ : state) {
    Relation out = Eval(best->plan, *q.db, algo);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(state.range(1) == 0 ? "nested_loop" : "hash");
}
BENCHMARK(BM_KernelAblation)
    ->Args({7, 0})
    ->Args({7, 1})
    ->Args({9, 0})
    ->Args({9, 1})
    ->Unit(benchmark::kMicrosecond);

// Strength-analysis ablation: how often would a conservative optimizer
// (one that refuses to reorder any outerjoin) miss reordering freedom
// that Theorem 1 grants? Counts freely-reorderable graphs in a random
// workload.
void BM_ReorderabilityRate(benchmark::State& state) {
  Rng rng(55);
  uint64_t total = 0;
  uint64_t reorderable = 0;
  const double weak_prob = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    RandomQueryOptions options;
    options.num_relations = 5;
    options.weak_pred_prob = weak_prob;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ++total;
    if (CheckFreelyReorderable(q.graph).freely_reorderable()) ++reorderable;
    benchmark::DoNotOptimize(q.graph);
  }
  state.counters["reorderable_rate"] =
      total == 0 ? 0 : static_cast<double>(reorderable) / total;
}
BENCHMARK(BM_ReorderabilityRate)
    ->Arg(0)
    ->Arg(25)
    ->Arg(75)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
