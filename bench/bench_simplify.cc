// Experiment E10 — the Section 4 simplification rule: a strong filter
// above an outerjoin converts it to a join; measured result equality and
// the execution-cost reduction that conversion unlocks (a join can drive
// from the selective side; an outerjoin cannot).

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "algebra/simplify.h"
#include "common/check.h"
#include "optimizer/optimizer.h"
#include "testing/datagen.h"

namespace fro {
namespace {

// sigma[R3.k >= 0](R1 - (R2 -> R3)) over the Example 1 database: the
// filter is strong on R3, so the outerjoin may become a join, after which
// the whole query is a freely-reorderable join chain.
struct Fixture {
  std::unique_ptr<Database> db;
  ExprPtr query;
};

Fixture MakeFixture(int n) {
  Fixture f;
  f.db = MakeExample1Database(n);
  ExprPtr r1 = Expr::Leaf(f.db->Rel("R1"), *f.db);
  ExprPtr r2 = Expr::Leaf(f.db->Rel("R2"), *f.db);
  ExprPtr r3 = Expr::Leaf(f.db->Rel("R3"), *f.db);
  f.query = Expr::Restrict(
      Expr::Join(r1,
                 Expr::OuterJoin(
                     r2, r3,
                     EqCols(f.db->Attr("R2", "fk"), f.db->Attr("R3", "k"))),
                 EqCols(f.db->Attr("R1", "k"), f.db->Attr("R2", "k"))),
      CmpLit(CmpOp::kGe, f.db->Attr("R3", "k"), Value::Int(0)));
  return f;
}

void BM_SimplifyPass(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  int converted = 0;
  for (auto _ : state) {
    SimplifyResult result = SimplifyOuterjoins(f.query);
    benchmark::DoNotOptimize(result.expr);
    converted = result.outerjoins_converted;
  }
  FRO_CHECK_EQ(converted, 1);
  state.counters["outerjoins_converted"] = converted;
}
BENCHMARK(BM_SimplifyPass)->Arg(100)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

void BM_RunWithoutSimplification(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  uint64_t base_reads = 0;
  for (auto _ : state) {
    EvalStats stats;
    Relation out = Eval(f.query, *f.db, EvalOptions(), &stats);
    benchmark::DoNotOptimize(out);
    base_reads = stats.base_tuples_read;
  }
  state.counters["base_reads"] = static_cast<double>(base_reads);
}
BENCHMARK(BM_RunWithoutSimplification)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_RunWithSimplificationAndReorder(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  OptimizeOptions options;
  options.cost_kind = CostKind::kBaseRetrievals;
  Result<OptimizeOutcome> outcome = Optimize(f.query, *f.db, options);
  FRO_CHECK(outcome.ok());
  FRO_CHECK_EQ(outcome->PassApplications("simplify"), 1);
  FRO_CHECK(outcome->freely_reorderable);
  uint64_t base_reads = 0;
  for (auto _ : state) {
    EvalStats stats;
    Relation out = Eval(outcome->plan, *f.db, EvalOptions(), &stats);
    benchmark::DoNotOptimize(out);
    base_reads = stats.base_tuples_read;
  }
  state.counters["base_reads"] = static_cast<double>(base_reads);
}
BENCHMARK(BM_RunWithSimplificationAndReorder)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The rule is semantics-preserving, measured across scales.
void BM_SimplifiedAgrees(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  SimplifyResult simplified = SimplifyOuterjoins(f.query);
  for (auto _ : state) {
    bool equal =
        BagEquals(Eval(f.query, *f.db), Eval(simplified.expr, *f.db));
    FRO_CHECK(equal);
    benchmark::DoNotOptimize(equal);
  }
}
BENCHMARK(BM_SimplifiedAgrees)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
