// Experiment E5 — the Section 2 identity catalog as a measured workload:
// each identity is re-verified on fresh random databases inside the timed
// loop; the benchmark doubles as a randomized soak test (any violation
// aborts) and reports verification throughput.

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "common/rng.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Tri {
  std::unique_ptr<Database> db;
  ExprPtr x, y, z;
  PredicatePtr pxy, pyz, pxz;
};

Tri MakeTri(Rng* rng) {
  Tri t;
  RandomRowsOptions rows;
  rows.rows_max = 6;
  rows.domain = 3;
  rows.null_prob = 0.2;
  t.db = MakeRandomDatabase(3, 2, rows, rng);
  t.x = Expr::Leaf(t.db->Rel("R0"), *t.db);
  t.y = Expr::Leaf(t.db->Rel("R1"), *t.db);
  t.z = Expr::Leaf(t.db->Rel("R2"), *t.db);
  t.pxy = EqCols(t.db->Attr("R0", "a0"), t.db->Attr("R1", "a0"));
  t.pyz = EqCols(t.db->Attr("R1", "a1"), t.db->Attr("R2", "a0"));
  t.pxz = EqCols(t.db->Attr("R0", "a1"), t.db->Attr("R2", "a1"));
  return t;
}

using BuildPair = std::pair<ExprPtr, ExprPtr> (*)(const Tri&);

void VerifyIdentity(benchmark::State& state, BuildPair build) {
  Rng rng(77);
  uint64_t checked = 0;
  for (auto _ : state) {
    Tri t = MakeTri(&rng);
    auto [lhs, rhs] = build(t);
    bool equal = BagEquals(Eval(lhs, *t.db), Eval(rhs, *t.db));
    FRO_CHECK(equal) << "identity violated:\n lhs=" << lhs->ToString()
                     << "\n rhs=" << rhs->ToString();
    benchmark::DoNotOptimize(equal);
    ++checked;
  }
  state.counters["verified"] = static_cast<double>(checked);
}

std::pair<ExprPtr, ExprPtr> Identity1(const Tri& t) {
  return {Expr::Join(Expr::Join(t.x, t.y, t.pxy), t.z,
                     Predicate::And({t.pxz, t.pyz})),
          Expr::Join(t.x, Expr::Join(t.y, t.z, t.pyz),
                     Predicate::And({t.pxy, t.pxz}))};
}
std::pair<ExprPtr, ExprPtr> Identity2(const Tri& t) {
  return {Expr::Antijoin(Expr::Join(t.x, t.y, t.pxy), t.z, t.pyz),
          Expr::Join(t.x, Expr::Antijoin(t.y, t.z, t.pyz), t.pxy)};
}
std::pair<ExprPtr, ExprPtr> Identity3(const Tri& t) {
  return {Expr::Antijoin(Expr::Antijoin(t.x, t.y, t.pxy, false), t.z,
                         t.pyz),
          Expr::Antijoin(t.x, Expr::Antijoin(t.y, t.z, t.pyz), t.pxy,
                         false)};
}
std::pair<ExprPtr, ExprPtr> Identity10(const Tri& t) {
  return {Expr::OuterJoin(t.x, t.y, t.pxy),
          Expr::Union(Expr::Join(t.x, t.y, t.pxy),
                      Expr::Antijoin(t.x, t.y, t.pxy))};
}
std::pair<ExprPtr, ExprPtr> Identity11(const Tri& t) {
  return {Expr::OuterJoin(Expr::Join(t.x, t.y, t.pxy), t.z, t.pyz),
          Expr::Join(t.x, Expr::OuterJoin(t.y, t.z, t.pyz), t.pxy)};
}
std::pair<ExprPtr, ExprPtr> Identity12(const Tri& t) {
  return {Expr::OuterJoin(Expr::OuterJoin(t.x, t.y, t.pxy), t.z, t.pyz),
          Expr::OuterJoin(t.x, Expr::OuterJoin(t.y, t.z, t.pyz), t.pxy)};
}
std::pair<ExprPtr, ExprPtr> Identity13(const Tri& t) {
  return {Expr::OuterJoin(Expr::OuterJoin(t.x, t.y, t.pxy, false), t.z,
                          t.pyz),
          Expr::OuterJoin(t.x, Expr::OuterJoin(t.y, t.z, t.pyz), t.pxy,
                          false)};
}

void BM_Identity1(benchmark::State& s) { VerifyIdentity(s, Identity1); }
void BM_Identity2(benchmark::State& s) { VerifyIdentity(s, Identity2); }
void BM_Identity3(benchmark::State& s) { VerifyIdentity(s, Identity3); }
void BM_Identity10(benchmark::State& s) { VerifyIdentity(s, Identity10); }
void BM_Identity11(benchmark::State& s) { VerifyIdentity(s, Identity11); }
void BM_Identity12(benchmark::State& s) { VerifyIdentity(s, Identity12); }
void BM_Identity13(benchmark::State& s) { VerifyIdentity(s, Identity13); }

BENCHMARK(BM_Identity1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Identity2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Identity3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Identity10)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Identity11)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Identity12)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Identity13)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
