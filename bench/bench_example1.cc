// Experiment E1 — the paper's Example 1 (Section 1.2).
//
// Query: R1 - (R2 -> R3) with key indexes, |R1| = 1, |R2| = |R3| = N.
// Claim: the naive order retrieves 2N+1 tuples while the reordered
// (R1 - R2) -> R3 retrieves 3, independent of N.
//
// Counters reported per run:
//   base_reads       — ground-relation tuples retrieved (the paper's unit)
//   paper_formula    — the paper's closed form (2N+1 or 3)
// The two must match exactly; the benchmark aborts otherwise.

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Example1Fixture {
  std::unique_ptr<Database> db;
  ExprPtr naive;      // R1 - (R2 -> R3)
  ExprPtr reordered;  // (R1 - R2) -> R3
};

Example1Fixture MakeFixture(int n) {
  Example1Fixture f;
  f.db = MakeExample1Database(n);
  ExprPtr r1 = Expr::Leaf(f.db->Rel("R1"), *f.db);
  ExprPtr r2 = Expr::Leaf(f.db->Rel("R2"), *f.db);
  ExprPtr r3 = Expr::Leaf(f.db->Rel("R3"), *f.db);
  PredicatePtr p12 = EqCols(f.db->Attr("R1", "k"), f.db->Attr("R2", "k"));
  PredicatePtr p23 = EqCols(f.db->Attr("R2", "fk"), f.db->Attr("R3", "k"));
  f.naive = Expr::Join(r1, Expr::OuterJoin(r2, r3, p23), p12);
  f.reordered = Expr::OuterJoin(Expr::Join(r1, r2, p12), r3, p23);
  return f;
}

void BM_Example1_NaiveOrder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Example1Fixture f = MakeFixture(n);
  uint64_t base_reads = 0;
  for (auto _ : state) {
    EvalStats stats;
    Relation out = Eval(f.naive, *f.db, EvalOptions(), &stats);
    benchmark::DoNotOptimize(out);
    base_reads = stats.base_tuples_read;
  }
  FRO_CHECK_EQ(base_reads, static_cast<uint64_t>(2 * n + 1));
  state.counters["base_reads"] = static_cast<double>(base_reads);
  state.counters["paper_formula_2N+1"] = 2.0 * n + 1;
  state.counters["N"] = n;
}
BENCHMARK(BM_Example1_NaiveOrder)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Example1_ReorderedOrder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Example1Fixture f = MakeFixture(n);
  uint64_t base_reads = 0;
  for (auto _ : state) {
    EvalStats stats;
    Relation out = Eval(f.reordered, *f.db, EvalOptions(), &stats);
    benchmark::DoNotOptimize(out);
    base_reads = stats.base_tuples_read;
  }
  FRO_CHECK_EQ(base_reads, 3u);
  state.counters["base_reads"] = static_cast<double>(base_reads);
  state.counters["paper_formula"] = 3;
  state.counters["N"] = n;
}
BENCHMARK(BM_Example1_ReorderedOrder)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// The paper's premise made literal: persistent indexes on the key
// columns, reused across executions instead of ad-hoc hash builds.
void BM_Example1_Reordered_PersistentIndexes(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Example1Fixture f = MakeFixture(n);
  IndexManager manager;
  manager.CreateIndex(*f.db, f.db->Rel("R2"), {f.db->Attr("R2", "k")});
  manager.CreateIndex(*f.db, f.db->Rel("R3"), {f.db->Attr("R3", "k")});
  EvalOptions options;
  options.indexes = &manager;
  uint64_t base_reads = 0;
  for (auto _ : state) {
    EvalStats stats;
    Relation out = Eval(f.reordered, *f.db, options, &stats);
    benchmark::DoNotOptimize(out);
    base_reads = stats.base_tuples_read;
  }
  FRO_CHECK_EQ(base_reads, 3u);
  state.counters["base_reads"] = static_cast<double>(base_reads);
  state.counters["N"] = n;
}
BENCHMARK(BM_Example1_Reordered_PersistentIndexes)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Both orders compute the same relation (identity 11) — measured, not
// assumed.
void BM_Example1_ResultsAgree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Example1Fixture f = MakeFixture(n);
  for (auto _ : state) {
    bool equal = BagEquals(Eval(f.naive, *f.db), Eval(f.reordered, *f.db));
    FRO_CHECK(equal);
    benchmark::DoNotOptimize(equal);
  }
  state.counters["N"] = n;
}
BENCHMARK(BM_Example1_ResultsAgree)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
