// The cardinality-feedback loop, end to end: a skewed acyclic chain is
// built so the *static* model keeps the binary plan — the heavy block
// is hidden behind high distinct counts (K heavy rows under F
// singleton fillers, K = F/8), so the estimated join outputs stay
// small and the Yannakakis program's semijoin charges (Cout) look like
// a net loss. Execution then hits the hidden K^2 many-to-many
// intermediate, every row of which dies toward R1. The bench closes
// the shipped loop: drain the static plan through the batch engine,
// ObservePlanExecution into a FeedbackStore, mark the cache entry
// stale via its running Q-error, and re-plan with the Snapshot
// attached — the corrected baseline is now priced at the measured
// blowup and the acyclic gate flips to the semijoin program, whose
// intermediates stay linear.
//
// The bench CHECKs the decision sequence (static gate declined, entry
// went stale, exactly-one re-plan claim, corrected gate fired, equal
// result cardinality) and measures both executed plans. Emits a JSON
// array on stdout (scripts/bench.sh redirects it into BENCH_PR10.json);
// each row is {pipeline, rows, out_rows, batch_ns, batch_min_ns,
// batch_max_ns} with "speedup_vs_static" and "max_q_error" on the
// corrected rows — speedup_vs_static is the field the PR 10 acceptance
// bar (>= 2x on every scale) reads, while batch_ns/batch_min_ns let
// scripts/bench_compare.py gate regressions. `--smoke` reduces the
// repetition count for CI.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/check.h"
#include "exec/batch_iterator.h"
#include "exec/build.h"
#include "exec/stats_view.h"
#include "optimizer/feedback.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "relational/predicate.h"

namespace fro {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timing {
  int64_t median_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
};

template <typename RunOnce>
Timing MeasureReps(int reps, RunOnce&& run_once) {
  std::vector<int64_t> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const int64_t start = NowNs();
    run_once();
    samples.push_back(NowNs() - start);
  }
  std::sort(samples.begin(), samples.end());
  Timing t;
  const size_t n = samples.size();
  t.median_ns = n % 2 == 1 ? samples[n / 2]
                           : (samples[n / 2 - 1] + samples[n / 2]) / 2;
  t.min_ns = samples.front();
  t.max_ns = samples.back();
  return t;
}

struct Report {
  std::string pipeline;
  size_t rows;      // total input rows across the operands
  size_t out_rows;  // result cardinality (identical for both plans)
  Timing timing;
  double speedup_vs_static = 0;  // corrected rows only
  double max_q_error = 0;        // worst per-operator Q-error observed
};

int CountSemijoins(const ExprPtr& expr) {
  if (expr == nullptr || expr->kind() == OpKind::kLeaf) return 0;
  int n = expr->kind() == OpKind::kSemijoin ? 1 : 0;
  if (expr->is_multiway()) {
    for (const ExprPtr& child : expr->mj_children()) {
      n += CountSemijoins(child);
    }
    return n;
  }
  return n + CountSemijoins(expr->left()) + CountSemijoins(expr->right());
}

// The chain R1(a0,a1) - R2(a0,a1) - R3(a0,a1), joined on
// R1.a1 = R2.a0 and R2.a1 = R3.a0, sized so every distinct count tells
// the static model the joins are harmless:
//   R1 (left end): every live key twice — d(R1.a1) = live, 2*live rows.
//   R2 (middle): a heavy block (600000+j, 0) whose left-hand values are
//       dead toward R1 and whose right-hand key 0 is heavy toward R3,
//       plus live bridge rows (100000+i, 1+i) —
//       d(R2.a0) = heavy+live, d(R2.a1) = live+1.
//   R3 (right end): the heavy partner block (0, j) plus live rows
//       (1+i, .) — d(R3.a0) = live+1.
// With heavy/live = 1/8 the estimated joins are all ~linear, DP picks
// (R2 >< R3) first (the b-edge looks bigger), and the semijoin
// program's Cout charges exceed the binary plan's — the static gate
// declines. Actually R2 >< R3 is heavy^2 + live rows, all heavy^2 of
// them dangling toward R1; the program's one profitable reduction
// (R2 reduced by R1, the GYO tree's bottom-up edge) removes the heavy
// block before it can multiply.
void FillSkewChain(Database* db, RelId r1, RelId r2, RelId r3, int heavy,
                   int live) {
  for (int j = 0; j < heavy; ++j) {
    db->AddRow(r2, {Value::Int(600000 + j), Value::Int(0)});
    db->AddRow(r3, {Value::Int(0), Value::Int(j)});
  }
  for (int i = 0; i < live; ++i) {
    db->AddRow(r1, {Value::Int(i), Value::Int(100000 + i)});
    db->AddRow(r1, {Value::Int(live + i), Value::Int(100000 + i)});
    db->AddRow(r2, {Value::Int(100000 + i), Value::Int(1 + i)});
    db->AddRow(r3, {Value::Int(1 + i), Value::Int(i)});
  }
}

ExprPtr ChainQuery(const Database& db) {
  auto attr = [&](int i, const char* name) {
    return db.Attr("R" + std::to_string(i), name);
  };
  return Expr::Join(
      Expr::Join(Expr::Leaf(0, db), Expr::Leaf(1, db),
                 EqCols(attr(1, "a1"), attr(2, "a0"))),
      Expr::Leaf(2, db), EqCols(attr(2, "a1"), attr(3, "a0")));
}

size_t TotalRows(const Database& db, int num_rels) {
  size_t total = 0;
  for (RelId r = 0; r < static_cast<RelId>(num_rels); ++r) {
    total += db.relation(r).NumRows();
  }
  return total;
}

void Measure(const std::string& name, const ExprPtr& query,
             const Database& db, int reps, std::vector<Report>* reports) {
  // The shipped loop, exactly as a server session drives it: plan
  // through the cache, execute, feed actuals back, re-plan on the
  // staleness claim. Threshold 0.5 sits below the Q-error floor of 1.0
  // so the first RecordExecution deterministically marks the entry.
  LruPlanCache cache(4, /*q_error_threshold=*/0.5);
  FeedbackStore store;
  OptimizeOptions opt;
  opt.plan_cache = &cache;

  Result<OptimizeOutcome> cold = Optimize(query, db, opt);
  FRO_CHECK(cold.ok()) << cold.status().ToString();
  FRO_CHECK(CountSemijoins(cold->plan) == 0)
      << name << ": the static gate was supposed to keep the binary plan";

  BatchIteratorPtr executed = BuildBatchIterator(cold->plan, db);
  const size_t static_warm_out = DrainBatches(executed.get()).NumRows();
  const double q =
      ObservePlanExecution(&store, cold->plan->hash(),
                           SnapshotPlanStats(executed.get()),
                           cold->op_estimates);
  FRO_CHECK(q > 2.0) << name << ": the blowup was not mispriced (q=" << q
                     << ")";
  cache.RecordExecution(query->hash(), q);

  const CardinalityFeedback corrected = store.Snapshot();
  opt.feedback = &corrected;
  Result<OptimizeOutcome> warm = Optimize(query, db, opt);
  FRO_CHECK(warm.ok()) << warm.status().ToString();
  FRO_CHECK(!warm->cache_hit && warm->replanned)
      << name << ": the stale entry did not grant the re-plan claim";
  FRO_CHECK(CountSemijoins(warm->plan) > 0)
      << name << ": the corrected gate did not choose a semijoin program";

  const size_t rows = TotalRows(db, 3);
  size_t static_out = 0, corrected_out = 0;
  // One untimed warmup per plan (the static plan already ran once).
  corrected_out = ExecuteBatched(warm->plan, db).NumRows();
  const Timing static_t = MeasureReps(reps, [&] {
    static_out = ExecuteBatched(cold->plan, db).NumRows();
  });
  const Timing corrected_t = MeasureReps(reps, [&] {
    corrected_out = ExecuteBatched(warm->plan, db).NumRows();
  });
  FRO_CHECK(static_out == corrected_out && static_out == static_warm_out)
      << name << ": static " << static_out << " rows, corrected "
      << corrected_out;

  reports->push_back({name + "_static", rows, static_out, static_t, 0, 0});
  reports->push_back({name + "_corrected", rows, corrected_out, corrected_t,
                      static_cast<double>(static_t.median_ns) /
                          static_cast<double>(corrected_t.median_ns),
                      q});
}

void Emit(const std::vector<Report>& reports) {
  std::printf("[\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const Report& r = reports[i];
    std::printf(
        "  {\"pipeline\": \"%s\", \"rows\": %zu, \"out_rows\": %zu, "
        "\"batch_ns\": %lld, \"batch_min_ns\": %lld, "
        "\"batch_max_ns\": %lld",
        r.pipeline.c_str(), r.rows, r.out_rows,
        static_cast<long long>(r.timing.median_ns),
        static_cast<long long>(r.timing.min_ns),
        static_cast<long long>(r.timing.max_ns));
    if (r.speedup_vs_static > 0) {
      std::printf(", \"speedup_vs_static\": %.2f, \"max_q_error\": %.1f",
                  r.speedup_vs_static, r.max_q_error);
    }
    std::printf("}%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::printf("]\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  // Smoke lowers the repetition count only: the scales (and so the
  // pipeline names) stay identical, which scripts/bench_compare.py
  // needs to match a smoke run against the committed full-run baseline.
  const int reps = smoke ? 5 : 9;
  const std::vector<int> live_scales = {2000, 4000, 8000};

  std::vector<Report> reports;
  for (int live : live_scales) {
    const int heavy = live / 8;  // K/F < 0.3 keeps the static gate shut
    Database db;
    RelId r1 = *db.AddRelation("R1", {"a0", "a1"});
    RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
    RelId r3 = *db.AddRelation("R3", {"a0", "a1"});
    FillSkewChain(&db, r1, r2, r3, heavy, live);
    Measure("skew3_f" + std::to_string(live), ChainQuery(db), db, reps,
            &reports);
  }
  Emit(reports);
  return 0;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
