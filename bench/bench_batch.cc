// Tuple-vs-batch engine comparison on the pipelines the batch executor
// was built for: scan -> filter and scan -> filter -> hash join over
// 100k+ base tuples, plus a null-padding left outerjoin. Both engines
// execute the identical Expr plan.
//
// Each pipeline is measured under two consumers:
//   * stream — the pipeline is drained into a checksum (count + int
//     column sum), so the numbers compare the engines themselves;
//   * materialize — Drain/DrainBatches into a Relation, the end-to-end
//     cost a caller keeping the full result pays. The materialization
//     sink (one allocation per emitted row) is identical for both
//     engines and dilutes the engine ratio, which is why it is reported
//     separately.
//
// Emits a JSON array of {pipeline, rows, out_rows, tuple_ns, batch_ns,
// tuple_mtps, batch_mtps, speedup, tuple_materialize_ns,
// batch_materialize_ns, materialize_speedup} rows on stdout
// (scripts/bench.sh redirects it into BENCH_PR7.json). Every *_ns field
// is the median of the repetitions, with the observed spread alongside
// as *_min_ns / *_max_ns — a run whose median sits far from its min was
// noisy, and the baseline-comparison gate (scripts/bench_compare.py)
// reads the spread to tell regressions from noise. `--smoke` lowers the
// repetition count (never below 5) but keeps the 100k-tuple scale, so
// the CI artifact still documents the headline comparison.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/check.h"
#include "common/rng.h"
#include "exec/build.h"
#include "relational/predicate.h"

namespace fro {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One measured quantity: the median of the repetitions plus the
/// observed min/max spread. The median is the headline number (robust
/// to one-sided scheduler noise without the min's bias toward
/// best-case cache luck); the spread qualifies it.
struct Timing {
  int64_t median_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
};

struct Report {
  const char* pipeline;
  size_t rows;
  size_t out_rows;
  Timing tuple;
  Timing batch;
  Timing tuple_materialize;
  Timing batch_materialize;
};

struct Checksum {
  uint64_t count = 0;
  int64_t sum = 0;

  void Consume(const Tuple& tuple) {
    ++count;
    const Value& v = tuple.value(0);
    if (v.kind() == Value::Kind::kInt) sum += v.AsInt();
  }
  bool operator==(const Checksum& other) const {
    return count == other.count && sum == other.sum;
  }
};

/// The batch engine's streaming consumer reads column 0 columnar-wise:
/// the result-equivalent of Consume() per live row, without forcing a
/// columnar join output through row materialization (which is exactly
/// the cost the streaming numbers exist to exclude — see file comment).
void ConsumeBatch(const TupleBatch& batch, Checksum* sum) {
  const size_t n = batch.size();
  if (n == 0) return;
  sum->count += n;
  size_t off = 0;
  const ColumnVector* col = batch.Column(0, &off);
  switch (col->tag()) {
    case ColumnVector::Tag::kEmpty:
      break;  // all null: contributes count only
    case ColumnVector::Tag::kInt: {
      const int64_t* v = col->ints();
      const uint8_t* nm = col->null_mask();
      for (size_t i = 0; i < n; ++i) {
        const size_t r = off + batch.sel_index(i);
        if (nm[r] == 0) sum->sum += v[r];
      }
      break;
    }
    case ColumnVector::Tag::kDouble:
      break;  // doubles don't feed the int checksum
    case ColumnVector::Tag::kGeneric: {
      const Value* v = col->generic();
      for (size_t i = 0; i < n; ++i) {
        const size_t r = off + batch.sel_index(i);
        if (v[r].kind() == Value::Kind::kInt) sum->sum += v[r].AsInt();
      }
      break;
    }
  }
}

// Median-of-`reps` wall time with min/max spread; both engines get
// identical treatment.
template <typename RunOnce>
Timing MeasureReps(int reps, RunOnce&& run_once) {
  std::vector<int64_t> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const int64_t start = NowNs();
    run_once();
    samples.push_back(NowNs() - start);
  }
  std::sort(samples.begin(), samples.end());
  Timing t;
  const size_t n = samples.size();
  t.median_ns = n % 2 == 1 ? samples[n / 2]
                           : (samples[n / 2 - 1] + samples[n / 2]) / 2;
  t.min_ns = samples.front();
  t.max_ns = samples.back();
  return t;
}

Report Compare(const char* name, const ExprPtr& expr, const Database& db,
               size_t base_rows, int reps) {
  Report report;
  report.pipeline = name;
  report.rows = base_rows;

  // Streaming consumers: engine throughput without the materialization
  // sink. The checksums double as a result cross-check.
  Checksum tuple_sum, batch_sum;
  report.tuple = MeasureReps(reps, [&] {
    IteratorPtr root = BuildIterator(expr, db);
    tuple_sum = Checksum();
    root->Open();
    Tuple tuple;
    while (root->Next(&tuple)) tuple_sum.Consume(tuple);
    root->Close();
  });
  report.batch = MeasureReps(reps, [&] {
    BatchIteratorPtr root = BuildBatchIterator(expr, db);
    batch_sum = Checksum();
    root->Open();
    TupleBatch batch;
    while (root->NextBatch(&batch)) ConsumeBatch(batch, &batch_sum);
    root->Close();
  });
  FRO_CHECK(tuple_sum == batch_sum) << "engines disagree on " << name;
  report.out_rows = batch_sum.count;

  // Materializing consumers: the end-to-end Drain cost.
  Relation tuple_out(Scheme{});
  Relation batch_out(Scheme{});
  report.tuple_materialize = MeasureReps(reps, [&] {
    IteratorPtr root = BuildIterator(expr, db);
    tuple_out = Drain(root.get());
  });
  report.batch_materialize = MeasureReps(reps, [&] {
    BatchIteratorPtr root = BuildBatchIterator(expr, db);
    batch_out = DrainBatches(root.get());
  });
  FRO_CHECK_EQ(tuple_out.NumRows(), batch_out.NumRows())
      << "engines disagree on " << name;
  FRO_CHECK_EQ(batch_out.NumRows(), batch_sum.count);
  return report;
}

void Emit(const std::vector<Report>& reports) {
  std::printf("[\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const Report& r = reports[i];
    const double tuple_mtps = static_cast<double>(r.rows) * 1e3 /
                              static_cast<double>(r.tuple.median_ns);
    const double batch_mtps = static_cast<double>(r.rows) * 1e3 /
                              static_cast<double>(r.batch.median_ns);
    std::printf(
        "  {\"pipeline\": \"%s\", \"rows\": %zu, \"out_rows\": %zu, "
        "\"tuple_ns\": %lld, \"tuple_min_ns\": %lld, \"tuple_max_ns\": %lld, "
        "\"batch_ns\": %lld, \"batch_min_ns\": %lld, \"batch_max_ns\": %lld, "
        "\"tuple_mtps\": %.2f, \"batch_mtps\": %.2f, \"speedup\": %.2f, "
        "\"tuple_materialize_ns\": %lld, \"tuple_materialize_min_ns\": %lld, "
        "\"tuple_materialize_max_ns\": %lld, "
        "\"batch_materialize_ns\": %lld, \"batch_materialize_min_ns\": %lld, "
        "\"batch_materialize_max_ns\": %lld, "
        "\"materialize_speedup\": %.2f}%s\n",
        r.pipeline, r.rows, r.out_rows,
        static_cast<long long>(r.tuple.median_ns),
        static_cast<long long>(r.tuple.min_ns),
        static_cast<long long>(r.tuple.max_ns),
        static_cast<long long>(r.batch.median_ns),
        static_cast<long long>(r.batch.min_ns),
        static_cast<long long>(r.batch.max_ns), tuple_mtps, batch_mtps,
        static_cast<double>(r.tuple.median_ns) /
            static_cast<double>(r.batch.median_ns),
        static_cast<long long>(r.tuple_materialize.median_ns),
        static_cast<long long>(r.tuple_materialize.min_ns),
        static_cast<long long>(r.tuple_materialize.max_ns),
        static_cast<long long>(r.batch_materialize.median_ns),
        static_cast<long long>(r.batch_materialize.min_ns),
        static_cast<long long>(r.batch_materialize.max_ns),
        static_cast<double>(r.tuple_materialize.median_ns) /
            static_cast<double>(r.batch_materialize.median_ns),
        i + 1 < reports.size() ? "," : "");
  }
  std::printf("]\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  const size_t kRows = 200000;  // probe side; >= 100k per the PR target
  const int reps = smoke ? 5 : 15;  // median needs >= 5 samples

  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  RelId s = *db.AddRelation("S", {"c", "d"});
  AttrId a = db.Attr("R", "a");
  AttrId b = db.Attr("R", "b");
  AttrId c = db.Attr("S", "c");
  Rng rng(1990);
  const int64_t kDomain = static_cast<int64_t>(kRows) / 10;
  for (size_t i = 0; i < kRows; ++i) {
    db.AddRow(r, {Value::Int(static_cast<int64_t>(
                      rng.Uniform(static_cast<uint64_t>(kDomain)))),
                  Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  // Build side: one row per key for half the domain, so the join is
  // selective and the outerjoin pads the other half with nulls.
  for (int64_t k = 0; k < kDomain / 2; ++k) {
    db.AddRow(s, {Value::Int(k), Value::Int(k)});
  }

  auto leaf_r = [&] { return Expr::Leaf(r, db); };
  auto leaf_s = [&] { return Expr::Leaf(s, db); };
  PredicatePtr half = CmpLit(CmpOp::kLt, b, Value::Int(500));
  PredicatePtr keys = EqCols(a, c);

  std::vector<Report> reports;
  reports.push_back(
      Compare("scan_filter", Expr::Restrict(leaf_r(), half), db, kRows, reps));
  reports.push_back(Compare(
      "scan_filter_hashjoin",
      Expr::Join(Expr::Restrict(leaf_r(), half), leaf_s(), keys), db, kRows,
      reps));
  reports.push_back(Compare(
      "scan_filter_leftouter",
      Expr::OuterJoin(Expr::Restrict(leaf_r(), half), leaf_s(), keys,
                      /*preserves_left=*/true),
      db, kRows, reps));
  Emit(reports);
  return 0;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
