// Tuple-vs-batch engine comparison on the pipelines the batch executor
// was built for: scan -> filter and scan -> filter -> hash join over
// 100k+ base tuples, plus a null-padding left outerjoin. Both engines
// execute the identical Expr plan.
//
// Each pipeline is measured under two consumers:
//   * stream — the pipeline is drained into a checksum (count + int
//     column sum), so the numbers compare the engines themselves;
//   * materialize — Drain/DrainBatches into a Relation, the end-to-end
//     cost a caller keeping the full result pays. The materialization
//     sink (one allocation per emitted row) is identical for both
//     engines and dilutes the engine ratio, which is why it is reported
//     separately.
//
// Emits a JSON array of {pipeline, rows, out_rows, tuple_ns, batch_ns,
// tuple_mtps, batch_mtps, speedup, tuple_materialize_ns,
// batch_materialize_ns, materialize_speedup} rows on stdout
// (scripts/bench.sh redirects it into BENCH_PR4.json). `--smoke` lowers
// the repetition count but keeps the 100k-tuple scale, so the CI
// artifact still documents the headline comparison.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/check.h"
#include "common/rng.h"
#include "exec/build.h"
#include "relational/predicate.h"

namespace fro {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Report {
  const char* pipeline;
  size_t rows;
  size_t out_rows;
  int64_t tuple_ns;
  int64_t batch_ns;
  int64_t tuple_materialize_ns;
  int64_t batch_materialize_ns;
};

struct Checksum {
  uint64_t count = 0;
  int64_t sum = 0;

  void Consume(const Tuple& tuple) {
    ++count;
    const Value& v = tuple.value(0);
    if (v.kind() == Value::Kind::kInt) sum += v.AsInt();
  }
  bool operator==(const Checksum& other) const {
    return count == other.count && sum == other.sum;
  }
};

// Best-of-`reps` wall time (minimum filters scheduler noise; both
// engines get identical treatment).
template <typename RunOnce>
int64_t BestOf(int reps, RunOnce&& run_once) {
  int64_t best = INT64_MAX;
  for (int r = 0; r < reps; ++r) {
    const int64_t start = NowNs();
    run_once();
    best = std::min(best, NowNs() - start);
  }
  return best;
}

Report Compare(const char* name, const ExprPtr& expr, const Database& db,
               size_t base_rows, int reps) {
  Report report;
  report.pipeline = name;
  report.rows = base_rows;

  // Streaming consumers: engine throughput without the materialization
  // sink. The checksums double as a result cross-check.
  Checksum tuple_sum, batch_sum;
  report.tuple_ns = BestOf(reps, [&] {
    IteratorPtr root = BuildIterator(expr, db);
    tuple_sum = Checksum();
    root->Open();
    Tuple tuple;
    while (root->Next(&tuple)) tuple_sum.Consume(tuple);
    root->Close();
  });
  report.batch_ns = BestOf(reps, [&] {
    BatchIteratorPtr root = BuildBatchIterator(expr, db);
    batch_sum = Checksum();
    root->Open();
    TupleBatch batch;
    while (root->NextBatch(&batch)) {
      const size_t n = batch.size();
      for (size_t i = 0; i < n; ++i) batch_sum.Consume(batch.selected(i));
    }
    root->Close();
  });
  FRO_CHECK(tuple_sum == batch_sum) << "engines disagree on " << name;
  report.out_rows = batch_sum.count;

  // Materializing consumers: the end-to-end Drain cost.
  Relation tuple_out(Scheme{});
  Relation batch_out(Scheme{});
  report.tuple_materialize_ns = BestOf(reps, [&] {
    IteratorPtr root = BuildIterator(expr, db);
    tuple_out = Drain(root.get());
  });
  report.batch_materialize_ns = BestOf(reps, [&] {
    BatchIteratorPtr root = BuildBatchIterator(expr, db);
    batch_out = DrainBatches(root.get());
  });
  FRO_CHECK_EQ(tuple_out.NumRows(), batch_out.NumRows())
      << "engines disagree on " << name;
  FRO_CHECK_EQ(batch_out.NumRows(), batch_sum.count);
  return report;
}

void Emit(const std::vector<Report>& reports) {
  std::printf("[\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const Report& r = reports[i];
    const double tuple_mtps =
        static_cast<double>(r.rows) * 1e3 / static_cast<double>(r.tuple_ns);
    const double batch_mtps =
        static_cast<double>(r.rows) * 1e3 / static_cast<double>(r.batch_ns);
    std::printf(
        "  {\"pipeline\": \"%s\", \"rows\": %zu, \"out_rows\": %zu, "
        "\"tuple_ns\": %lld, \"batch_ns\": %lld, \"tuple_mtps\": %.2f, "
        "\"batch_mtps\": %.2f, \"speedup\": %.2f, "
        "\"tuple_materialize_ns\": %lld, \"batch_materialize_ns\": %lld, "
        "\"materialize_speedup\": %.2f}%s\n",
        r.pipeline, r.rows, r.out_rows,
        static_cast<long long>(r.tuple_ns),
        static_cast<long long>(r.batch_ns), tuple_mtps, batch_mtps,
        static_cast<double>(r.tuple_ns) / static_cast<double>(r.batch_ns),
        static_cast<long long>(r.tuple_materialize_ns),
        static_cast<long long>(r.batch_materialize_ns),
        static_cast<double>(r.tuple_materialize_ns) /
            static_cast<double>(r.batch_materialize_ns),
        i + 1 < reports.size() ? "," : "");
  }
  std::printf("]\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  const size_t kRows = 200000;  // probe side; >= 100k per the PR target
  const int reps = smoke ? 3 : 15;

  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  RelId s = *db.AddRelation("S", {"c", "d"});
  AttrId a = db.Attr("R", "a");
  AttrId b = db.Attr("R", "b");
  AttrId c = db.Attr("S", "c");
  Rng rng(1990);
  const int64_t kDomain = static_cast<int64_t>(kRows) / 10;
  for (size_t i = 0; i < kRows; ++i) {
    db.AddRow(r, {Value::Int(static_cast<int64_t>(
                      rng.Uniform(static_cast<uint64_t>(kDomain)))),
                  Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  // Build side: one row per key for half the domain, so the join is
  // selective and the outerjoin pads the other half with nulls.
  for (int64_t k = 0; k < kDomain / 2; ++k) {
    db.AddRow(s, {Value::Int(k), Value::Int(k)});
  }

  auto leaf_r = [&] { return Expr::Leaf(r, db); };
  auto leaf_s = [&] { return Expr::Leaf(s, db); };
  PredicatePtr half = CmpLit(CmpOp::kLt, b, Value::Int(500));
  PredicatePtr keys = EqCols(a, c);

  std::vector<Report> reports;
  reports.push_back(
      Compare("scan_filter", Expr::Restrict(leaf_r(), half), db, kRows, reps));
  reports.push_back(Compare(
      "scan_filter_hashjoin",
      Expr::Join(Expr::Restrict(leaf_r(), half), leaf_s(), keys), db, kRows,
      reps));
  reports.push_back(Compare(
      "scan_filter_leftouter",
      Expr::OuterJoin(Expr::Restrict(leaf_r(), half), leaf_s(), keys,
                      /*preserves_left=*/true),
      db, kRows, reps));
  Emit(reports);
  return 0;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
