// Open-loop load generator for fro_serve: an in-process FroServer on a
// loopback socket, N client threads each sending the Section 5 workload
// on a fixed arrival schedule (arrivals are planned up front, independent
// of completions), client-side raw latency samples. Two phases — plan
// cache off (capacity 0) and on (capacity 128, pre-warmed) — so the
// report isolates what hash-keyed plan reuse buys: identical results,
// lower p50.
//
// Emits one JSON object on stdout (scripts/bench.sh redirects it into
// BENCH_PR3.json). `--smoke` shrinks the request counts for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

const char* kWorkload[] = {
    "Select All From EMPLOYEE*ChildName, DEPARTMENT "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
    "Select All From DEPARTMENT-->Manager-->Audit",
    "Select All From DEPARTMENT-->Manager*ChildName "
    "Where DEPARTMENT.Location = 'Zurich'",
    "Select All From EMPLOYEE Where EMPLOYEE.Rank = 7",
    "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Secretary "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
    "Select EMPLOYEE.Rank, DEPARTMENT.Location From EMPLOYEE, DEPARTMENT "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
    // Planning-heavy members: many tuple variables widen the DP space, so
    // these are where the plan cache's savings concentrate. They outnumber
    // the cheap queries above so the workload's p50 (not just its tail)
    // reflects planning cost; the Location constant distinguishes the
    // structural hashes, everything else is shared shape.
    "Select All From EMPLOYEE E1, DEPARTMENT D1, EMPLOYEE E2, "
    "DEPARTMENT D2, EMPLOYEE E3 "
    "Where E1.D# = D1.D# and E2.D# = D1.D# and E2.Rank = E3.Rank "
    "and E3.D# = D2.D#",
    "Select All From EMPLOYEE E1, DEPARTMENT D1, EMPLOYEE E2, "
    "DEPARTMENT D2, EMPLOYEE E3 "
    "Where E1.D# = D1.D# and E2.D# = D1.D# and E2.Rank = E3.Rank "
    "and E3.D# = D2.D# and D1.Location = 'Zurich'",
    "Select All From EMPLOYEE E1, DEPARTMENT D1, EMPLOYEE E2, "
    "DEPARTMENT D2, EMPLOYEE E3 "
    "Where E1.D# = D1.D# and E2.D# = D1.D# and E2.Rank = E3.Rank "
    "and E3.D# = D2.D# and D1.Location = 'Toronto'",
    "Select All From EMPLOYEE E1, DEPARTMENT D1, EMPLOYEE E2, "
    "DEPARTMENT D2, EMPLOYEE E3, DEPARTMENT D3, EMPLOYEE E4 "
    "Where E1.D# = D1.D# and E2.D# = D1.D# and E2.Rank = E3.Rank "
    "and E3.D# = D2.D# and E4.D# = D2.D# and E4.Rank = E1.Rank "
    "and D3.D# = E3.D#",
    "Select All From EMPLOYEE E1, DEPARTMENT D1, EMPLOYEE E2, "
    "DEPARTMENT D2, EMPLOYEE E3, DEPARTMENT D3, EMPLOYEE E4 "
    "Where E1.D# = D1.D# and E2.D# = D1.D# and E2.Rank = E3.Rank "
    "and E3.D# = D2.D# and E4.D# = D2.D# and E4.Rank = E1.Rank "
    "and D3.D# = E3.D# and D3.Location = 'Zurich'",
    "Select All From EMPLOYEE E1, DEPARTMENT D1, EMPLOYEE E2, "
    "DEPARTMENT D2, EMPLOYEE E3, DEPARTMENT D3, EMPLOYEE E4 "
    "Where E1.D# = D1.D# and E2.D# = D1.D# and E2.Rank = E3.Rank "
    "and E3.D# = D2.D# and E4.D# = D2.D# and E4.Rank = E1.Rank "
    "and D3.D# = E3.D# and D3.Location = 'Toronto'",
    "Select All From EMPLOYEE E1, DEPARTMENT D1, EMPLOYEE E2, "
    "DEPARTMENT D2, EMPLOYEE E3, DEPARTMENT D3, EMPLOYEE E4 "
    "Where E1.D# = D1.D# and E2.D# = D1.D# and E2.Rank = E3.Rank "
    "and E3.D# = D2.D# and E4.D# = D2.D# and E4.Rank = E1.Rank "
    "and D3.D# = E3.D# and D3.Location = 'Boston'",
    "Select All From EMPLOYEE E1, DEPARTMENT D1, EMPLOYEE E2, "
    "DEPARTMENT D2, EMPLOYEE E3, DEPARTMENT D3, EMPLOYEE E4 "
    "Where E1.D# = D1.D# and E2.D# = D1.D# and E2.Rank = E3.Rank "
    "and E3.D# = D2.D# and E4.D# = D2.D# and E4.Rank = E1.Rank "
    "and D3.D# = E3.D# and D3.Location = 'Paris'",
};
constexpr size_t kWorkloadSize = sizeof(kWorkload) / sizeof(kWorkload[0]);

using Clock = std::chrono::steady_clock;

struct PhaseResult {
  std::vector<uint64_t> latencies_us;  // successful requests only
  uint64_t errors = 0;
  double wall_seconds = 0;
  PlanCacheStats cache;
};

double Quantile(std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

/// One phase: fresh server at the given cache capacity, `clients` threads
/// each sending `requests` queries at a planned inter-arrival gap.
PhaseResult RunPhase(const NestedDb& db, size_t cache_capacity, int clients,
                     int requests, uint64_t gap_us, bool warm) {
  ServerOptions options;
  options.num_workers = clients;
  options.max_pending = clients * 2;
  options.plan_cache_capacity = cache_capacity;
  FroServer server(&db, options);
  FRO_CHECK(server.Start().ok()) << "server failed to start";

  if (warm) {
    // Populate the plan cache (and AST memo) so the measured phase is all
    // hits; the cold phase skips this and pays planning on every request.
    FroClient warmup;
    FRO_CHECK(warmup.Connect("127.0.0.1", server.port()).ok())
        << "warmup connect failed";
    for (const char* query : kWorkload) {
      Result<Response> r = warmup.Query(query);
      FRO_CHECK(r.ok() && r->status.ok()) << "warmup query failed";
    }
  }

  std::vector<std::vector<uint64_t>> per_client(
      static_cast<size_t>(clients));
  std::atomic<uint64_t> errors{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      FroClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        errors.fetch_add(static_cast<uint64_t>(requests));
        return;
      }
      std::vector<uint64_t>& samples = per_client[static_cast<size_t>(c)];
      samples.reserve(static_cast<size_t>(requests));
      for (int i = 0; i < requests; ++i) {
        // Open-loop arrival schedule: send times are fixed up front
        // relative to phase start, not to the previous completion.
        const Clock::time_point planned =
            start + std::chrono::microseconds(
                        static_cast<uint64_t>(i) * gap_us * 2 +
                        static_cast<uint64_t>(c) * gap_us);
        std::this_thread::sleep_until(planned);
        const size_t q = (static_cast<size_t>(i) + static_cast<size_t>(c)) %
                         kWorkloadSize;
        const Clock::time_point sent = Clock::now();
        Result<Response> r = client.Query(kWorkload[q]);
        const Clock::time_point got = Clock::now();
        if (!r.ok() || !r->status.ok()) {
          errors.fetch_add(1);
          continue;
        }
        samples.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(got - sent)
                .count()));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  PhaseResult result;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (std::vector<uint64_t>& samples : per_client) {
    result.latencies_us.insert(result.latencies_us.end(), samples.begin(),
                               samples.end());
  }
  result.errors = errors.load();
  result.cache = server.plan_cache().stats();
  server.Stop();
  return result;
}

void EmitPhaseJson(FILE* out, const char* name, size_t capacity,
                   PhaseResult& r, bool last) {
  std::sort(r.latencies_us.begin(), r.latencies_us.end());
  double sum = 0;
  for (uint64_t us : r.latencies_us) sum += static_cast<double>(us);
  const double n = static_cast<double>(r.latencies_us.size());
  std::fprintf(
      out,
      "    {\"phase\": \"%s\", \"cache_capacity\": %zu, "
      "\"requests\": %zu, \"errors\": %llu,\n"
      "     \"qps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"mean_us\": %.1f,\n"
      "     \"cache_hits\": %llu, \"cache_misses\": %llu, "
      "\"cache_hit_rate\": %.4f}%s\n",
      name, capacity, r.latencies_us.size(),
      static_cast<unsigned long long>(r.errors),
      r.wall_seconds > 0 ? n / r.wall_seconds : 0.0,
      Quantile(r.latencies_us, 0.5), Quantile(r.latencies_us, 0.99),
      n > 0 ? sum / n : 0.0,
      static_cast<unsigned long long>(r.cache.hits),
      static_cast<unsigned long long>(r.cache.misses), r.cache.hit_rate(),
      last ? "" : ",");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int clients = 4;
  int requests = 400;
  int scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::atoi(argv[i] + 10);
    }
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::atoi(argv[i] + 11);
    }
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atoi(argv[i] + 8);
    }
  }
  if (smoke) {
    clients = 2;
    requests = 60;
  }
  // Arrival gap chosen so the offered load stays well inside what one
  // worker per client sustains on this workload — open-loop generators
  // measure latency at an offered rate, not peak throughput.
  const uint64_t gap_us = smoke ? 400 : 250;

  const NestedDb db =
      scale > 1 ? MakeScaledCompanyNestedDb(scale) : MakeCompanyNestedDb();

  PhaseResult cold = RunPhase(db, /*cache_capacity=*/0, clients, requests,
                              gap_us, /*warm=*/false);
  PhaseResult hot = RunPhase(db, /*cache_capacity=*/128, clients, requests,
                             gap_us, /*warm=*/true);

  std::fprintf(stdout,
               "{\n  \"bench\": \"server_load\", \"smoke\": %s, "
               "\"clients\": %d, \"requests_per_client\": %d, "
               "\"scale\": %d, \"workload_queries\": %zu,\n  \"phases\": [\n",
               smoke ? "true" : "false", clients, requests, scale,
               kWorkloadSize);
  EmitPhaseJson(stdout, "cache_off", 0, cold, /*last=*/false);
  EmitPhaseJson(stdout, "cache_on_warm", 128, hot, /*last=*/true);
  const double cold_p50 = Quantile(cold.latencies_us, 0.5);
  const double hot_p50 = Quantile(hot.latencies_us, 0.5);
  std::fprintf(stdout,
               "  ],\n  \"warm_p50_speedup\": %.2f\n}\n",
               hot_p50 > 0 ? cold_p50 / hot_p50 : 0.0);
  return (cold.errors + hot.errors) == 0 ? 0 : 1;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
