// Morsel-driven parallel scaling on the batch executor (exec/morsel.h):
// the same 200k-row pipelines bench_batch.cc measures — scan -> filter,
// scan -> filter -> hash join, and a null-padding left outerjoin — each
// drained at 1, 2, 4, and 8 workers through BuildParallelBatchIterator.
// Every worker count is checksum-cross-checked against the serial run,
// so the numbers only count agreeing executions.
//
// Emits a JSON object {"hardware_concurrency": N, "results": [...]} on
// stdout (scripts/bench.sh redirects it into BENCH_PR6.json); each
// result row is {pipeline, rows, out_rows, workers, ns, min_ns, max_ns,
// mtps, speedup_vs_1}, where ns is the median of the repetitions and
// min/max record the observed spread. hardware_concurrency is recorded
// because speedup is bounded by the cores actually present: on a
// single-core host every worker count degenerates to ~1x and the
// artifact documents why. `--smoke` lowers the repetition count (never
// below 5) but keeps the 200k-tuple scale.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "algebra/expr.h"
#include "common/check.h"
#include "common/rng.h"
#include "exec/build.h"
#include "exec/morsel.h"
#include "relational/predicate.h"

namespace fro {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median wall time of the repetitions with the observed min/max
/// spread (see bench_batch.cc for the rationale).
struct Timing {
  int64_t median_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
};

struct Report {
  const char* pipeline;
  size_t rows;
  size_t out_rows;
  int workers;
  Timing timing;
  int64_t baseline_ns;  // the workers=1 median for the same pipeline
};

struct Checksum {
  uint64_t count = 0;
  int64_t sum = 0;

  void Consume(const Tuple& tuple) {
    ++count;
    const Value& v = tuple.value(0);
    if (v.kind() == Value::Kind::kInt) sum += v.AsInt();
  }
  bool operator==(const Checksum& other) const {
    return count == other.count && sum == other.sum;
  }
};

// Median-of-`reps` wall time with min/max spread; every worker count
// gets identical treatment.
template <typename RunOnce>
Timing MeasureReps(int reps, RunOnce&& run_once) {
  std::vector<int64_t> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const int64_t start = NowNs();
    run_once();
    samples.push_back(NowNs() - start);
  }
  std::sort(samples.begin(), samples.end());
  Timing t;
  const size_t n = samples.size();
  t.median_ns = n % 2 == 1 ? samples[n / 2]
                           : (samples[n / 2 - 1] + samples[n / 2]) / 2;
  t.min_ns = samples.front();
  t.max_ns = samples.back();
  return t;
}

Checksum DrainToChecksum(BatchIterator* root) {
  Checksum checksum;
  root->Open();
  TupleBatch batch;
  while (root->NextBatch(&batch)) {
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) checksum.Consume(batch.selected(i));
  }
  root->Close();
  return checksum;
}

void Measure(const char* name, const ExprPtr& expr, const Database& db,
             size_t base_rows, int reps, std::vector<Report>* reports) {
  Checksum serial_sum;
  int64_t baseline_ns = 0;
  for (const int workers : {1, 2, 4, 8}) {
    ParallelOptions par;
    par.threads = workers;
    Checksum sum;
    const Timing timing = MeasureReps(reps, [&] {
      BatchIteratorPtr root = BuildParallelBatchIterator(expr, db, par);
      sum = DrainToChecksum(root.get());
    });
    if (workers == 1) {
      serial_sum = sum;
      baseline_ns = timing.median_ns;
    } else {
      FRO_CHECK(sum == serial_sum)
          << name << " diverges at " << workers << " workers";
    }
    reports->push_back(
        {name, base_rows, sum.count, workers, timing, baseline_ns});
  }
}

void Emit(const std::vector<Report>& reports) {
  std::printf("{\"hardware_concurrency\": %u,\n \"results\": [\n",
              std::thread::hardware_concurrency());
  for (size_t i = 0; i < reports.size(); ++i) {
    const Report& r = reports[i];
    const double mtps = static_cast<double>(r.rows) * 1e3 /
                        static_cast<double>(r.timing.median_ns);
    std::printf(
        "  {\"pipeline\": \"%s\", \"rows\": %zu, \"out_rows\": %zu, "
        "\"workers\": %d, \"ns\": %lld, \"min_ns\": %lld, "
        "\"max_ns\": %lld, \"mtps\": %.2f, \"speedup_vs_1\": %.2f}%s\n",
        r.pipeline, r.rows, r.out_rows, r.workers,
        static_cast<long long>(r.timing.median_ns),
        static_cast<long long>(r.timing.min_ns),
        static_cast<long long>(r.timing.max_ns), mtps,
        static_cast<double>(r.baseline_ns) /
            static_cast<double>(r.timing.median_ns),
        i + 1 < reports.size() ? "," : "");
  }
  std::printf("]}\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  const size_t kRows = 200000;
  const int reps = smoke ? 5 : 11;  // median needs >= 5 samples

  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  RelId s = *db.AddRelation("S", {"c", "d"});
  AttrId a = db.Attr("R", "a");
  AttrId b = db.Attr("R", "b");
  AttrId c = db.Attr("S", "c");
  Rng rng(1990);
  const int64_t kDomain = static_cast<int64_t>(kRows) / 10;
  for (size_t i = 0; i < kRows; ++i) {
    db.AddRow(r, {Value::Int(static_cast<int64_t>(
                      rng.Uniform(static_cast<uint64_t>(kDomain)))),
                  Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  // Build side: one row per key for half the domain, so the join is
  // selective and the outerjoin pads the other half with nulls.
  for (int64_t k = 0; k < kDomain / 2; ++k) {
    db.AddRow(s, {Value::Int(k), Value::Int(k)});
  }

  auto leaf_r = [&] { return Expr::Leaf(r, db); };
  auto leaf_s = [&] { return Expr::Leaf(s, db); };
  PredicatePtr half = CmpLit(CmpOp::kLt, b, Value::Int(500));
  PredicatePtr keys = EqCols(a, c);

  std::vector<Report> reports;
  Measure("scan_filter", Expr::Restrict(leaf_r(), half), db, kRows, reps,
          &reports);
  Measure("scan_filter_hashjoin",
          Expr::Join(Expr::Restrict(leaf_r(), half), leaf_s(), keys), db,
          kRows, reps, &reports);
  Measure("scan_filter_leftouter",
          Expr::OuterJoin(Expr::Restrict(leaf_r(), half), leaf_s(), keys,
                          /*preserves_left=*/true),
          db, kRows, reps, &reports);
  Emit(reports);
  return 0;
}

}  // namespace
}  // namespace fro

int main(int argc, char** argv) { return fro::Main(argc, argv); }
