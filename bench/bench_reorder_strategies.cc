// Experiment E2 — the second half of the paper's Example 1.
//
// "For the same (freely-reorderable) expression R1 - R2 -> R3, if the
//  join predicate is (R1.A > R2.B) ... evaluating the join first would
//  produce a large output ... The optimal strategy in this case is to do
//  the outerjoin first."
//
// We sweep the join predicate's selectivity (via a `>` threshold) and
// report the intermediate sizes / C_out cost of both orders, locating the
// crossover: selective join predicates favor join-first, non-selective
// ones favor outerjoin-first.

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "common/rng.h"
#include "relational/database.h"

namespace fro {
namespace {

// R1(a), R2(b, c), R3(d): join pred R1.a > R2.b (selectivity controlled by
// data), outerjoin pred R2.c = R3.d (keys).
struct Fixture {
  std::unique_ptr<Database> db;
  ExprPtr join_first;   // (R1 - R2) -> R3
  ExprPtr outer_first;  // R1 - (R2 -> R3)
};

// `match_pct` controls the fraction of (R1, R2) pairs satisfying a > b.
Fixture MakeFixture(int rows, int match_pct) {
  Fixture f;
  f.db = std::make_unique<Database>();
  RelId r1 = *f.db->AddRelation("R1", {"a"});
  RelId r2 = *f.db->AddRelation("R2", {"b", "c"});
  RelId r3 = *f.db->AddRelation("R3", {"d"});
  Rng rng(42);
  // R1 values uniform in [0, 100); R2.b uniform in [match_pct, 100+...):
  // roughly, a > b holds when a lands above b. Shift R2.b upward to make
  // matches rarer.
  for (int i = 0; i < rows; ++i) {
    f.db->AddRow(r1, {Value::Int(rng.UniformInt(0, 99))});
    f.db->AddRow(
        r2, {Value::Int(rng.UniformInt(100 - match_pct, 199 - match_pct)),
             Value::Int(i)});
    f.db->AddRow(r3, {Value::Int(i)});
  }
  PredicatePtr pjoin =
      CmpCols(CmpOp::kGt, f.db->Attr("R1", "a"), f.db->Attr("R2", "b"));
  PredicatePtr pouter =
      EqCols(f.db->Attr("R2", "c"), f.db->Attr("R3", "d"));
  ExprPtr e1 = Expr::Leaf(r1, *f.db);
  ExprPtr e2 = Expr::Leaf(r2, *f.db);
  ExprPtr e3 = Expr::Leaf(r3, *f.db);
  f.join_first = Expr::OuterJoin(Expr::Join(e1, e2, pjoin), e3, pouter);
  f.outer_first = Expr::Join(e1, Expr::OuterJoin(e2, e3, pouter), pjoin);
  return f;
}

void RunOrder(benchmark::State& state, bool join_first) {
  const int rows = static_cast<int>(state.range(0));
  const int match_pct = static_cast<int>(state.range(1));
  Fixture f = MakeFixture(rows, match_pct);
  const ExprPtr& plan = join_first ? f.join_first : f.outer_first;
  uint64_t intermediates = 0;
  uint64_t out_rows = 0;
  for (auto _ : state) {
    EvalStats stats;
    Relation out = Eval(plan, *f.db, EvalOptions(), &stats);
    benchmark::DoNotOptimize(out);
    intermediates = stats.intermediate_tuples;
    out_rows = out.NumRows();
  }
  state.counters["intermediate_tuples"] = static_cast<double>(intermediates);
  state.counters["output_rows"] = static_cast<double>(out_rows);
  state.counters["match_pct"] = match_pct;
}

void BM_JoinFirst(benchmark::State& state) { RunOrder(state, true); }
void BM_OuterjoinFirst(benchmark::State& state) { RunOrder(state, false); }

// Sweep the join selectivity: 5% (selective) to 95% (non-selective).
BENCHMARK(BM_JoinFirst)
    ->Args({300, 5})
    ->Args({300, 25})
    ->Args({300, 50})
    ->Args({300, 75})
    ->Args({300, 95})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OuterjoinFirst)
    ->Args({300, 5})
    ->Args({300, 25})
    ->Args({300, 50})
    ->Args({300, 75})
    ->Args({300, 95})
    ->Unit(benchmark::kMillisecond);

// Sanity: the two orders agree (the expression is freely reorderable),
// for every selectivity in the sweep.
void BM_OrdersAgree(benchmark::State& state) {
  Fixture f = MakeFixture(200, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool equal =
        BagEquals(Eval(f.join_first, *f.db), Eval(f.outer_first, *f.db));
    FRO_CHECK(equal);
    benchmark::DoNotOptimize(equal);
  }
}
BENCHMARK(BM_OrdersAgree)->Arg(5)->Arg(50)->Arg(95)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
