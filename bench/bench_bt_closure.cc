// Experiment E7 — Lemma 3, measured: the closure of one implementing tree
// under basic transforms reaches all implementing trees of a nice graph.
// Reports closure sizes, BT application counts, and time versus relation
// count, for both the full BT set and the result-preserving subset.

#include <benchmark/benchmark.h>

#include "algebra/transform.h"
#include "common/check.h"
#include "common/rng.h"
#include "enumerate/bt_path.h"
#include "enumerate/closure.h"
#include "enumerate/it_enum.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

GeneratedQuery MakeQuery(int n, uint64_t seed) {
  Rng rng(seed);
  RandomQueryOptions options;
  options.num_relations = n;
  options.oj_fraction = 0.4;
  options.extra_join_edge_prob = 0.15;
  return GenerateRandomQuery(options, &rng);
}

void RunClosure(benchmark::State& state, bool only_preserving,
                int num_threads) {
  const int n = static_cast<int>(state.range(0));
  GeneratedQuery q = MakeQuery(n, 99);
  Rng rng(100);
  ExprPtr start = RandomIt(q.graph, *q.db, &rng);
  FRO_CHECK(start != nullptr);
  const uint64_t all_trees = CountIts(q.graph);
  size_t closure_size = 0;
  uint64_t applications = 0;
  size_t peak_frontier = 0;
  for (auto _ : state) {
    ClosureOptions options;
    options.only_result_preserving = only_preserving;
    options.num_threads = num_threads;
    ClosureResult closure = BtClosure(start, options);
    benchmark::DoNotOptimize(closure);
    closure_size = closure.trees.size();
    applications = closure.bt_applications;
    peak_frontier = closure.peak_frontier;
  }
  // Lemma 3 (and, with strong predicates, Lemma 2): the closure covers
  // every implementing tree.
  FRO_CHECK_EQ(closure_size, all_trees);
  state.counters["closure_trees"] = static_cast<double>(closure_size);
  state.counters["bt_applications"] = static_cast<double>(applications);
  state.counters["peak_frontier"] = static_cast<double>(peak_frontier);
  // Distinct states discovered per second of search.
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(closure_size), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Closure_AllBts(benchmark::State& state) {
  RunClosure(state, /*only_preserving=*/false, /*num_threads=*/1);
}
void BM_Closure_PreservingBts(benchmark::State& state) {
  RunClosure(state, /*only_preserving=*/true, /*num_threads=*/1);
}
void BM_Closure_AllBtsParallel(benchmark::State& state) {
  RunClosure(state, /*only_preserving=*/false, /*num_threads=*/4);
}

BENCHMARK(BM_Closure_AllBts)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Closure_PreservingBts)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Closure_AllBtsParallel)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond);

// Constructive Theorem 1: shortest result-preserving BT path between two
// random implementing trees (the paper's proof sequence, materialized).
void BM_BtPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneratedQuery q = MakeQuery(n, 17);
  Rng rng(18);
  ExprPtr from = RandomIt(q.graph, *q.db, &rng);
  ExprPtr to = RandomIt(q.graph, *q.db, &rng);
  size_t path_length = 0;
  for (auto _ : state) {
    BtPathResult path = FindBtPath(from, to);
    FRO_CHECK(path.found);
    benchmark::DoNotOptimize(path);
    path_length = path.steps.size() - 1;
  }
  state.counters["bt_steps"] = static_cast<double>(path_length);
}
BENCHMARK(BM_BtPath)->Arg(4)->Arg(6)->Arg(8)->Unit(
    benchmark::kMillisecond);

// Single-step expansion cost: FindApplicableBts + ApplyBt over one tree.
void BM_FindAndApplyBts(benchmark::State& state) {
  GeneratedQuery q = MakeQuery(static_cast<int>(state.range(0)), 7);
  Rng rng(8);
  ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
  size_t sites = 0;
  for (auto _ : state) {
    std::vector<BtSite> found = FindApplicableBts(tree);
    sites = found.size();
    for (const BtSite& site : found) {
      Result<ExprPtr> out = ApplyBt(tree, site);
      FRO_CHECK(out.ok());
      benchmark::DoNotOptimize(*out);
    }
  }
  state.counters["applicable_sites"] = static_cast<double>(sites);
}
BENCHMARK(BM_FindAndApplyBts)
    ->Arg(5)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
