// Experiment E11 — the Section 5 language end to end: lexing, parsing,
// translation to outerjoins, the free-reorderability audit, optimization,
// and execution, on scaled versions of the paper's company schema.

#include <benchmark/benchmark.h>

#include "common/check.h"
#include "common/rng.h"
#include "lang/lang.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

const char kProsecutorQuery[] =
    "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit "
    "Where EMPLOYEE.D# = DEPARTMENT.D# and "
    "DEPARTMENT.Location = 'Zurich' and EMPLOYEE.Rank > 10";

// A scaled company: `departments` departments, ~3 employees each, 0-3
// children per employee.
NestedDb MakeScaledCompany(int departments) {
  NestedDb db;
  FRO_CHECK(db.DefineType("REPORT",
                          {{"Title", FieldDef::Kind::kScalar, ""},
                           {"Cost", FieldDef::Kind::kScalar, ""}})
                .ok());
  FRO_CHECK(db.DefineType("EMPLOYEE",
                          {{"D#", FieldDef::Kind::kScalar, ""},
                           {"Rank", FieldDef::Kind::kScalar, ""},
                           {"ChildName", FieldDef::Kind::kSetValued, ""}})
                .ok());
  FRO_CHECK(db.DefineType(
                  "DEPARTMENT",
                  {{"D#", FieldDef::Kind::kScalar, ""},
                   {"Location", FieldDef::Kind::kScalar, ""},
                   {"Manager", FieldDef::Kind::kEntityRef, "EMPLOYEE"},
                   {"Audit", FieldDef::Kind::kEntityRef, "REPORT"}})
                .ok());
  Rng rng(3);
  for (int d = 0; d < departments; ++d) {
    int64_t manager = 0;
    for (int e = 0; e < 3; ++e) {
      std::vector<Value> kids;
      for (int c = static_cast<int>(rng.Uniform(4)); c > 0; --c) {
        kids.push_back(Value::String("kid" + std::to_string(d * 100 + c)));
      }
      int64_t oid = *db.AddEntity(
          "EMPLOYEE",
          {FieldValue::Scalar(Value::Int(d)),
           FieldValue::Scalar(Value::Int(rng.UniformInt(1, 15))),
           FieldValue::Set(std::move(kids))});
      if (e == 0) manager = oid;
    }
    FieldValue audit = FieldValue::NullRef();
    if (rng.Bernoulli(0.7)) {
      audit = FieldValue::Ref(*db.AddEntity(
          "REPORT", {FieldValue::Scalar(Value::String("audit")),
                     FieldValue::Scalar(Value::Int(d))}));
    }
    FRO_CHECK(db.AddEntity("DEPARTMENT",
                           {FieldValue::Scalar(Value::Int(d)),
                            FieldValue::Scalar(Value::String(
                                d % 2 == 0 ? "Zurich" : "Queretaro")),
                            FieldValue::Ref(manager), audit})
                  .ok());
  }
  return db;
}

void BM_ParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    Result<SelectQuery> ast = ParseQuery(kProsecutorQuery);
    FRO_CHECK(ast.ok());
    benchmark::DoNotOptimize(*ast);
  }
}
BENCHMARK(BM_ParseOnly)->Unit(benchmark::kMicrosecond);

void BM_TranslateOnly(benchmark::State& state) {
  NestedDb db = MakeScaledCompany(static_cast<int>(state.range(0)));
  Result<SelectQuery> ast = ParseQuery(kProsecutorQuery);
  FRO_CHECK(ast.ok());
  for (auto _ : state) {
    Result<TranslationResult> t = TranslateQuery(db, *ast);
    FRO_CHECK(t.ok());
    FRO_CHECK(t->audit.freely_reorderable());
    benchmark::DoNotOptimize(*t);
  }
}
BENCHMARK(BM_TranslateOnly)->Arg(10)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMillisecond);

void BM_RunQueryEndToEnd(benchmark::State& state) {
  NestedDb db = MakeScaledCompany(static_cast<int>(state.range(0)));
  size_t out_rows = 0;
  for (auto _ : state) {
    Result<QueryRunResult> run = RunQuery(db, kProsecutorQuery);
    FRO_CHECK(run.ok());
    benchmark::DoNotOptimize(*run);
    out_rows = run->relation.NumRows();
  }
  state.counters["output_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_RunQueryEndToEnd)->Arg(10)->Arg(100)->Arg(500)->Unit(
    benchmark::kMillisecond);

void BM_RunQueryUnoptimized(benchmark::State& state) {
  NestedDb db = MakeScaledCompany(static_cast<int>(state.range(0)));
  RunOptions options;
  options.optimize = false;
  for (auto _ : state) {
    Result<QueryRunResult> run = RunQuery(db, kProsecutorQuery, options);
    FRO_CHECK(run.ok());
    benchmark::DoNotOptimize(*run);
  }
}
BENCHMARK(BM_RunQueryUnoptimized)->Arg(10)->Arg(100)->Arg(500)->Unit(
    benchmark::kMillisecond);

// The paper's simpler UnNest query on the canonical small database.
void BM_QueretaroQuery(benchmark::State& state) {
  NestedDb db = MakeCompanyNestedDb();
  for (auto _ : state) {
    Result<QueryRunResult> run = RunQuery(
        db,
        "Select All From EMPLOYEE*ChildName, DEPARTMENT "
        "Where EMPLOYEE.D# = DEPARTMENT.D# and "
        "DEPARTMENT.Location = 'Queretaro'");
    FRO_CHECK(run.ok());
    FRO_CHECK_EQ(run->relation.NumRows(), 1u);
    benchmark::DoNotOptimize(*run);
  }
}
BENCHMARK(BM_QueretaroQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
