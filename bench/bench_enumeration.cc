// Experiment E6 — implementing-tree counts and enumeration throughput by
// query-graph topology (Theorem 1's search space), plus the all-trees-
// agree verification that Theorem 1 licenses.

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/nice.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

struct Topology {
  std::unique_ptr<Database> db;
  QueryGraph graph;
};

// A chain R0 - R1 - ... With `with_outerjoins`, the second half of the
// chain is an outerjoin path going outward from the join core (a nice
// topology per Lemma 1; alternating kinds would put a join edge at a
// null-supplied node).
Topology MakeChain(int n, bool with_outerjoins) {
  Topology t;
  t.db = std::make_unique<Database>();
  for (int i = 0; i < n; ++i) {
    RelId r = *t.db->AddRelation("R" + std::to_string(i), {"a"});
    t.graph.AddNode(r, t.db->scheme(r).ToAttrSet());
    t.db->AddRow(r, {Value::Int(i % 3)});
    t.db->AddRow(r, {Value::Int((i + 1) % 3)});
  }
  for (int i = 0; i + 1 < n; ++i) {
    PredicatePtr pred = EqCols(t.db->Attr("R" + std::to_string(i), "a"),
                               t.db->Attr("R" + std::to_string(i + 1), "a"));
    if (with_outerjoins && i >= (n - 1) / 2) {
      FRO_CHECK(t.graph.AddOuterJoinEdge(i, i + 1, pred).ok());
    } else {
      FRO_CHECK(t.graph.AddJoinEdge(i, i + 1, pred).ok());
    }
  }
  return t;
}

// Star with join core center and outerjoin rays (the Fig. 2 shape).
Topology MakeFig2Star(int rays) {
  Topology t;
  t.db = std::make_unique<Database>();
  for (int i = 0; i <= rays; ++i) {
    RelId r = *t.db->AddRelation("R" + std::to_string(i), {"a"});
    t.graph.AddNode(r, t.db->scheme(r).ToAttrSet());
    t.db->AddRow(r, {Value::Int(i % 2)});
  }
  for (int i = 1; i <= rays; ++i) {
    PredicatePtr pred = EqCols(t.db->Attr("R0", "a"),
                               t.db->Attr("R" + std::to_string(i), "a"));
    FRO_CHECK(t.graph.AddOuterJoinEdge(0, i, pred).ok());
  }
  return t;
}

void BM_CountIts_JoinChain(benchmark::State& state) {
  Topology t = MakeChain(static_cast<int>(state.range(0)), false);
  uint64_t count = 0;
  EnumStats stats;
  for (auto _ : state) {
    count = CountIts(t.graph, &stats);
    benchmark::DoNotOptimize(count);
  }
  state.counters["trees"] = static_cast<double>(count);
  state.counters["states_visited"] = static_cast<double>(stats.states_visited);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(stats.states_visited),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CountIts_JoinChain)
    ->Arg(6)
    ->Arg(10)
    ->Arg(14)
    ->Arg(18)
    ->Unit(benchmark::kMicrosecond);

void BM_CountIts_MixedChain(benchmark::State& state) {
  Topology t = MakeChain(static_cast<int>(state.range(0)), true);
  uint64_t count = 0;
  for (auto _ : state) {
    count = CountIts(t.graph);
    benchmark::DoNotOptimize(count);
  }
  state.counters["trees"] = static_cast<double>(count);
}
BENCHMARK(BM_CountIts_MixedChain)
    ->Arg(6)
    ->Arg(10)
    ->Arg(14)
    ->Unit(benchmark::kMicrosecond);

void BM_CountIts_Fig2Star(benchmark::State& state) {
  Topology t = MakeFig2Star(static_cast<int>(state.range(0)));
  uint64_t count = 0;
  for (auto _ : state) {
    count = CountIts(t.graph);
    benchmark::DoNotOptimize(count);
  }
  state.counters["trees"] = static_cast<double>(count);
}
BENCHMARK(BM_CountIts_Fig2Star)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_EnumerateIts_MixedChain(benchmark::State& state) {
  Topology t = MakeChain(static_cast<int>(state.range(0)), true);
  size_t trees = 0;
  EnumStats stats;
  for (auto _ : state) {
    std::vector<ExprPtr> all =
        EnumerateIts(t.graph, *t.db, static_cast<size_t>(-1), &stats);
    benchmark::DoNotOptimize(all);
    trees = all.size();
  }
  state.counters["trees"] = static_cast<double>(trees);
  state.counters["states_visited"] = static_cast<double>(stats.states_visited);
  state.counters["trees_per_sec"] = benchmark::Counter(
      static_cast<double>(trees),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_EnumerateIts_MixedChain)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

// Theorem 1, measured: evaluate EVERY implementing tree of a mixed chain
// and verify all results agree.
void BM_AllTreesAgree(benchmark::State& state) {
  Topology t = MakeChain(static_cast<int>(state.range(0)), true);
  FRO_CHECK(CheckFreelyReorderable(t.graph).freely_reorderable());
  std::vector<ExprPtr> all = EnumerateIts(t.graph, *t.db);
  for (auto _ : state) {
    Relation reference = Eval(all[0], *t.db);
    for (const ExprPtr& tree : all) {
      FRO_CHECK(BagEquals(reference, Eval(tree, *t.db)));
    }
    benchmark::DoNotOptimize(reference);
  }
  state.counters["trees"] = static_cast<double>(all.size());
}
BENCHMARK(BM_AllTreesAgree)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

// Random uniform sampling of implementing trees.
void BM_RandomIt(benchmark::State& state) {
  Topology t = MakeChain(static_cast<int>(state.range(0)), true);
  Rng rng(5);
  for (auto _ : state) {
    ExprPtr tree = RandomIt(t.graph, *t.db, &rng);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_RandomIt)->Arg(8)->Arg(12)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
