// Experiment E9 — generalized outerjoin (Section 6.2): correctness and
// cost of evaluating the non-freely-reorderable X -> (Y - Z) directly
// versus through the identity-15 left-deep GOJ plan.

#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "common/check.h"
#include "common/rng.h"
#include "optimizer/goj_rewrite.h"
#include "relational/database.h"

namespace fro {
namespace {

// X(a), Y(b, c), Z(d): keys linked X.a = Y.b and Y.c = Z.d, with `hit_pct`
// percent of Y rows having a Z partner. Duplicate-free by construction.
struct Fixture {
  std::unique_ptr<Database> db;
  ExprPtr direct;  // X -> (Y - Z)
  ExprPtr goj;     // (X -> Y) GOJ[sch(X)] Z
};

Fixture MakeFixture(int rows, int hit_pct) {
  Fixture f;
  f.db = std::make_unique<Database>();
  RelId rx = *f.db->AddRelation("X", {"a"});
  RelId ry = *f.db->AddRelation("Y", {"b", "c"});
  RelId rz = *f.db->AddRelation("Z", {"d"});
  Rng rng(21);
  for (int i = 0; i < rows; ++i) {
    f.db->AddRow(rx, {Value::Int(i)});
    f.db->AddRow(ry, {Value::Int(i), Value::Int(i)});
    if (static_cast<int>(rng.Uniform(100)) < hit_pct) {
      f.db->AddRow(rz, {Value::Int(i)});
    }
  }
  PredicatePtr pxy = EqCols(f.db->Attr("X", "a"), f.db->Attr("Y", "b"));
  PredicatePtr pyz = EqCols(f.db->Attr("Y", "c"), f.db->Attr("Z", "d"));
  ExprPtr x = Expr::Leaf(rx, *f.db);
  ExprPtr y = Expr::Leaf(ry, *f.db);
  ExprPtr z = Expr::Leaf(rz, *f.db);
  f.direct = Expr::OuterJoin(x, Expr::Join(y, z, pyz), pxy);
  Result<ExprPtr> rewritten = ApplyIdentity15(f.direct);
  FRO_CHECK(rewritten.ok());
  f.goj = *rewritten;
  return f;
}

void BM_DirectRightDeep(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)));
  for (auto _ : state) {
    Relation out = Eval(f.direct, *f.db);
    benchmark::DoNotOptimize(out);
  }
  state.counters["hit_pct"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_DirectRightDeep)
    ->Args({1000, 30})
    ->Args({1000, 90})
    ->Args({5000, 30})
    ->Args({5000, 90})
    ->Unit(benchmark::kMillisecond);

void BM_GojLeftDeep(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)));
  for (auto _ : state) {
    Relation out = Eval(f.goj, *f.db);
    benchmark::DoNotOptimize(out);
  }
  state.counters["hit_pct"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_GojLeftDeep)
    ->Args({1000, 30})
    ->Args({1000, 90})
    ->Args({5000, 30})
    ->Args({5000, 90})
    ->Unit(benchmark::kMillisecond);

// Identity 15 is an equivalence (on duplicate-free inputs): measured,
// aborting on any disagreement.
void BM_Identity15Agrees(benchmark::State& state) {
  Fixture f = MakeFixture(500, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool equal = BagEquals(Eval(f.direct, *f.db), Eval(f.goj, *f.db));
    FRO_CHECK(equal);
    benchmark::DoNotOptimize(equal);
  }
}
BENCHMARK(BM_Identity15Agrees)->Arg(30)->Arg(90)->Unit(
    benchmark::kMillisecond);

// Raw GOJ kernel throughput.
void BM_GojKernel(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)), 50);
  const Relation& y = f.db->relation(f.db->Rel("Y"));
  const Relation& z = f.db->relation(f.db->Rel("Z"));
  PredicatePtr pyz = EqCols(f.db->Attr("Y", "c"), f.db->Attr("Z", "d"));
  AttrSet subset = AttrSet::Of({f.db->Attr("Y", "b")});
  for (auto _ : state) {
    KernelStats stats;
    Relation out =
        GeneralizedOuterJoin(y, z, pyz, subset, JoinAlgo::kAuto, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(y.NumRows()));
}
BENCHMARK(BM_GojKernel)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace fro

BENCHMARK_MAIN();
