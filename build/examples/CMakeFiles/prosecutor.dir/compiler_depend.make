# Empty compiler generated dependencies file for prosecutor.
# This may be replaced when dependencies are built.
