file(REMOVE_RECURSE
  "CMakeFiles/prosecutor.dir/prosecutor.cpp.o"
  "CMakeFiles/prosecutor.dir/prosecutor.cpp.o.d"
  "prosecutor"
  "prosecutor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prosecutor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
