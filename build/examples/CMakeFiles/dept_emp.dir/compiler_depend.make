# Empty compiler generated dependencies file for dept_emp.
# This may be replaced when dependencies are built.
