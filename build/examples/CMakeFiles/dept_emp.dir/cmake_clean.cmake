file(REMOVE_RECURSE
  "CMakeFiles/dept_emp.dir/dept_emp.cpp.o"
  "CMakeFiles/dept_emp.dir/dept_emp.cpp.o.d"
  "dept_emp"
  "dept_emp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dept_emp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
