file(REMOVE_RECURSE
  "CMakeFiles/fro_shell.dir/fro_shell.cpp.o"
  "CMakeFiles/fro_shell.dir/fro_shell.cpp.o.d"
  "fro_shell"
  "fro_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
