# Empty compiler generated dependencies file for fro_shell.
# This may be replaced when dependencies are built.
