file(REMOVE_RECURSE
  "CMakeFiles/bench_lang.dir/bench_lang.cc.o"
  "CMakeFiles/bench_lang.dir/bench_lang.cc.o.d"
  "bench_lang"
  "bench_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
