# Empty dependencies file for bench_lang.
# This may be replaced when dependencies are built.
