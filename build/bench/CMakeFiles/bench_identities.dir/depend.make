# Empty dependencies file for bench_identities.
# This may be replaced when dependencies are built.
