file(REMOVE_RECURSE
  "CMakeFiles/bench_identities.dir/bench_identities.cc.o"
  "CMakeFiles/bench_identities.dir/bench_identities.cc.o.d"
  "bench_identities"
  "bench_identities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_identities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
