# Empty dependencies file for bench_bt_closure.
# This may be replaced when dependencies are built.
