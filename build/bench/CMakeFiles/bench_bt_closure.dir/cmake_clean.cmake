file(REMOVE_RECURSE
  "CMakeFiles/bench_bt_closure.dir/bench_bt_closure.cc.o"
  "CMakeFiles/bench_bt_closure.dir/bench_bt_closure.cc.o.d"
  "bench_bt_closure"
  "bench_bt_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bt_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
