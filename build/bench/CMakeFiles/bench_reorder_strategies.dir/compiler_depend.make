# Empty compiler generated dependencies file for bench_reorder_strategies.
# This may be replaced when dependencies are built.
