file(REMOVE_RECURSE
  "CMakeFiles/bench_reorder_strategies.dir/bench_reorder_strategies.cc.o"
  "CMakeFiles/bench_reorder_strategies.dir/bench_reorder_strategies.cc.o.d"
  "bench_reorder_strategies"
  "bench_reorder_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorder_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
