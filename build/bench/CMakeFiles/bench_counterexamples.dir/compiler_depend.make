# Empty compiler generated dependencies file for bench_counterexamples.
# This may be replaced when dependencies are built.
