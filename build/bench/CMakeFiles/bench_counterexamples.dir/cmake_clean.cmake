file(REMOVE_RECURSE
  "CMakeFiles/bench_counterexamples.dir/bench_counterexamples.cc.o"
  "CMakeFiles/bench_counterexamples.dir/bench_counterexamples.cc.o.d"
  "bench_counterexamples"
  "bench_counterexamples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counterexamples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
