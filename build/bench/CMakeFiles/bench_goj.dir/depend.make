# Empty dependencies file for bench_goj.
# This may be replaced when dependencies are built.
