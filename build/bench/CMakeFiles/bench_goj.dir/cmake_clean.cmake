file(REMOVE_RECURSE
  "CMakeFiles/bench_goj.dir/bench_goj.cc.o"
  "CMakeFiles/bench_goj.dir/bench_goj.cc.o.d"
  "bench_goj"
  "bench_goj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_goj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
