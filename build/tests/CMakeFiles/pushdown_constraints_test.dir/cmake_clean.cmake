file(REMOVE_RECURSE
  "CMakeFiles/pushdown_constraints_test.dir/pushdown_constraints_test.cc.o"
  "CMakeFiles/pushdown_constraints_test.dir/pushdown_constraints_test.cc.o.d"
  "pushdown_constraints_test"
  "pushdown_constraints_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushdown_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
