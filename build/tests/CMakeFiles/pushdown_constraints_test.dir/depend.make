# Empty dependencies file for pushdown_constraints_test.
# This may be replaced when dependencies are built.
