file(REMOVE_RECURSE
  "CMakeFiles/goj_rewrite_test.dir/goj_rewrite_test.cc.o"
  "CMakeFiles/goj_rewrite_test.dir/goj_rewrite_test.cc.o.d"
  "goj_rewrite_test"
  "goj_rewrite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goj_rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
