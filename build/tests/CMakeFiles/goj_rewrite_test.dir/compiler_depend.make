# Empty compiler generated dependencies file for goj_rewrite_test.
# This may be replaced when dependencies are built.
