
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform_test.cc" "tests/CMakeFiles/transform_test.dir/transform_test.cc.o" "gcc" "tests/CMakeFiles/transform_test.dir/transform_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testing/CMakeFiles/fro_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/fro_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/fro_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fro_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/enumerate/CMakeFiles/fro_enumerate.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/fro_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/fro_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
