file(REMOVE_RECURSE
  "CMakeFiles/reassoc_identities_test.dir/reassoc_identities_test.cc.o"
  "CMakeFiles/reassoc_identities_test.dir/reassoc_identities_test.cc.o.d"
  "reassoc_identities_test"
  "reassoc_identities_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reassoc_identities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
