# Empty dependencies file for reassoc_identities_test.
# This may be replaced when dependencies are built.
