file(REMOVE_RECURSE
  "CMakeFiles/facade_property_test.dir/facade_property_test.cc.o"
  "CMakeFiles/facade_property_test.dir/facade_property_test.cc.o.d"
  "facade_property_test"
  "facade_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facade_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
