# Empty dependencies file for facade_property_test.
# This may be replaced when dependencies are built.
