file(REMOVE_RECURSE
  "CMakeFiles/sweep_property_test.dir/sweep_property_test.cc.o"
  "CMakeFiles/sweep_property_test.dir/sweep_property_test.cc.o.d"
  "sweep_property_test"
  "sweep_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
