file(REMOVE_RECURSE
  "CMakeFiles/fig3_proof_test.dir/fig3_proof_test.cc.o"
  "CMakeFiles/fig3_proof_test.dir/fig3_proof_test.cc.o.d"
  "fig3_proof_test"
  "fig3_proof_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_proof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
