# Empty compiler generated dependencies file for fig3_proof_test.
# This may be replaced when dependencies are built.
