# Empty dependencies file for api_misuse_test.
# This may be replaced when dependencies are built.
