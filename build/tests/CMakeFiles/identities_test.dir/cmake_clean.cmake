file(REMOVE_RECURSE
  "CMakeFiles/identities_test.dir/identities_test.cc.o"
  "CMakeFiles/identities_test.dir/identities_test.cc.o.d"
  "identities_test"
  "identities_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
