# Empty dependencies file for identities_test.
# This may be replaced when dependencies are built.
