file(REMOVE_RECURSE
  "CMakeFiles/strength_side_test.dir/strength_side_test.cc.o"
  "CMakeFiles/strength_side_test.dir/strength_side_test.cc.o.d"
  "strength_side_test"
  "strength_side_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strength_side_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
