# Empty dependencies file for strength_side_test.
# This may be replaced when dependencies are built.
