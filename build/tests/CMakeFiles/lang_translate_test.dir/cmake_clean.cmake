file(REMOVE_RECURSE
  "CMakeFiles/lang_translate_test.dir/lang_translate_test.cc.o"
  "CMakeFiles/lang_translate_test.dir/lang_translate_test.cc.o.d"
  "lang_translate_test"
  "lang_translate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
