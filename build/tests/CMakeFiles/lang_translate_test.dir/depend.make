# Empty dependencies file for lang_translate_test.
# This may be replaced when dependencies are built.
