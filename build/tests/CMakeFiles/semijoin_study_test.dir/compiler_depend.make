# Empty compiler generated dependencies file for semijoin_study_test.
# This may be replaced when dependencies are built.
