file(REMOVE_RECURSE
  "CMakeFiles/semijoin_study_test.dir/semijoin_study_test.cc.o"
  "CMakeFiles/semijoin_study_test.dir/semijoin_study_test.cc.o.d"
  "semijoin_study_test"
  "semijoin_study_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semijoin_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
