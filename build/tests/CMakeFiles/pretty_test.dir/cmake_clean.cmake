file(REMOVE_RECURSE
  "CMakeFiles/pretty_test.dir/pretty_test.cc.o"
  "CMakeFiles/pretty_test.dir/pretty_test.cc.o.d"
  "pretty_test"
  "pretty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
