# Empty compiler generated dependencies file for pretty_test.
# This may be replaced when dependencies are built.
