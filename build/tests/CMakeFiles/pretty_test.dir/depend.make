# Empty dependencies file for pretty_test.
# This may be replaced when dependencies are built.
