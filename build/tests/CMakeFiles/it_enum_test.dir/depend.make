# Empty dependencies file for it_enum_test.
# This may be replaced when dependencies are built.
