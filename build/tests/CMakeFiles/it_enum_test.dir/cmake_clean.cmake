file(REMOVE_RECURSE
  "CMakeFiles/it_enum_test.dir/it_enum_test.cc.o"
  "CMakeFiles/it_enum_test.dir/it_enum_test.cc.o.d"
  "it_enum_test"
  "it_enum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
