file(REMOVE_RECURSE
  "CMakeFiles/select_list_test.dir/select_list_test.cc.o"
  "CMakeFiles/select_list_test.dir/select_list_test.cc.o.d"
  "select_list_test"
  "select_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
