# Empty compiler generated dependencies file for select_list_test.
# This may be replaced when dependencies are built.
