file(REMOVE_RECURSE
  "CMakeFiles/algebra_parse_test.dir/algebra_parse_test.cc.o"
  "CMakeFiles/algebra_parse_test.dir/algebra_parse_test.cc.o.d"
  "algebra_parse_test"
  "algebra_parse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
