# Empty dependencies file for bt_path_test.
# This may be replaced when dependencies are built.
