file(REMOVE_RECURSE
  "CMakeFiles/bt_path_test.dir/bt_path_test.cc.o"
  "CMakeFiles/bt_path_test.dir/bt_path_test.cc.o.d"
  "bt_path_test"
  "bt_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
