file(REMOVE_RECURSE
  "CMakeFiles/simplify_conjecture_test.dir/simplify_conjecture_test.cc.o"
  "CMakeFiles/simplify_conjecture_test.dir/simplify_conjecture_test.cc.o.d"
  "simplify_conjecture_test"
  "simplify_conjecture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplify_conjecture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
