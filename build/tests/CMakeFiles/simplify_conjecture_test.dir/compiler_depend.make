# Empty compiler generated dependencies file for simplify_conjecture_test.
# This may be replaced when dependencies are built.
