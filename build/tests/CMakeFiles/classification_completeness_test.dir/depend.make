# Empty dependencies file for classification_completeness_test.
# This may be replaced when dependencies are built.
