file(REMOVE_RECURSE
  "CMakeFiles/classification_completeness_test.dir/classification_completeness_test.cc.o"
  "CMakeFiles/classification_completeness_test.dir/classification_completeness_test.cc.o.d"
  "classification_completeness_test"
  "classification_completeness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_completeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
