file(REMOVE_RECURSE
  "CMakeFiles/tree_conditions_test.dir/tree_conditions_test.cc.o"
  "CMakeFiles/tree_conditions_test.dir/tree_conditions_test.cc.o.d"
  "tree_conditions_test"
  "tree_conditions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
