# Empty compiler generated dependencies file for goj_op_test.
# This may be replaced when dependencies are built.
