file(REMOVE_RECURSE
  "CMakeFiles/goj_op_test.dir/goj_op_test.cc.o"
  "CMakeFiles/goj_op_test.dir/goj_op_test.cc.o.d"
  "goj_op_test"
  "goj_op_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goj_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
