# Empty compiler generated dependencies file for fro_testing.
# This may be replaced when dependencies are built.
