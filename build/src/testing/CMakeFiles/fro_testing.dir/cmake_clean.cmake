file(REMOVE_RECURSE
  "CMakeFiles/fro_testing.dir/datagen.cc.o"
  "CMakeFiles/fro_testing.dir/datagen.cc.o.d"
  "CMakeFiles/fro_testing.dir/graphgen.cc.o"
  "CMakeFiles/fro_testing.dir/graphgen.cc.o.d"
  "CMakeFiles/fro_testing.dir/nested_gen.cc.o"
  "CMakeFiles/fro_testing.dir/nested_gen.cc.o.d"
  "CMakeFiles/fro_testing.dir/nested_sample.cc.o"
  "CMakeFiles/fro_testing.dir/nested_sample.cc.o.d"
  "libfro_testing.a"
  "libfro_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
