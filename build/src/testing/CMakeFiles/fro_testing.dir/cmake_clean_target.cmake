file(REMOVE_RECURSE
  "libfro_testing.a"
)
