# Empty dependencies file for fro_common.
# This may be replaced when dependencies are built.
