file(REMOVE_RECURSE
  "CMakeFiles/fro_common.dir/status.cc.o"
  "CMakeFiles/fro_common.dir/status.cc.o.d"
  "CMakeFiles/fro_common.dir/str_util.cc.o"
  "CMakeFiles/fro_common.dir/str_util.cc.o.d"
  "libfro_common.a"
  "libfro_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
