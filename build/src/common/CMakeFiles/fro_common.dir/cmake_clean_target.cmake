file(REMOVE_RECURSE
  "libfro_common.a"
)
