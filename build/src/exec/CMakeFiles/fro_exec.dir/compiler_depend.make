# Empty compiler generated dependencies file for fro_exec.
# This may be replaced when dependencies are built.
