file(REMOVE_RECURSE
  "libfro_exec.a"
)
