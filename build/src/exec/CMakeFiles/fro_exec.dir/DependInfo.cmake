
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/build.cc" "src/exec/CMakeFiles/fro_exec.dir/build.cc.o" "gcc" "src/exec/CMakeFiles/fro_exec.dir/build.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/fro_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/fro_exec.dir/operators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/fro_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/fro_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
