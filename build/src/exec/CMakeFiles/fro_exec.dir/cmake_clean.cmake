file(REMOVE_RECURSE
  "CMakeFiles/fro_exec.dir/build.cc.o"
  "CMakeFiles/fro_exec.dir/build.cc.o.d"
  "CMakeFiles/fro_exec.dir/operators.cc.o"
  "CMakeFiles/fro_exec.dir/operators.cc.o.d"
  "libfro_exec.a"
  "libfro_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
