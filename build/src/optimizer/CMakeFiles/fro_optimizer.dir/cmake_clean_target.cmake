file(REMOVE_RECURSE
  "libfro_optimizer.a"
)
