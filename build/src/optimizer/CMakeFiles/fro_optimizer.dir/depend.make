# Empty dependencies file for fro_optimizer.
# This may be replaced when dependencies are built.
