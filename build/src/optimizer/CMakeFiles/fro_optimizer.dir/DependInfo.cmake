
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cardinality.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/cardinality.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/cardinality.cc.o.d"
  "/root/repo/src/optimizer/constraints.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/constraints.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/constraints.cc.o.d"
  "/root/repo/src/optimizer/cost.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/cost.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/cost.cc.o.d"
  "/root/repo/src/optimizer/dp.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/dp.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/dp.cc.o.d"
  "/root/repo/src/optimizer/explain.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/explain.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/explain.cc.o.d"
  "/root/repo/src/optimizer/goj_rewrite.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/goj_rewrite.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/goj_rewrite.cc.o.d"
  "/root/repo/src/optimizer/greedy.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/greedy.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/greedy.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/subquery.cc" "src/optimizer/CMakeFiles/fro_optimizer.dir/subquery.cc.o" "gcc" "src/optimizer/CMakeFiles/fro_optimizer.dir/subquery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/enumerate/CMakeFiles/fro_enumerate.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/fro_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/fro_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
