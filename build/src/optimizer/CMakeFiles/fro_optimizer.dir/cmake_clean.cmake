file(REMOVE_RECURSE
  "CMakeFiles/fro_optimizer.dir/cardinality.cc.o"
  "CMakeFiles/fro_optimizer.dir/cardinality.cc.o.d"
  "CMakeFiles/fro_optimizer.dir/constraints.cc.o"
  "CMakeFiles/fro_optimizer.dir/constraints.cc.o.d"
  "CMakeFiles/fro_optimizer.dir/cost.cc.o"
  "CMakeFiles/fro_optimizer.dir/cost.cc.o.d"
  "CMakeFiles/fro_optimizer.dir/dp.cc.o"
  "CMakeFiles/fro_optimizer.dir/dp.cc.o.d"
  "CMakeFiles/fro_optimizer.dir/explain.cc.o"
  "CMakeFiles/fro_optimizer.dir/explain.cc.o.d"
  "CMakeFiles/fro_optimizer.dir/goj_rewrite.cc.o"
  "CMakeFiles/fro_optimizer.dir/goj_rewrite.cc.o.d"
  "CMakeFiles/fro_optimizer.dir/greedy.cc.o"
  "CMakeFiles/fro_optimizer.dir/greedy.cc.o.d"
  "CMakeFiles/fro_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/fro_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/fro_optimizer.dir/subquery.cc.o"
  "CMakeFiles/fro_optimizer.dir/subquery.cc.o.d"
  "libfro_optimizer.a"
  "libfro_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
