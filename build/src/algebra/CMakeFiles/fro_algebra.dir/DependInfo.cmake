
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/eval.cc" "src/algebra/CMakeFiles/fro_algebra.dir/eval.cc.o" "gcc" "src/algebra/CMakeFiles/fro_algebra.dir/eval.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/algebra/CMakeFiles/fro_algebra.dir/expr.cc.o" "gcc" "src/algebra/CMakeFiles/fro_algebra.dir/expr.cc.o.d"
  "/root/repo/src/algebra/parse.cc" "src/algebra/CMakeFiles/fro_algebra.dir/parse.cc.o" "gcc" "src/algebra/CMakeFiles/fro_algebra.dir/parse.cc.o.d"
  "/root/repo/src/algebra/pushdown.cc" "src/algebra/CMakeFiles/fro_algebra.dir/pushdown.cc.o" "gcc" "src/algebra/CMakeFiles/fro_algebra.dir/pushdown.cc.o.d"
  "/root/repo/src/algebra/simplify.cc" "src/algebra/CMakeFiles/fro_algebra.dir/simplify.cc.o" "gcc" "src/algebra/CMakeFiles/fro_algebra.dir/simplify.cc.o.d"
  "/root/repo/src/algebra/transform.cc" "src/algebra/CMakeFiles/fro_algebra.dir/transform.cc.o" "gcc" "src/algebra/CMakeFiles/fro_algebra.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/fro_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
