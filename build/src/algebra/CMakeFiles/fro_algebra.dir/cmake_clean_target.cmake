file(REMOVE_RECURSE
  "libfro_algebra.a"
)
