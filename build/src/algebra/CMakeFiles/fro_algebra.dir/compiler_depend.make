# Empty compiler generated dependencies file for fro_algebra.
# This may be replaced when dependencies are built.
