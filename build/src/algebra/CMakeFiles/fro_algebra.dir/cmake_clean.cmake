file(REMOVE_RECURSE
  "CMakeFiles/fro_algebra.dir/eval.cc.o"
  "CMakeFiles/fro_algebra.dir/eval.cc.o.d"
  "CMakeFiles/fro_algebra.dir/expr.cc.o"
  "CMakeFiles/fro_algebra.dir/expr.cc.o.d"
  "CMakeFiles/fro_algebra.dir/parse.cc.o"
  "CMakeFiles/fro_algebra.dir/parse.cc.o.d"
  "CMakeFiles/fro_algebra.dir/pushdown.cc.o"
  "CMakeFiles/fro_algebra.dir/pushdown.cc.o.d"
  "CMakeFiles/fro_algebra.dir/simplify.cc.o"
  "CMakeFiles/fro_algebra.dir/simplify.cc.o.d"
  "CMakeFiles/fro_algebra.dir/transform.cc.o"
  "CMakeFiles/fro_algebra.dir/transform.cc.o.d"
  "libfro_algebra.a"
  "libfro_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
