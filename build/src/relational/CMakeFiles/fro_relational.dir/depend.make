# Empty dependencies file for fro_relational.
# This may be replaced when dependencies are built.
