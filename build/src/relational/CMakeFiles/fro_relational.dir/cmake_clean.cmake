file(REMOVE_RECURSE
  "CMakeFiles/fro_relational.dir/database.cc.o"
  "CMakeFiles/fro_relational.dir/database.cc.o.d"
  "CMakeFiles/fro_relational.dir/index.cc.o"
  "CMakeFiles/fro_relational.dir/index.cc.o.d"
  "CMakeFiles/fro_relational.dir/index_manager.cc.o"
  "CMakeFiles/fro_relational.dir/index_manager.cc.o.d"
  "CMakeFiles/fro_relational.dir/ops.cc.o"
  "CMakeFiles/fro_relational.dir/ops.cc.o.d"
  "CMakeFiles/fro_relational.dir/predicate.cc.o"
  "CMakeFiles/fro_relational.dir/predicate.cc.o.d"
  "CMakeFiles/fro_relational.dir/pretty.cc.o"
  "CMakeFiles/fro_relational.dir/pretty.cc.o.d"
  "CMakeFiles/fro_relational.dir/relation.cc.o"
  "CMakeFiles/fro_relational.dir/relation.cc.o.d"
  "CMakeFiles/fro_relational.dir/schema.cc.o"
  "CMakeFiles/fro_relational.dir/schema.cc.o.d"
  "CMakeFiles/fro_relational.dir/sort_merge.cc.o"
  "CMakeFiles/fro_relational.dir/sort_merge.cc.o.d"
  "CMakeFiles/fro_relational.dir/text_io.cc.o"
  "CMakeFiles/fro_relational.dir/text_io.cc.o.d"
  "CMakeFiles/fro_relational.dir/tuple.cc.o"
  "CMakeFiles/fro_relational.dir/tuple.cc.o.d"
  "CMakeFiles/fro_relational.dir/value.cc.o"
  "CMakeFiles/fro_relational.dir/value.cc.o.d"
  "libfro_relational.a"
  "libfro_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
