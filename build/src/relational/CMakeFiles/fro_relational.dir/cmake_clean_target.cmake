file(REMOVE_RECURSE
  "libfro_relational.a"
)
