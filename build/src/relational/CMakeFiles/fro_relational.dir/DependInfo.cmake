
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/database.cc" "src/relational/CMakeFiles/fro_relational.dir/database.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/database.cc.o.d"
  "/root/repo/src/relational/index.cc" "src/relational/CMakeFiles/fro_relational.dir/index.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/index.cc.o.d"
  "/root/repo/src/relational/index_manager.cc" "src/relational/CMakeFiles/fro_relational.dir/index_manager.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/index_manager.cc.o.d"
  "/root/repo/src/relational/ops.cc" "src/relational/CMakeFiles/fro_relational.dir/ops.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/ops.cc.o.d"
  "/root/repo/src/relational/predicate.cc" "src/relational/CMakeFiles/fro_relational.dir/predicate.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/predicate.cc.o.d"
  "/root/repo/src/relational/pretty.cc" "src/relational/CMakeFiles/fro_relational.dir/pretty.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/pretty.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/relational/CMakeFiles/fro_relational.dir/relation.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/fro_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/sort_merge.cc" "src/relational/CMakeFiles/fro_relational.dir/sort_merge.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/sort_merge.cc.o.d"
  "/root/repo/src/relational/text_io.cc" "src/relational/CMakeFiles/fro_relational.dir/text_io.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/text_io.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/relational/CMakeFiles/fro_relational.dir/tuple.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/relational/CMakeFiles/fro_relational.dir/value.cc.o" "gcc" "src/relational/CMakeFiles/fro_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
