
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/from_expr.cc" "src/graph/CMakeFiles/fro_graph.dir/from_expr.cc.o" "gcc" "src/graph/CMakeFiles/fro_graph.dir/from_expr.cc.o.d"
  "/root/repo/src/graph/nice.cc" "src/graph/CMakeFiles/fro_graph.dir/nice.cc.o" "gcc" "src/graph/CMakeFiles/fro_graph.dir/nice.cc.o.d"
  "/root/repo/src/graph/query_graph.cc" "src/graph/CMakeFiles/fro_graph.dir/query_graph.cc.o" "gcc" "src/graph/CMakeFiles/fro_graph.dir/query_graph.cc.o.d"
  "/root/repo/src/graph/tree_conditions.cc" "src/graph/CMakeFiles/fro_graph.dir/tree_conditions.cc.o" "gcc" "src/graph/CMakeFiles/fro_graph.dir/tree_conditions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/fro_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/fro_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
