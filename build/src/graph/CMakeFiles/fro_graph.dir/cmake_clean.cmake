file(REMOVE_RECURSE
  "CMakeFiles/fro_graph.dir/from_expr.cc.o"
  "CMakeFiles/fro_graph.dir/from_expr.cc.o.d"
  "CMakeFiles/fro_graph.dir/nice.cc.o"
  "CMakeFiles/fro_graph.dir/nice.cc.o.d"
  "CMakeFiles/fro_graph.dir/query_graph.cc.o"
  "CMakeFiles/fro_graph.dir/query_graph.cc.o.d"
  "CMakeFiles/fro_graph.dir/tree_conditions.cc.o"
  "CMakeFiles/fro_graph.dir/tree_conditions.cc.o.d"
  "libfro_graph.a"
  "libfro_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
