# Empty compiler generated dependencies file for fro_graph.
# This may be replaced when dependencies are built.
