file(REMOVE_RECURSE
  "libfro_graph.a"
)
