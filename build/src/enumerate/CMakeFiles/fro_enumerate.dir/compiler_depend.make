# Empty compiler generated dependencies file for fro_enumerate.
# This may be replaced when dependencies are built.
