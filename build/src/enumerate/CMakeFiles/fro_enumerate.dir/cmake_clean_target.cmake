file(REMOVE_RECURSE
  "libfro_enumerate.a"
)
