file(REMOVE_RECURSE
  "CMakeFiles/fro_enumerate.dir/bt_path.cc.o"
  "CMakeFiles/fro_enumerate.dir/bt_path.cc.o.d"
  "CMakeFiles/fro_enumerate.dir/closure.cc.o"
  "CMakeFiles/fro_enumerate.dir/closure.cc.o.d"
  "CMakeFiles/fro_enumerate.dir/cuts.cc.o"
  "CMakeFiles/fro_enumerate.dir/cuts.cc.o.d"
  "CMakeFiles/fro_enumerate.dir/it_enum.cc.o"
  "CMakeFiles/fro_enumerate.dir/it_enum.cc.o.d"
  "libfro_enumerate.a"
  "libfro_enumerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_enumerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
