
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enumerate/bt_path.cc" "src/enumerate/CMakeFiles/fro_enumerate.dir/bt_path.cc.o" "gcc" "src/enumerate/CMakeFiles/fro_enumerate.dir/bt_path.cc.o.d"
  "/root/repo/src/enumerate/closure.cc" "src/enumerate/CMakeFiles/fro_enumerate.dir/closure.cc.o" "gcc" "src/enumerate/CMakeFiles/fro_enumerate.dir/closure.cc.o.d"
  "/root/repo/src/enumerate/cuts.cc" "src/enumerate/CMakeFiles/fro_enumerate.dir/cuts.cc.o" "gcc" "src/enumerate/CMakeFiles/fro_enumerate.dir/cuts.cc.o.d"
  "/root/repo/src/enumerate/it_enum.cc" "src/enumerate/CMakeFiles/fro_enumerate.dir/it_enum.cc.o" "gcc" "src/enumerate/CMakeFiles/fro_enumerate.dir/it_enum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/fro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/fro_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/fro_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
