file(REMOVE_RECURSE
  "CMakeFiles/fro_lang.dir/lang.cc.o"
  "CMakeFiles/fro_lang.dir/lang.cc.o.d"
  "CMakeFiles/fro_lang.dir/lexer.cc.o"
  "CMakeFiles/fro_lang.dir/lexer.cc.o.d"
  "CMakeFiles/fro_lang.dir/model.cc.o"
  "CMakeFiles/fro_lang.dir/model.cc.o.d"
  "CMakeFiles/fro_lang.dir/parser.cc.o"
  "CMakeFiles/fro_lang.dir/parser.cc.o.d"
  "CMakeFiles/fro_lang.dir/translate.cc.o"
  "CMakeFiles/fro_lang.dir/translate.cc.o.d"
  "libfro_lang.a"
  "libfro_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fro_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
