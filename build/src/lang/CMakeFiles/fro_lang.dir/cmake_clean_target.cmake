file(REMOVE_RECURSE
  "libfro_lang.a"
)
