# Empty compiler generated dependencies file for fro_lang.
# This may be replaced when dependencies are built.
